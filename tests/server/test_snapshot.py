"""Unit tests of the MVCC core: Database.snapshot and pinned reads."""

from __future__ import annotations

import pytest

import repro.database as database_module
from repro.database import Database, Snapshot, SnapshotError
from repro.plan.cache import ResultCache
from repro.relational.relation import Relation


def test_snapshot_pins_the_committed_version(pizzeria):
    snap = pizzeria.snapshot()
    assert isinstance(snap, Snapshot)
    assert snap.version == pizzeria.version
    before = set(snap.flat("Items").rows)

    pizzeria.insert("Items", [("truffle", 9)])
    assert pizzeria.version == snap.version + 1

    # The pinned reader still observes the pre-commit state, the origin
    # the new one.
    assert set(snap.flat("Items").rows) == before
    assert len(pizzeria.flat("Items").rows) == len(before) + 1
    snap.release()


def test_snapshot_catalogue_surface_matches_origin(pizzeria):
    snap = pizzeria.snapshot()
    assert snap.names() == pizzeria.names()
    assert "Items" in snap
    assert snap.schema("Items") == pizzeria.schema("Items")
    assert snap.get_factorised("R") is pizzeria.get_factorised("R")
    snap.release()


def test_snapshot_sees_stale_views_at_its_own_pin(pizzeria):
    """A maintained view read off an old snapshot shows the old rows."""
    snap = pizzeria.snapshot()
    old_rows = set(snap.flat("R").rows)

    pizzeria.insert("Orders", [("Nina", "Saturday", "Margherita")])

    assert set(snap.flat("R").rows) == old_rows
    assert set(pizzeria.flat("R").rows) != old_rows
    snap.release()


def test_snapshot_is_read_only(pizzeria):
    snap = pizzeria.snapshot()
    with pytest.raises(SnapshotError):
        snap.insert("Items", [("nope", 1)])
    with pytest.raises(SnapshotError):
        snap.delete("Items", [("base", 6)])
    with pytest.raises(SnapshotError):
        snap.add_relation(Relation(("a",), [(1,)], "X"))
    snap.release()


def test_release_and_pin_bookkeeping(pizzeria):
    v = pizzeria.version
    first = pizzeria.snapshot()
    second = pizzeria.snapshot()
    assert pizzeria.pinned_versions() == [v]

    first.release()
    assert pizzeria.pinned_versions() == [v]  # second still holds it
    second.release()
    assert pizzeria.pinned_versions() == []

    # release is idempotent; reads keep working off the captured state.
    second.release()
    assert second.released
    assert "Items" in second


def test_snapshot_context_manager_releases(pizzeria):
    with pizzeria.snapshot() as snap:
        assert pizzeria.pinned_versions() == [snap.version]
    assert pizzeria.pinned_versions() == []


def test_snapshot_at_a_retained_version(pizzeria):
    old = pizzeria.snapshot()
    pizzeria.insert("Items", [("truffle", 9)])
    new = pizzeria.snapshot()
    assert new.version == old.version + 1

    # While `old` pins its version, a sibling pin at that version works.
    sibling = pizzeria.snapshot(version=old.version)
    assert sibling.version == old.version
    assert set(sibling.flat("Items").rows) == set(old.flat("Items").rows)

    for snap in (old, new, sibling):
        snap.release()
    with pytest.raises(SnapshotError):
        pizzeria.snapshot(version=old.version)  # no longer retained


def test_snapshot_changes_since_stops_at_the_pin(pizzeria):
    v0 = pizzeria.version
    snap_before = pizzeria.snapshot()
    pizzeria.insert("Items", [("truffle", 9)])
    snap_after = pizzeria.snapshot()
    pizzeria.insert("Items", [("olives", 2)])

    assert snap_before.changes_since(v0) == []
    records = snap_after.changes_since(v0)
    assert [record.version for record in records] == [v0 + 1]
    # The origin sees both commits.
    assert len(pizzeria.changes_since(v0)) == 2
    snap_before.release()
    snap_after.release()


def test_pins_extend_log_retention(monkeypatch, pizzeria):
    """The change log keeps records a pinned reader may still replay."""
    monkeypatch.setattr(database_module, "MAX_LOG", 4)
    snap = pizzeria.snapshot()
    pinned_version = snap.version
    for index in range(10):
        pizzeria.insert("Items", [(f"extra-{index}", index)])

    records = pizzeria.changes_since(pinned_version)
    assert records is not None
    assert [r.version for r in records] == [
        pinned_version + 1 + i for i in range(10)
    ]

    # Once the pin is gone, truncation applies on the next append.
    snap.release()
    pizzeria.insert("Items", [("last", 99)])
    assert pizzeria.changes_since(pinned_version) is None


def test_hard_cap_beats_a_stuck_pin(monkeypatch, pizzeria):
    monkeypatch.setattr(database_module, "MAX_LOG", 2)
    monkeypatch.setattr(database_module, "MAX_PINNED_LOG", 4)
    snap = pizzeria.snapshot()
    for index in range(8):
        pizzeria.insert("Items", [(f"extra-{index}", index)])
    # The log was truncated past the pin: the snapshot degrades to a
    # full-reload answer (None), it does not block writers.
    assert pizzeria.changes_since(snap.version) is None
    snap.release()


def test_result_cache_never_serves_the_future(pizzeria):
    """Satellite: an entry written under v must miss for a pin u < v."""
    cache = ResultCache(capacity=8)
    old = pizzeria.snapshot()
    pizzeria.insert("Items", [("truffle", 9)])

    cache.store("q", "computed-at-new", pizzeria, relations=("Items",))
    assert cache.lookup("q", pizzeria) == "computed-at-new"

    # The pinned reader must not see a result computed after its pin —
    # and the miss must not evict the entry for newer readers.
    assert cache.lookup("q", old) is None
    assert cache.lookup("q", pizzeria) == "computed-at-new"
    old.release()


def test_result_cache_validates_entry_against_reader_pin(pizzeria):
    cache = ResultCache(capacity=8)
    snap = pizzeria.snapshot()
    cache.store("items", "old-items", snap, relations=("Items",))
    cache.store("pizzas", "old-pizzas", snap, relations=("Pizzas",))

    pizzeria.insert("Items", [("truffle", 9)])
    fresh = pizzeria.snapshot()

    # The write touched Items: evicted for the fresh reader.  Pizzas is
    # untouched: still served, at both pins.
    assert cache.lookup("items", fresh) is None
    assert cache.lookup("pizzas", fresh) == "old-pizzas"
    assert cache.lookup("pizzas", snap) == "old-pizzas"
    snap.release()
    fresh.release()


def test_cow_mutation_does_not_alias_old_rows():
    db = Database()
    db.add_relation(Relation(("a", "b"), [(1, 10), (2, 20)], "T"))
    snap = db.snapshot()
    old_relation = snap.flat("T")
    db.insert("T", [(3, 30)])
    db.delete("T", [(1, 10)])
    # The pinned Relation object is untouched by both mutations.
    assert set(old_relation.rows) == {(1, 10), (2, 20)}
    assert set(db.flat("T").rows) == {(2, 20), (3, 30)}
    snap.release()
