"""Seeded multi-threaded stress: concurrent writer vs pinned readers.

One writer thread commits a deterministic sequence of single-change
mutations; reader threads continuously take snapshots and check
**prefix consistency**: a snapshot at version ``v`` must show exactly
the state after the first ``v - v0`` commits — across *both* relations
(no torn reads) — and the change log it replays must be gap-free (no
skipped entries).  The commit schedule is seeded, so a failure replays
exactly.
"""

from __future__ import annotations

import random
import threading

from repro.database import Database
from repro.relational.relation import Relation

SEED = 20130807
WRITES = 120
READERS = 4


def _build() -> "tuple[Database, list[tuple[frozenset, frozenset]], list]":
    """The database plus the expected (A-rows, B-rows) state per version.

    The writer's schedule is precomputed with a seeded RNG: each step
    inserts one row into A or B (deterministically chosen), and
    ``expected[i]`` is the exact state a snapshot at ``v0 + i`` must
    observe.
    """
    db = Database()
    db.add_relation(Relation(("k", "v"), [(0, 0)], "A"))
    db.add_relation(Relation(("k", "v"), [(0, 0)], "B"))

    rng = random.Random(SEED)
    rows_a = {(0, 0)}
    rows_b = {(0, 0)}
    expected = [(frozenset(rows_a), frozenset(rows_b))]
    schedule = []
    for step in range(1, WRITES + 1):
        target = "A" if rng.random() < 0.5 else "B"
        row = (step, rng.randrange(1000))
        schedule.append((target, row))
        (rows_a if target == "A" else rows_b).add(row)
        expected.append((frozenset(rows_a), frozenset(rows_b)))
    return db, expected, schedule


def test_concurrent_readers_see_prefix_consistent_states():
    db, expected, schedule = _build()
    base_version = db.version
    failures: list[str] = []
    stop = threading.Event()

    def writer() -> None:
        try:
            for target, row in schedule:
                db.insert(target, [row])
        finally:
            stop.set()

    def reader(index: int) -> None:
        checks = 0
        while not (stop.is_set() and checks > 0):
            snap = db.snapshot()
            try:
                offset = snap.version - base_version
                if not 0 <= offset < len(expected):
                    failures.append(
                        f"reader {index}: version {snap.version} outside "
                        f"the committed range"
                    )
                    return
                want_a, want_b = expected[offset]
                got_a = frozenset(snap.flat("A").rows)
                got_b = frozenset(snap.flat("B").rows)
                # Torn-read check: both relations must match the same
                # prefix of the commit sequence.
                if got_a != want_a or got_b != want_b:
                    failures.append(
                        f"reader {index}: snapshot v{snap.version} saw "
                        f"A±{len(got_a ^ want_a)} B±{len(got_b ^ want_b)} "
                        f"rows off the expected state"
                    )
                    return
                # Skipped-entry check: the replayable log up to the pin
                # must be gap-free and stop exactly at the pin.
                records = snap.changes_since(base_version)
                if records is not None:
                    versions = [record.version for record in records]
                    if versions != list(
                        range(base_version + 1, snap.version + 1)
                    ):
                        failures.append(
                            f"reader {index}: change log {versions} has "
                            f"gaps up to v{snap.version}"
                        )
                        return
                checks += 1
            finally:
                snap.release()
        assert checks > 0

    threads = [threading.Thread(target=writer)]
    threads += [
        threading.Thread(target=reader, args=(i,)) for i in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress thread hung"

    assert not failures, failures[0]
    assert db.version == base_version + WRITES
    final_a, final_b = expected[-1]
    assert frozenset(db.flat("A").rows) == final_a
    assert frozenset(db.flat("B").rows) == final_b
    assert db.pinned_versions() == []


def test_concurrent_writers_serialise_without_lost_updates():
    """Two writer threads interleave; every commit lands exactly once."""
    db = Database()
    db.add_relation(Relation(("k", "v"), [], "A"))
    base_version = db.version
    per_writer = 60

    def writer(tag: int) -> None:
        for step in range(per_writer):
            db.insert("A", [(tag * 10_000 + step, tag)])

    threads = [
        threading.Thread(target=writer, args=(tag,)) for tag in (1, 2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "writer thread hung"

    assert db.version == base_version + 2 * per_writer
    rows = db.flat("A").rows
    assert len(rows) == 2 * per_writer  # nothing lost, nothing doubled
    # The log is one gap-free serialisation of both writers.
    records = db.changes_since(base_version)
    assert [r.version for r in records] == list(
        range(base_version + 1, db.version + 1)
    )


def test_pooled_readers_under_mutation_load(pizzeria):
    """Pool + HTTP-free stress: sessions lease, read, and refresh while
    a writer mutates — every read is internally consistent."""
    from repro.server import SessionPool

    pool = SessionPool(pizzeria, size=4, engine="fdb")
    stop = threading.Event()
    failures: list[str] = []

    def writer() -> None:
        try:
            for step in range(40):
                pizzeria.insert("Items", [(f"stress-{step}", step % 7)])
        finally:
            stop.set()

    def reader(index: int) -> None:
        rng = random.Random(SEED + index)
        while not stop.is_set():
            session = pool.acquire()
            try:
                first = session.sql("SELECT COUNT(*) AS n FROM Items")
                second = session.sql("SELECT COUNT(*) AS n FROM Items")
                # Same pin, same answer — even while the writer commits.
                if first.rows != second.rows:
                    failures.append(
                        f"reader {index}: unstable read at "
                        f"v{session.version}: {first.rows} != {second.rows}"
                    )
                    return
                if rng.random() < 0.3:
                    session.refresh()
                    third = session.sql("SELECT COUNT(*) AS n FROM Items")
                    if third.rows[0][0] < first.rows[0][0]:
                        failures.append(
                            f"reader {index}: refresh went backwards"
                        )
                        return
            finally:
                session.close()

    threads = [threading.Thread(target=writer)]
    threads += [
        threading.Thread(target=reader, args=(i,)) for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress thread hung"

    assert not failures, failures[0]
    pool.close()
