"""Observability over the wire: /metrics, /debug/slow, pool gauges."""

from __future__ import annotations

import random
import threading

import pytest

from repro.obs.export import CONTENT_TYPE, parse_prometheus
from repro.obs.metrics import metrics
from repro.server import Client, Server, SessionPool

SEED = 20130807


@pytest.fixture()
def server(pizzeria):
    with Server(pizzeria, port=0, pool_size=4, acquire_timeout=0.2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with Client(port=server.port) as c:
        yield c


PIZZERIA_TOTAL = (
    "SELECT customer, SUM(price) AS total FROM Orders, Pizzas, Items "
    "WHERE Orders.pizza = Pizzas.pizza AND Pizzas.item = Items.item "
    "GROUP BY customer"
)


class TestMetricsEndpoint:
    def test_scrape_parses_and_covers_every_layer(self, client):
        client.query(PIZZERIA_TOTAL)
        client.query(PIZZERIA_TOTAL)  # result-cache hit
        client.insert("Items", [("truffle", 9)])
        text = client.metrics()
        families = parse_prometheus(text)
        # The acceptance-criteria series: cache, pool, IVM, HTTP.
        assert "repro_cache_events_total" in families
        assert "repro_pool_events_total" in families
        assert "repro_ivm_maintenance_total" in families
        assert "repro_http_request_seconds" in families
        assert "repro_queries_total" in families
        # PR 9's columnar-kernel series: resident view bytes plus the
        # per-kernel latency histogram populated by the query above.
        assert "repro_kernel_seconds" in families
        store = families["repro_store_bytes"]
        assert store["kind"] == "gauge"
        assert store["samples"][("repro_store_bytes", ())] > 0.0
        http = families["repro_http_request_seconds"]
        assert http["kind"] == "histogram"
        count = http["samples"][
            (
                "repro_http_request_seconds_count",
                (("endpoint", "/query"),),
            )
        ]
        assert count >= 2.0
        responses = families["repro_http_responses_total"]["samples"]
        assert (
            responses[
                ("repro_http_responses_total",
                 (("endpoint", "/query"), ("status", "2xx")))
            ]
            >= 2.0
        )

    def test_exposition_is_well_formed(self, client):
        client.query(PIZZERIA_TOTAL)
        text = client.metrics()
        assert text.startswith("# HELP ")
        lines = [ln for ln in text.splitlines() if ln]
        typed = {
            ln.split()[3]
            for ln in lines
            if ln.startswith("# TYPE ")
        }
        assert typed <= {"counter", "gauge", "histogram"}
        for line in lines:
            if line.startswith("#"):
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value)  # every sample value parses

    def test_scrape_counts_itself_without_a_session(self, server):
        # /metrics is served off the event loop: no pool admission.
        leased_before = server.pool.leased
        with Client(port=server.port) as c:
            c.metrics()
            text = c.metrics()
        assert server.pool.leased == leased_before
        families = parse_prometheus(text)
        count = families["repro_http_request_seconds"]["samples"][
            (
                "repro_http_request_seconds_count",
                (("endpoint", "/metrics"),),
            )
        ]
        assert count >= 1.0

    def test_content_type_is_prometheus_text(self, server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == CONTENT_TYPE
            response.read()
        finally:
            connection.close()


class TestSlowLogEndpoint:
    def test_debug_slow_lists_recent_traces(self, client):
        client.query(PIZZERIA_TOTAL)
        entries = client.slow_queries()
        assert entries, "the ring buffer should hold the query just run"
        entry = entries[0]
        assert entry["name"] == "session.query"
        assert entry["seconds"] >= 0.0
        assert entry["trace_id"]
        assert entry["tree"]["name"] == "session.query"

    def test_entries_are_ranked_slowest_first(self, client):
        for _ in range(3):
            client.query(PIZZERIA_TOTAL)
        entries = client.slow_queries()
        seconds = [e["seconds"] for e in entries]
        assert seconds == sorted(seconds, reverse=True)


class TestPoolGauges:
    def test_stats_exposes_releases(self, pizzeria):
        pool = SessionPool(pizzeria, size=2)
        session = pool.acquire()
        session.close()
        stats = pool.stats()
        assert stats["leases"] == 1
        assert stats["releases"] == 1
        assert stats["leased"] == 0 and stats["idle"] == 1
        pool.close()

    def test_gauges_balance_under_seeded_stress(self, pizzeria):
        """Satellite: admissions == releases + active at quiesce, and
        the leased/idle gauges never go negative."""
        pool = SessionPool(pizzeria, size=4, engine="fdb")
        stop = threading.Event()
        failures: list[str] = []
        sessions = metrics().gauge(
            "repro_pool_sessions", labelnames=("state",)
        )
        leased_gauge = sessions.labels("leased")
        idle_gauge = sessions.labels("idle")

        def writer() -> None:
            try:
                for step in range(30):
                    pizzeria.insert("Items", [(f"obs-{step}", step % 5)])
            finally:
                stop.set()

        def reader(index: int) -> None:
            rng = random.Random(SEED + index)
            passes = 0
            while not (stop.is_set() and passes > 0):
                passes += 1
                session = pool.acquire()
                try:
                    session.sql("SELECT COUNT(*) AS n FROM Items")
                    if leased_gauge.value < 0 or idle_gauge.value < 0:
                        failures.append(
                            f"reader {index}: negative pool gauge "
                            f"(leased={leased_gauge.value}, "
                            f"idle={idle_gauge.value})"
                        )
                        return
                    if rng.random() < 0.2:
                        session.refresh()
                finally:
                    session.close()

        threads = [threading.Thread(target=writer)]
        threads += [
            threading.Thread(target=reader, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "stress thread hung"
        assert not failures, failures[0]

        # Quiesced: every admission was matched by a release (none of
        # the readers still holds a session).
        stats = pool.stats()
        assert stats["leases"] == stats["releases"] + stats["leased"]
        assert stats["leased"] == 0
        assert stats["idle"] >= 1
        assert leased_gauge.value >= 0 and idle_gauge.value >= 0
        pool.close()
