"""SessionPool lifecycle: leasing, warm reuse, admission, reaping."""

from __future__ import annotations

import threading

import pytest

from repro.api.session import SessionClosedError
from repro.server import PoolClosedError, PoolTimeoutError, SessionPool


def test_acquire_release_reuses_the_session(pizzeria):
    pool = SessionPool(pizzeria, size=2)
    session = pool.acquire()
    assert pool.leased == 1
    first_id = id(session)
    session.close()
    assert pool.leased == 0 and pool.idle == 1

    again = pool.acquire()
    assert id(again) == first_id  # warm reuse, not a rebuild
    assert pool.created == 1
    again.close()
    pool.close()


def test_pool_owned_close_returns_instead_of_destroying(pizzeria):
    """Satellite: close() on a pooled session parks it, backends alive."""
    pool = SessionPool(pizzeria, size=2)
    session = pool.acquire()
    session.sql("SELECT COUNT(*) AS n FROM Items")  # warms a backend
    backends = dict(session._engines)
    session.close()

    assert pool.destroyed == 0
    assert not session.closed  # parked, not destroyed
    with pytest.raises(SessionClosedError):
        session.sql("SELECT COUNT(*) AS n FROM Items")  # but unusable

    again = pool.acquire()
    assert dict(again._engines) == backends  # backends survived the park
    again.close()
    pool.close()


def test_leased_sessions_are_pinned_idle_sessions_are_not(pizzeria):
    pool = SessionPool(pizzeria, size=2)
    session = pool.acquire()
    assert session.pinned_version == pizzeria.version
    assert pizzeria.pinned_versions() == [pizzeria.version]
    session.close()
    # Parked sessions drop their pin so the change log can truncate.
    assert pizzeria.pinned_versions() == []
    pool.close()


def test_acquire_pins_the_newest_version(pizzeria):
    pool = SessionPool(pizzeria, size=2)
    first = pool.acquire()
    v = first.version
    first.close()
    pizzeria.insert("Items", [("truffle", 9)])
    second = pool.acquire()
    assert second.version == v + 1
    second.close()
    pool.close()


def test_bounded_admission_times_out(pizzeria):
    pool = SessionPool(pizzeria, size=1, acquire_timeout=0.05)
    held = pool.acquire()
    with pytest.raises(PoolTimeoutError):
        pool.acquire()
    assert pool.timeouts == 1
    held.close()
    pool.close()


def test_release_unblocks_a_waiting_acquire(pizzeria):
    pool = SessionPool(pizzeria, size=1)
    held = pool.acquire()
    got = []

    def waiter():
        session = pool.acquire(timeout=5)
        got.append(session)
        session.close()

    thread = threading.Thread(target=waiter)
    thread.start()
    held.close()
    thread.join(timeout=5)
    assert not thread.is_alive() and len(got) == 1
    pool.close()


def test_idle_reaping_destroys_expired_sessions(pizzeria):
    import time

    pool = SessionPool(pizzeria, size=2, idle_timeout=0.01)
    session = pool.acquire()
    session.close()
    time.sleep(0.05)
    assert pool.reap() == 1
    assert pool.idle == 0 and pool.destroyed == 1
    pool.close()


def test_closed_pool_refuses_leases_and_destroys_returns(pizzeria):
    pool = SessionPool(pizzeria, size=2)
    leased = pool.acquire()
    pool.close()
    with pytest.raises(PoolClosedError):
        pool.acquire()
    leased.close()  # comes back to a closed pool -> destroyed
    assert pool.destroyed == 1 and pool.idle == 0
    assert pizzeria.pinned_versions() == []


def test_shared_caches_respect_each_readers_pin(pizzeria):
    """Two pooled sessions at different pins share one result cache."""
    pool = SessionPool(pizzeria, size=2, engine="fdb")
    old = pool.acquire()
    n_old = old.sql("SELECT COUNT(*) AS n FROM Items").rows[0][0]

    pizzeria.insert("Items", [("truffle", 9)])
    new = pool.acquire()
    assert new.version == old.version + 1
    n_new = new.sql("SELECT COUNT(*) AS n FROM Items").rows[0][0]
    assert n_new == n_old + 1

    # Re-reading through the old pin must not pick up the newer
    # session's cached result.
    assert old.sql("SELECT COUNT(*) AS n FROM Items").rows[0][0] == n_old
    old.close()
    new.close()
    pool.close()


def test_stats_are_json_able(pizzeria):
    import json

    pool = SessionPool(pizzeria, size=2)
    session = pool.acquire()
    session.sql("SELECT COUNT(*) AS n FROM Items")
    payload = json.dumps(pool.stats())
    assert "database_version" in payload
    session.close()
    pool.close()
