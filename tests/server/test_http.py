"""HTTP round-trip tests: the asyncio front-end plus the thin client."""

from __future__ import annotations

import pytest

from repro.server import Client, Server, ServerError


@pytest.fixture()
def server(pizzeria):
    with Server(pizzeria, port=0, pool_size=4, acquire_timeout=0.2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with Client(port=server.port) as c:
        yield c


def test_health_reports_version(pizzeria, server, client):
    payload = client.health()
    assert payload["status"] == "ok"
    assert payload["version"] == pizzeria.version


def test_select_round_trip(client):
    result = client.query(
        "SELECT customer, SUM(price) AS total FROM Orders, Pizzas, Items "
        "WHERE Orders.pizza = Pizzas.pizza AND Pizzas.item = Items.item "
        "GROUP BY customer"
    )
    assert result["columns"] == ["customer", "total"]
    assert sorted(result["rows"]) == [
        ["Lucia", 9], ["Mario", 22], ["Pietro", 9],
    ]
    assert result["engine"] == "FDB"
    assert "version" in result


def test_insert_then_requery_on_one_connection(client):
    before = client.query("SELECT COUNT(*) AS n FROM Items")["rows"][0][0]
    report = client.insert("Items", [("truffle", 9)])
    assert report["inserted"] == 1
    after = client.query("SELECT COUNT(*) AS n FROM Items")["rows"][0][0]
    assert after == before + 1  # read-your-own-writes


def test_sql_writes_through_query_endpoint(client):
    report = client.query("INSERT INTO Items VALUES ('olives', 2)")
    assert report["inserted"] == 1
    rows = client.query(
        "SELECT price FROM Items WHERE item = 'olives'"
    )["rows"]
    assert rows == [[2]]


def test_connections_are_snapshot_isolated(server):
    with Client(port=server.port) as reader, Client(port=server.port) as writer:
        before = reader.query("SELECT COUNT(*) AS n FROM Items")["rows"]
        writer.insert("Items", [("truffle", 9)])
        # The reader's pin predates the commit: same answer.
        assert reader.query("SELECT COUNT(*) AS n FROM Items")["rows"] == before
        # Until it opts into the new version.
        reader.refresh()
        rows = reader.query("SELECT COUNT(*) AS n FROM Items")["rows"]
        assert rows[0][0] == before[0][0] + 1


def test_prepare_execute_with_parameters(client):
    handle = client.prepare("SELECT price FROM Items WHERE item = :which")
    assert client.execute(handle, {"which": "ham"})["rows"] == [[1]]
    assert client.execute(handle, {"which": "base"})["rows"] == [[6]]


def test_watch_poll_unwatch(client):
    watch = client.watch("SELECT COUNT(*) AS n FROM Items")
    assert watch["rows"] == [[4]]
    client.insert("Items", [("truffle", 9)])
    assert client.poll(watch["id"])["rows"] == [[5]]
    client.unwatch(watch["id"])
    with pytest.raises(ServerError) as excinfo:
        client.poll(watch["id"])
    assert excinfo.value.status == 400


def test_delete_endpoint(client):
    report = client.delete("Items", rows=[("pineapple", 2)])
    assert report["deleted"] == 1
    rows = client.query("SELECT COUNT(*) AS n FROM Items")["rows"]
    assert rows == [[3]]


def test_error_mapping(client):
    with pytest.raises(ServerError) as bad_sql:
        client.query("SELEKT nope")
    assert bad_sql.value.status == 400

    with pytest.raises(ServerError) as bad_handle:
        client.execute("prep-does-not-exist")
    assert bad_handle.value.status == 400

    with pytest.raises(ServerError) as bad_route:
        client._request("POST", "/no-such-endpoint", {})
    assert bad_route.value.status == 404

    with pytest.raises(ServerError) as bad_body:
        client._request("POST", "/query", {"not-sql": 1})
    assert bad_body.value.status == 400


def test_pool_exhaustion_maps_to_503(server):
    holders = [Client(port=server.port) for _ in range(server.pool.size)]
    try:
        for holder in holders:
            holder.query("SELECT COUNT(*) AS n FROM Items")
        overflow = Client(port=server.port)
        with pytest.raises(ServerError) as excinfo:
            overflow.query("SELECT COUNT(*) AS n FROM Items")
        assert excinfo.value.status == 503
        overflow.close()
    finally:
        for holder in holders:
            holder.close()


def test_stats_endpoint(client):
    client.query("SELECT COUNT(*) AS n FROM Items")
    stats = client.stats()
    assert stats["requests"] >= 1
    assert stats["size"] == 4
    assert "caches" in stats


def test_server_restores_pins_on_disconnect(pizzeria, server):
    with Client(port=server.port) as c:
        c.query("SELECT COUNT(*) AS n FROM Items")
        assert pizzeria.pinned_versions() == [pizzeria.version]
    # Connection closed -> session parked -> pin released (eventually;
    # the server handles the disconnect asynchronously).
    import time

    deadline = time.monotonic() + 5
    while pizzeria.pinned_versions() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert pizzeria.pinned_versions() == []
