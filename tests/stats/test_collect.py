"""Statistics collectors: exactness, scan-freeness, metrics recovery.

The columnar/legacy walks must reproduce the ground truth computable
from the flat rows (distinct counts, cardinality) while touching only
union structure — asserted via the seed-source counters of
``repro_stats_cache_events_total``: a resident view never seeds from
the ``flat`` sampling path.
"""

from __future__ import annotations

from repro.core.build import factorise
from repro.core.ftree import build_ftree
from repro.database import Database
from repro.relational.relation import Relation
from repro.stats import (
    FLAT_SAMPLE_LIMIT,
    stats_cache,
    stats_from_factorisation,
    stats_from_flat,
    stats_from_metrics,
)
from repro.stats.cache import _SEED_EVENTS


def _example_relation():
    rows = []
    for j in range(3):
        for a in range(4):
            for c in range(2):
                rows.append((j, f"a{j}_{a}", a % 2, f"c{j}_{c}", c + 10 * j))
    return Relation(("j", "a", "x", "c", "y"), rows, name="V")


def _example_ftree():
    return build_ftree([("j", [("a", ["x"]), ("c", ["y"])])])


def _ground_truth(relation):
    return {
        attribute: len({row[i] for row in relation.rows})
        for i, attribute in enumerate(relation.schema)
    }


def test_factorised_stats_match_flat_truth_both_layouts():
    relation = _example_relation()
    truth = _ground_truth(relation)
    legacy = factorise(relation, _example_ftree(), check=True)
    for fact, source in ((legacy, "legacy"), (legacy.to_columnar(), "columnar")):
        stats = stats_from_factorisation("V", fact)
        assert stats.source == source
        assert stats.rows == len(relation.rows)
        assert {
            name: entry.distinct for name, entry in stats.attributes.items()
        } == truth
        singletons, resident = fact.size_info()
        assert stats.singletons == singletons
        assert stats.resident_bytes == resident


def test_factorised_histogram_exposes_skew():
    # x alternates 0/1 within each a-branch: both values recur across
    # every (j, a) context, so the context-frequency histogram is a
    # complete 2-bucket table.
    relation = _example_relation()
    stats = stats_from_factorisation(
        "V", factorise(relation, _example_ftree(), check=True)
    )
    x = stats.attributes["x"]
    assert x.complete
    assert len(x.histogram) == 2
    assert x.heavy_fraction == 0.5


def test_resident_view_seeds_without_flat_scan():
    """The acceptance check: seeding a registered columnar view must be
    structure-only — the ``flat`` sampling counter does not move."""
    relation = _example_relation()
    database = Database([relation])
    database.add_factorised(
        "V", factorise(relation, _example_ftree()).to_columnar()
    )
    stats_cache().clear()
    before = {
        source: child._sample() for source, child in _SEED_EVENTS.items()
    }
    stats = stats_cache().relation_stats(database, "V")
    assert stats is not None and stats.source == "columnar"
    assert _SEED_EVENTS["columnar"]._sample() == before["columnar"] + 1
    assert _SEED_EVENTS["flat"]._sample() == before["flat"]


def test_flat_sampling_is_exact_when_small():
    relation = _example_relation()
    stats = stats_from_flat("V", relation)
    assert stats.source == "flat"
    assert stats.rows == len(relation.rows)
    assert {
        name: entry.distinct for name, entry in stats.attributes.items()
    } == _ground_truth(relation)


def test_flat_sampling_is_bounded():
    rows = [(i, i % 7) for i in range(1000)]
    relation = Relation(("k", "m"), rows, name="big")
    stats = stats_from_flat("big", relation, limit=100)
    assert stats.rows == 1000
    k = stats.attributes["k"]
    # A stride sample visits ~limit rows: observed distincts are a
    # lower bound and the histogram cannot claim completeness.
    assert k.total <= 2 * 100
    assert k.distinct <= 1000
    assert not k.complete
    assert FLAT_SAMPLE_LIMIT >= 100


def test_metrics_recovery_round_trips_after_eviction():
    relation = _example_relation()
    database = Database([relation])
    cache = stats_cache()
    cache.clear()
    first = cache.relation_stats(database, "V")
    assert first is not None and first.source == "flat"
    cache.clear()  # evict; the published gauges survive
    recovered = cache.relation_stats(database, "V")
    assert recovered is not None and recovered.source == "metrics"
    assert recovered.rows == first.rows
    assert {
        name: entry.distinct for name, entry in recovered.attributes.items()
    } == {name: entry.distinct for name, entry in first.attributes.items()}


def test_metrics_recovery_rejects_stale_version():
    relation = _example_relation()
    database = Database([relation])
    cache = stats_cache()
    cache.clear()
    assert cache.relation_stats(database, "V") is not None
    database.insert("V", [(99, "a99", 0, "c99", 999)])  # version moves on
    stale = stats_from_metrics(
        "V", database, getattr(database, "version", 0)
    )
    assert stale is None
    cache.clear()
    reseeded = cache.relation_stats(database, "V")
    assert reseeded is not None and reseeded.source == "flat"
    assert reseeded.rows == len(relation.rows) + 1
