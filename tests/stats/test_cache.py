"""The drift-aware statistics cache: hits, epochs, invalidation, merge.

Drift thresholds follow ``max(DRIFT_MIN_ROWS, DRIFT_FRACTION × rows at
seed time)``; epochs are monotone and survive both eviction and
``clear()`` so prepared-query fingerprints never observe a rollback.
"""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.relational.relation import Relation
from repro.stats import (
    DRIFT_FRACTION,
    DRIFT_MIN_ROWS,
    StatsCache,
    merge_relation_stats,
)
from repro.stats.cache import _HIT, _INVALIDATE_DRIFT, _REOPT_DRIFT
from repro.stats.model import AttributeStats, RelationStats


def _database(rows=None):
    rows = rows if rows is not None else [(i, i % 4) for i in range(40)]
    return Database([Relation(("k", "m"), rows, name="R")])


def test_repeat_lookup_hits_at_constant_version():
    database = _database()
    cache = StatsCache()
    first = cache.relation_stats(database, "R")
    before = _HIT._sample()
    second = cache.relation_stats(database, "R")
    assert second is first
    assert _HIT._sample() == before + 1


def test_unknown_relation_returns_none():
    cache = StatsCache()
    assert cache.relation_stats(_database(), "nope") is None


def test_small_drift_restamps_without_invalidation():
    database = _database()
    cache = StatsCache()
    first = cache.relation_stats(database, "R")
    assert first is not None
    database.insert("R", [(100, 0)])  # 1 < max(8, 0.25×40)
    before = _INVALIDATE_DRIFT._sample()
    second = cache.relation_stats(database, "R")
    assert second is first
    assert _INVALIDATE_DRIFT._sample() == before
    assert cache.epochs_for(database, ["R"]) == (("R", 0),)


def test_drift_past_threshold_bumps_epoch_and_reseeds():
    database = _database()
    cache = StatsCache()
    first = cache.relation_stats(database, "R")
    threshold = max(DRIFT_MIN_ROWS, DRIFT_FRACTION * first.rows)
    database.insert("R", [(1000 + i, 0) for i in range(int(threshold) + 1)])
    invalidations = _INVALIDATE_DRIFT._sample()
    reopts = _REOPT_DRIFT._sample()
    second = cache.relation_stats(database, "R")
    assert second is not first
    assert second.rows == first.rows + int(threshold) + 1
    assert _INVALIDATE_DRIFT._sample() == invalidations + 1
    assert _REOPT_DRIFT._sample() == reopts + 1
    assert cache.epochs_for(database, ["R"]) == (("R", 1),)


def test_epochs_for_detects_drift_lazily():
    """The fingerprint hook itself must bump the epoch — that is what
    invalidates a cached plan before any stats lookup happens."""
    database = _database()
    cache = StatsCache()
    cache.relation_stats(database, "R")
    database.insert("R", [(2000 + i, 0) for i in range(30)])
    assert cache.epochs_for(database, ["R"]) == (("R", 1),)
    # Idempotent at constant version: no second bump.
    assert cache.epochs_for(database, ["R"]) == (("R", 1),)


def test_epochs_survive_clear():
    database = _database()
    cache = StatsCache()
    cache.relation_stats(database, "R")
    database.insert("R", [(3000 + i, 0) for i in range(30)])
    assert cache.epochs_for(database, ["R"]) == (("R", 1),)
    cache.clear()
    assert len(cache) == 0
    assert cache.epochs_for(database, ["R"]) == (("R", 1),)


def test_schema_change_invalidates_entry():
    database = _database()
    cache = StatsCache()
    first = cache.relation_stats(database, "R")
    assert first.attributes.keys() == {"k", "m"}
    database.add_relation(
        Relation(("k", "m", "extra"), [(1, 2, 3)], name="R")
    )
    second = cache.relation_stats(database, "R")
    assert second is not first
    assert second.attributes.keys() == {"k", "m", "extra"}


def test_lru_eviction_is_bounded():
    cache = StatsCache()
    relations = [
        Relation(("k",), [(i,)], name=f"R{i}") for i in range(70)
    ]
    database = Database(relations)
    for relation in relations:
        cache.relation_stats(database, relation.name)
    assert len(cache) <= 64


def test_prime_installs_external_stats():
    database = _database()
    cache = StatsCache()
    merged = RelationStats(
        name="R",
        rows=123,
        attributes={"k": AttributeStats(distinct=99, total=123)},
        source="merged",
    )
    cache.prime(database, {"R": merged})
    assert cache.relation_stats(database, "R") is merged


# ---------------------------------------------------------------------------
# Cross-shard merging
# ---------------------------------------------------------------------------
def _part(name, rows, distinct, histogram=(), complete=False):
    return RelationStats(
        name=name,
        rows=rows,
        attributes={
            "k": AttributeStats(
                distinct=distinct,
                total=rows,
                histogram=histogram,
                complete=complete,
            )
        },
        source="flat",
        singletons=rows,
        resident_bytes=rows * 8,
    )


def test_merge_sums_rows_and_caps_distincts():
    merged = merge_relation_stats(
        [_part("R", 10, 9), _part("R", 6, 6)]
    )
    assert merged.rows == 16
    assert merged.source == "merged"
    assert merged.attributes["k"].distinct == 15  # 9 + 6 < 16
    capped = merge_relation_stats([_part("R", 3, 3), _part("R", 2, 2)])
    assert capped.attributes["k"].distinct == 5
    tight = merge_relation_stats([_part("R", 2, 2), _part("R", 1, 1)])
    assert tight.attributes["k"].distinct == 3
    over = merge_relation_stats([_part("R", 1, 4), _part("R", 1, 4)])
    assert over.attributes["k"].distinct == 2  # capped by cardinality


def test_merge_combines_histograms():
    merged = merge_relation_stats(
        [
            _part("R", 4, 2, histogram=(("a", 3), ("b", 1)), complete=True),
            _part("R", 4, 2, histogram=(("a", 1), ("c", 3)), complete=True),
        ]
    )
    histogram = dict(merged.attributes["k"].histogram)
    assert histogram == {"a": 4, "b": 1, "c": 3}
    assert merged.attributes["k"].complete
    assert merged.singletons == 8
    assert merged.resident_bytes == 64


def test_merge_single_part_relabels():
    merged = merge_relation_stats([_part("R", 5, 5)])
    assert merged.source == "merged"
    assert merged.rows == 5


def test_merge_requires_parts():
    with pytest.raises(ValueError):
        merge_relation_stats([])
