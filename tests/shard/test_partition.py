"""Hash partitioning: determinism, disjointness, key selection."""

from repro.core.build import factorise_path
from repro.database import Database
from repro.relational.relation import Relation
from repro.shard.partition import (
    balance,
    choose_partition_key,
    partition_relation,
    shard_of,
)


def _relation():
    rows = [(f"k{i % 7}", i, i * 2) for i in range(50)]
    return Relation(("k", "a", "b"), rows, name="R")


def test_shard_of_is_deterministic_and_in_range():
    for shards in (1, 2, 4, 8):
        for value in ("k0", "k1", 42, 3.5, None, ("t", 1)):
            owner = shard_of(value, shards)
            assert 0 <= owner < shards
            assert owner == shard_of(value, shards)  # stable


def test_shard_of_single_shard_is_zero():
    assert shard_of("anything", 1) == 0


def test_partition_is_a_disjoint_cover():
    relation = _relation()
    parts = partition_relation(relation, "k", 4)
    assert len(parts) == 4
    recombined = [row for part in parts for row in part.rows]
    assert sorted(recombined) == sorted(relation.rows)
    # Every key value lives in exactly one shard.
    for part_index, part in enumerate(parts):
        for row in part.rows:
            assert shard_of(row[0], 4) == part_index


def test_partition_preserves_schema_and_name():
    parts = partition_relation(_relation(), "a", 3)
    for part in parts:
        assert part.schema == ("k", "a", "b")
        assert part.name == "R"


def test_choose_key_prefers_explicit_override():
    database = Database([_relation()])
    assert choose_partition_key(database, "R", "b") == "b"
    # An override absent from the schema falls through to the default.
    assert choose_partition_key(database, "R", "zzz") == "k"


def test_choose_key_uses_factorisation_root():
    relation = _relation()
    database = Database([relation])
    database.add_factorised(
        "R", factorise_path(relation, key="R", order=["a", "k", "b"])
    )
    assert choose_partition_key(database, "R") == "a"


def test_choose_key_falls_back_to_first_attribute():
    database = Database([_relation()])
    assert choose_partition_key(database, "R") == "k"


def test_balance():
    assert balance([10, 10, 10, 10]) == 0.25
    assert balance([40, 0, 0, 0]) == 1.0
    assert balance([0, 0]) == 0.0
