"""The ``fdb-parallel`` backend: parity, knobs, deltas, lifecycle."""

import pytest

from repro import connect
from repro.api.engines import available_engines
from repro.data.workloads import FULL_WORKLOAD, build_workload_database
from repro.shard.engine import ShardedFDBBackend

from tests.conftest import assert_same_relation


@pytest.fixture(scope="module")
def db():
    return build_workload_database(scale=0.1, seed=7)


@pytest.fixture(scope="module")
def sessions(db):
    base = connect(db, engine="fdb")
    parallel = connect(db, engine="fdb-parallel", shards=3, workers=0)
    yield base, parallel
    parallel.close()


def _assert_order_respected(query, result):
    keys = [k.attribute for k in query.order_by]
    positions = [result.schema.index(k) for k in keys]
    projected = [tuple(row[p] for p in positions) for row in result.rows]
    from repro.relational.sort import sort_rows

    assert projected == sort_rows(projected, keys, query.order_by)


def test_registered_in_the_engine_registry():
    assert "fdb-parallel" in available_engines()


@pytest.mark.parametrize("name", sorted(FULL_WORKLOAD))
def test_catalogue_parity_with_fdb(sessions, name):
    base, parallel = sessions
    query = FULL_WORKLOAD[name].query
    expected = base.execute(query)
    actual = parallel.execute(query)
    assert actual.schema == expected.schema
    assert_same_relation(actual.relation, expected.relation)
    if query.order_by:
        _assert_order_respected(query, actual)


def test_parallel_workers_match_sequential(db):
    with connect(db, engine="fdb-parallel", shards=4, workers=2) as parallel:
        sequential = connect(db, engine="fdb-parallel", shards=4, workers=0)
        for name in ("Q2", "Q5", "Q7", "Q10", "E3"):
            query = FULL_WORKLOAD[name].query
            assert parallel.execute(query).rows == sequential.execute(query).rows


def test_shard_and_worker_knobs_via_connect(db):
    session = connect(db, engine="fdb-parallel", shards=2, workers=0)
    backend = session._resolve(None)
    assert isinstance(backend, ShardedFDBBackend)
    assert backend.shards == 2
    assert backend.workers == 0
    assert backend._store is not None
    assert backend._store.shards == 2


def test_single_shard_matches_fdb(db):
    base = connect(db, engine="fdb")
    one = connect(db, engine="fdb-parallel", shards=1, workers=0)
    query = FULL_WORKLOAD["Q2"].query
    assert one.execute(query).rows == base.execute(query).rows


def test_invalid_knobs_rejected():
    with pytest.raises(ValueError, match="shard count"):
        ShardedFDBBackend(shards=0)
    with pytest.raises(ValueError, match="worker count"):
        ShardedFDBBackend(shards=2, workers=-1)


def test_partition_key_override(db):
    session = connect(
        db, engine="fdb-parallel", shards=2, workers=0, key="customer"
    )
    backend = session._resolve(None)
    # Views holding "customer" partition on it; others keep their default.
    assert backend._store.keys["Orders"] == "customer"
    assert backend._store.keys["Items"] == "item"
    base = connect(db, engine="fdb")
    for name in ("Q2", "Q13"):
        query = FULL_WORKLOAD[name].query
        assert_same_relation(
            session.execute(query).relation, base.execute(query).relation
        )


def test_multi_relation_queries_fall_back_sequentially(db):
    from repro.query import Query, aggregate

    query = Query(
        relations=("Orders", "Packages", "Items"),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
    )
    base = connect(db, engine="fdb")
    parallel = connect(db, engine="fdb-parallel", shards=3, workers=0)
    assert_same_relation(
        parallel.execute(query).relation, base.execute(query).relation
    )
    assert "sequential FDB fallback" in parallel.explain(query)


def test_explain_reports_shard_stats(sessions):
    _, parallel = sessions
    text = parallel.explain(FULL_WORKLOAD["Q2"].query)
    assert "3 shard(s)" in text
    assert "rows per shard" in text
    assert "merge-aggregate" in text
    text = parallel.explain(FULL_WORKLOAD["Q10"].query)
    assert "heap merge" in text


def test_result_explain_carries_shard_stats(sessions):
    _, parallel = sessions
    result = parallel.execute(FULL_WORKLOAD["Q4"].query)
    assert "rows per shard" in result.explain()
    assert result.stats.engine.startswith("FDB∥")


# ---------------------------------------------------------------------------
# Mutations
# ---------------------------------------------------------------------------
def test_deltas_route_to_owning_shard():
    db = build_workload_database(scale=0.1, seed=11)
    base = connect(db, engine="fdb")
    parallel = connect(db, engine="fdb-parallel", shards=3, workers=0)
    query = FULL_WORKLOAD["Q2"].query
    parallel.execute(query)  # prepare the store
    backend = parallel._resolve(None)
    store = backend._store
    orders = list(db.flat("Orders").rows)
    parallel.insert(
        "Orders",
        [("cSHARD", "dSHARD001", orders[0][2]), ("cSHARD", "dSHARD002", orders[1][2])],
    )
    parallel.delete("Orders", [orders[0]])
    assert_same_relation(
        parallel.execute(query).relation, base.execute(query).relation
    )
    # Row deltas were forwarded, not rebuilt: the store is the same object.
    assert parallel._resolve(None)._store is store
    assert store.generation > 0
    # The shards still form a disjoint cover of the mutated base data.
    recombined = sorted(
        row
        for shard_db in store.databases
        for row in shard_db.flat("Orders").rows
    )
    assert recombined == sorted(db.flat("Orders").rows)


def test_watch_stays_fresh_on_the_parallel_engine():
    db = build_workload_database(scale=0.1, seed=11)
    session = connect(db, engine="fdb-parallel", shards=2, workers=0)
    live = session.watch(
        session.query("R1").group_by("customer").sum("price", "rev")
    )
    package = db.flat("Orders").rows[0][2]
    session.insert("Orders", [("cLIVE", "dLIVE0001", package)])
    assert any(row[0] == "cLIVE" for row in live.result.rows)


def test_catalogue_registration_forces_reprepare():
    from repro.relational.relation import Relation

    database = build_workload_database(scale=0.1, seed=13)
    session = connect(database, engine="fdb-parallel", shards=2, workers=0)
    session.execute(FULL_WORKLOAD["Q2"].query)
    first_store = session._resolve(None)._store
    session.add_relation(Relation(("z",), [(1,), (2,)], "Z"))
    result = session.query("Z").count("n").run()
    assert result.rows == [(2,)]
    assert session._resolve(None)._store is not first_store


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
def test_session_close_releases_resources_and_is_final(db):
    import pytest

    from repro import SessionClosedError

    session = connect(db, engine="fdb-parallel", shards=2, workers=0)
    query = FULL_WORKLOAD["Q5"].query
    before = session.execute(query).rows
    backend = session._resolve(None)
    session.close()
    assert backend._store is None
    session.close()  # idempotent
    with pytest.raises(SessionClosedError):
        session.execute(query)
    # The database itself is untouched: a fresh session keeps working.
    assert connect(db, engine="fdb-parallel", shards=2, workers=0).execute(
        query
    ).rows == before


def test_session_context_manager(db):
    with connect(db, engine="fdb-parallel", shards=2, workers=0) as session:
        rows = session.execute(FULL_WORKLOAD["Q5"].query).rows
    assert len(rows) == 1
