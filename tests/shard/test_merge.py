"""The merge layer: strategy planning and partial-state combination."""

from repro.query import Having, Query, aggregate
from repro.relational.relation import Relation
from repro.relational.sort import SortKey
from repro.shard.merge import (
    HEAP_MERGE,
    MERGE_AGGREGATE,
    UNION,
    combine_component,
    finalise_spec,
    heap_merge,
    merge_aggregates,
    plan_shards,
    union_rows,
)


def _agg_query(**overrides):
    fields = dict(
        relations=("R",),
        group_by=("g",),
        aggregates=(
            aggregate("sum", "v", "total"),
            aggregate("avg", "v", "mean"),
            aggregate("min", "v", "lo"),
        ),
    )
    fields.update(overrides)
    return Query(**fields)


# ---------------------------------------------------------------------------
# Strategy planning
# ---------------------------------------------------------------------------
def test_aggregate_queries_plan_merge_aggregate():
    plan = plan_shards(_agg_query(order_by=(SortKey("total"),), limit=3))
    assert plan.strategy == MERGE_AGGREGATE
    # AVG travels as its (sum, count) pair; components are deduplicated.
    assert plan.components == (("sum", "v"), ("count", None), ("min", "v"))
    # The shard query returns raw partial states: no HAVING/ORDER/LIMIT.
    assert plan.shard_query.order_by == ()
    assert plan.shard_query.limit is None
    assert plan.shard_query.having == ()
    assert plan.shard_query.group_by == ("g",)
    assert [s.function for s in plan.shard_query.aggregates] == [
        "sum",
        "count",
        "min",
    ]


def test_ordered_enumeration_plans_heap_merge():
    query = Query(
        relations=("R",), order_by=(SortKey("a"),), limit=5
    )
    plan = plan_shards(query)
    assert plan.strategy == HEAP_MERGE
    # Per-shard top-k is kept: global top-k rows are shard-local top-k.
    assert plan.shard_query.limit == 5
    assert plan.shard_query.order_by == (SortKey("a"),)


def test_unordered_spj_plans_union():
    plan = plan_shards(Query(relations=("R",), projection=("a",)))
    assert plan.strategy == UNION


def test_plan_describe_mentions_strategy():
    assert "merge-aggregate" in plan_shards(_agg_query()).describe()
    assert "heap merge" in plan_shards(
        Query(relations=("R",), order_by=(SortKey("a"),))
    ).describe()


# ---------------------------------------------------------------------------
# Component combination
# ---------------------------------------------------------------------------
def test_combine_component_none_is_identity():
    assert combine_component("sum", None, 5) == 5
    assert combine_component("min", 3, None) == 3
    assert combine_component("max", None, None) is None


def test_combine_component_folds():
    assert combine_component("sum", 2, 3) == 5
    assert combine_component("count", 2, 3) == 5
    assert combine_component("min", 2, 3) == 2
    assert combine_component("max", 2, 3) == 3


def test_finalise_avg_none_on_zero_count():
    components = (("sum", "v"), ("count", None))
    spec = aggregate("avg", "v", "mean")
    assert finalise_spec(spec, components, (None, 0)) is None
    assert finalise_spec(spec, components, (10, 4)) == 2.5


# ---------------------------------------------------------------------------
# merge_aggregates
# ---------------------------------------------------------------------------
def test_merge_aggregates_combines_groups_across_shards():
    query = _agg_query()
    plan = plan_shards(query)
    schema = ("g",) + tuple(s.alias for s in plan.shard_query.aggregates)
    shard_a = Relation(schema, [("x", 10, 2, 4), ("y", 1, 1, 1)])
    shard_b = Relation(schema, [("x", 20, 3, 3)])
    merged = merge_aggregates(query, plan.components, [shard_a, shard_b])
    assert merged.schema == ("g", "total", "mean", "lo")
    assert merged.rows == [("x", 30, 6.0, 3), ("y", 1, 1.0, 1)]


def test_merge_aggregates_ungrouped_null_rows():
    query = Query(
        relations=("R",),
        aggregates=(
            aggregate("count", None, "n"),
            aggregate("sum", "v", "t"),
            aggregate("max", "v", "hi"),
        ),
    )
    plan = plan_shards(query)
    schema = tuple(s.alias for s in plan.shard_query.aggregates)
    empty = Relation(schema, [(0, None, None)])
    full = Relation(schema, [(3, 12, 9)])
    merged = merge_aggregates(query, plan.components, [empty, full, empty])
    assert merged.rows == [(3, 12, 9)]
    all_empty = merge_aggregates(query, plan.components, [empty, empty])
    assert all_empty.rows == [(0, None, None)]


def test_merge_aggregates_applies_having_order_limit():
    query = _agg_query(
        having=(Having("total", ">", 5),),
        order_by=(SortKey("total", descending=True),),
        limit=1,
    )
    plan = plan_shards(query)
    schema = ("g",) + tuple(s.alias for s in plan.shard_query.aggregates)
    shard_a = Relation(schema, [("x", 10, 2, 4), ("y", 3, 1, 3)])
    shard_b = Relation(schema, [("y", 4, 2, 2), ("z", 100, 1, 100)])
    merged = merge_aggregates(query, plan.components, [shard_a, shard_b])
    # y merges to total 7 (> 5), z is 100, x is 10: desc order, top 1.
    assert merged.rows == [("z", 100, 100.0, 100)]


# ---------------------------------------------------------------------------
# heap merge and union
# ---------------------------------------------------------------------------
def test_heap_merge_interleaves_sorted_streams():
    query = Query(relations=("R",), order_by=(SortKey("a"),))
    rows = heap_merge(
        query,
        ("a", "b"),
        [[(1, "p"), (4, "q")], [(2, "r")], [(3, "s"), (5, "t")]],
    )
    assert rows == [(1, "p"), (2, "r"), (3, "s"), (4, "q"), (5, "t")]


def test_heap_merge_descending_with_limit_and_dedup():
    query = Query(
        relations=("R",),
        order_by=(SortKey("a", descending=True),),
        limit=3,
    )
    rows = heap_merge(
        query, ("a",), [[(9,), (5,), (1,)], [(9,), (7,)]]
    )
    assert rows == [(9,), (7,), (5,)]


def test_union_rows_deduplicates_and_limits():
    query = Query(relations=("R",), projection=("a",), limit=3)
    relations = [
        Relation(("a",), [(1,), (2,)]),
        Relation(("a",), [(2,), (3,), (4,)]),
    ]
    assert union_rows(query, relations) == [(1,), (2,), (3,)]
