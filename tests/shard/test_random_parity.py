"""Seeded random-query parity: ``fdb-parallel`` vs ``fdb``.

Random queries over the FULL_WORKLOAD catalogue's views (grouping,
aggregates, selections, ordering, limits) must produce the same rows on
the sharded engine as on the unsharded FDB reference.  Arithmetic stays
integral so float summation order cannot introduce spurious drift.
"""

import random

import pytest

from repro import col, connect
from repro.data.workloads import build_workload_database
from repro.query import Comparison, Query, aggregate
from repro.relational.sort import SortKey, sort_rows

SEED = "shard-parity/2013"
QUERIES = 60


@pytest.fixture(scope="module")
def db():
    return build_workload_database(scale=0.1, seed=7)


def _random_query(rng: random.Random, database) -> Query:
    view = rng.choice(["R1", "R1", "R2", "R3", "Orders"])
    schema = list(database.schema(view))
    numeric = [a for a in schema if a == "price"]

    comparisons = []
    if rng.random() < 0.5:
        attribute = rng.choice(schema)
        value = rng.choice(
            [row[schema.index(attribute)] for row in database.flat(view).rows]
        )
        op = rng.choice(["=", "<", "<=", ">", ">=", "!="])
        comparisons.append(Comparison(attribute, op, value))
    if numeric and rng.random() < 0.25:
        comparisons.append(
            Comparison(col("price") * 2 + 1, rng.choice([">", "<="]), 15)
        )

    group_by = tuple(
        rng.sample(schema, rng.randint(0, min(2, len(schema) - 1)))
    )
    aggregates = []
    if rng.random() < 0.6:
        # Sums and averages need a numeric argument; counts and
        # extrema work over any attribute.
        allowed = (
            ["sum", "count", "min", "max", "avg"]
            if numeric
            else ["count", "min", "max"]
        )
        functions = rng.sample(allowed, rng.randint(1, min(3, len(allowed))))
        for index, function in enumerate(functions):
            if function == "count":
                target = None
            elif function in ("sum", "avg"):
                target = (
                    col("price") * 3 + 1
                    if rng.random() < 0.3
                    else "price"
                )
            else:
                target = "price" if numeric else rng.choice(schema)
            aggregates.append(aggregate(function, target, f"a{index}"))

    order_by = ()
    limit = None
    if aggregates:
        if group_by and rng.random() < 0.5:
            order_by = tuple(
                SortKey(a, rng.random() < 0.5) for a in group_by
            )
        if rng.random() < 0.3:
            limit = rng.randint(0, 5)
    projection = None if aggregates else tuple(rng.sample(schema, 2))
    if not aggregates:
        keys = rng.sample(projection, rng.randint(0, 2))
        order_by = tuple(SortKey(a, rng.random() < 0.5) for a in keys)
        if rng.random() < 0.5:
            limit = rng.randint(0, 20)

    return Query(
        relations=(view,),
        comparisons=tuple(comparisons),
        group_by=group_by if aggregates else (),
        aggregates=tuple(aggregates),
        projection=projection,
        order_by=order_by,
        limit=limit,
    )


def _assert_parity(query, reference, actual):
    assert actual.schema == reference.schema, query
    if query.limit is None:
        assert sorted(map(repr, actual.rows)) == sorted(
            map(repr, reference.rows)
        ), query
    else:
        # With a limit the kept subset may legitimately differ; check
        # the cardinality and (below) the ordering contract instead.
        assert len(actual.rows) == len(reference.rows), query
    if query.order_by:
        keys = [k.attribute for k in query.order_by]
        positions = [actual.schema.index(k) for k in keys]
        projected = [tuple(row[p] for p in positions) for row in actual.rows]
        assert projected == sort_rows(projected, keys, query.order_by), query
        if query.limit is not None:
            reference_projected = [
                tuple(row[reference.schema.index(k)] for k in keys)
                for row in reference.rows
            ]
            assert projected == reference_projected, query


def test_seeded_random_queries_agree(db):
    rng = random.Random(SEED)
    base = connect(db, engine="fdb")
    parallel = connect(db, engine="fdb-parallel", shards=3, workers=0)
    for _ in range(QUERIES):
        query = _random_query(rng, db)
        _assert_parity(
            query, base.execute(query), parallel.execute(query)
        )


def test_seeded_random_queries_agree_in_parallel(db):
    rng = random.Random(SEED + "/process-pool")
    base = connect(db, engine="fdb")
    with connect(db, engine="fdb-parallel", shards=4, workers=2) as parallel:
        for _ in range(10):
            query = _random_query(rng, db)
            _assert_parity(
                query, base.execute(query), parallel.execute(query)
            )


def test_random_parity_survives_mutations(db):
    rng = random.Random(SEED + "/deltas")
    database = build_workload_database(scale=0.1, seed=23)
    base = connect(database, engine="fdb")
    parallel = connect(database, engine="fdb-parallel", shards=3, workers=0)
    packages = sorted({row[2] for row in database.flat("Orders").rows})
    for step in range(8):
        if step % 2 == 0:
            parallel.insert(
                "Orders",
                [(f"c{step:03d}", f"dRND{step:05d}", rng.choice(packages))],
            )
        else:
            victim = rng.choice(database.flat("Orders").rows)
            parallel.delete("Orders", [victim])
        for _ in range(3):
            query = _random_query(rng, database)
            _assert_parity(
                query, base.execute(query), parallel.execute(query)
            )
