"""Parameter discovery, binding, and the SQL placeholder front-end."""

import pytest

from repro import col, connect, param
from repro.expr import Param, UnboundParamError
from repro.plan import ParameterError, bind_params, collect_params
from repro.relational.relation import Relation
from repro.sql import parse_query
from repro.sql.lexer import SQLSyntaxError

ENGINES = ("fdb", "fdb-factorised", "rdb", "rdb-hash", "sqlite", "fdb-parallel")


@pytest.fixture()
def session():
    rows = [("a", 1, 5), ("a", 2, 9), ("b", 1, 30), ("c", 4, 2)]
    return connect(Relation(("g", "k", "price"), rows, name="R"))


# ---------------------------------------------------------------------------
# Collection and binding
# ---------------------------------------------------------------------------
def test_collect_params_clause_order(session):
    q = (
        session.query("R")
        .where("price", ">", param("floor"))
        .where(col("price") * param("rate"), "<", 100)
        .group_by("g")
        .sum("price", "rev")
        .having("rev", ">", param("cut"))
        .to_query()
    )
    assert collect_params(q) == ("floor", "rate", "cut")


def test_bind_params_replaces_everything(session):
    q = (
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
        .to_query()
    )
    bound = bind_params(q, {"floor": 4})
    assert collect_params(bound) == ()
    assert bound.comparisons[0].value == 4


def test_bind_params_missing_and_unknown(session):
    q = (
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
        .to_query()
    )
    with pytest.raises(ParameterError, match="missing values.*:floor"):
        bind_params(q, {})
    with pytest.raises(ParameterError, match="unknown parameters.*:floot"):
        bind_params(q, {"floor": 1, "floot": 2})


def test_arithmetic_params_must_be_numeric(session):
    q = (
        session.query("R")
        .where(col("price") * param("rate"), ">", 10)
        .select("g")
        .to_query()
    )
    with pytest.raises(ParameterError, match="must bind to a number"):
        bind_params(q, {"rate": "two"})


def test_param_nested_in_condition_value_rejected(session):
    q = (
        session.query("R")
        .where("price", ">", param("floor") + 1)
        .select("g")
        .to_query()
    )
    with pytest.raises(ParameterError, match="move the arithmetic"):
        collect_params(q)
    with pytest.raises(ParameterError, match="move the arithmetic"):
        session.prepare(q)
    # The canonical rewrite works: arithmetic on the left side.
    ok = (
        session.query("R")
        .where(col("price") - 1, ">", param("floor"))
        .select("g")
        .to_query()
    )
    assert collect_params(ok) == ("floor",)
    rows = session.prepare(ok).run(floor=4).rows
    assert sorted(rows) == [("a",), ("b",)]


def test_aggregate_argument_params_rejected(session):
    q = (
        session.query("R")
        .group_by("g")
        .sum(col("price") * param("rate"), alias="rev")
        .to_query()
    )
    with pytest.raises(ParameterError, match="aggregate argument"):
        collect_params(q)
    with pytest.raises(ParameterError, match="aggregate argument"):
        session.prepare(q)


def test_unbound_param_evaluation_raises_clearly():
    condition_value = Param("x")
    from repro.query import Comparison

    with pytest.raises(UnboundParamError, match="prepared query"):
        Comparison("price", ">", condition_value).test(5)
    with pytest.raises(UnboundParamError, match=":x"):
        Param("x").evaluate({})


def test_param_names_validated():
    with pytest.raises(ValueError, match="identifiers"):
        param("not valid")
    with pytest.raises(ValueError, match="identifiers"):
        param("1st")


# ---------------------------------------------------------------------------
# SQL placeholders
# ---------------------------------------------------------------------------
def test_sql_named_placeholders_parse():
    q = parse_query(
        "SELECT g, SUM(price) AS rev FROM R WHERE price > :floor GROUP BY g"
    )
    assert collect_params(q) == ("floor",)
    assert q.comparisons[0].value == Param("floor")


def test_sql_anonymous_placeholders_number_in_textual_order():
    q = parse_query(
        "SELECT g FROM R WHERE price > ? AND k < ?"
    )
    assert collect_params(q) == ("p1", "p2")


def test_sql_mixing_placeholder_styles_rejected():
    with pytest.raises(SQLSyntaxError, match="cannot mix"):
        parse_query("SELECT g FROM R WHERE price > ? AND k < :cap")
    with pytest.raises(SQLSyntaxError, match="cannot mix"):
        parse_query("SELECT g FROM R WHERE price > :floor AND k < ?")


def test_sql_param_in_arithmetic_and_having():
    q = parse_query(
        "SELECT g, SUM(price) AS rev FROM R WHERE price * :rate > 10 "
        "GROUP BY g HAVING rev > :cut"
    )
    assert collect_params(q) == ("rate", "cut")


def test_sql_bad_param_positions():
    with pytest.raises(SQLSyntaxError, match="parameter name"):
        parse_query("SELECT g FROM R WHERE price > :1")
    with pytest.raises(SQLSyntaxError, match="INSERT VALUES"):
        from repro.sql import parse_statement

        parse_statement("INSERT INTO R VALUES (?, ?, ?)")


def test_generated_sql_renders_placeholders_and_round_trips(session):
    q = (
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
        .to_query()
    )
    from repro.sql.generator import query_to_sql

    sql = query_to_sql(q)
    assert ":floor" in sql
    reparsed = parse_query(sql)
    assert collect_params(reparsed) == ("floor",)
    # The parse → generate cycle is a fixed point.
    assert query_to_sql(reparsed) == sql


# ---------------------------------------------------------------------------
# Cross-engine parity with parameters
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_param_parity_across_engines(session, engine):
    options = {"shards": 2, "workers": 0} if engine == "fdb-parallel" else {}
    with connect(session.database, engine=engine, **options) as other:
        prepared = other.prepare(
            "SELECT g, SUM(price) AS rev FROM R WHERE price > :floor GROUP BY g"
        )
        assert sorted(prepared.run(floor=4).rows) == [("a", 14), ("b", 30)]
        assert sorted(prepared.run(floor=0).rows) == [
            ("a", 14),
            ("b", 30),
            ("c", 2),
        ]
        # Positional binding follows declaration order.
        assert sorted(prepared.run(4).rows) == [("a", 14), ("b", 30)]


@pytest.mark.parametrize("engine", ENGINES)
def test_string_params(session, engine):
    options = {"shards": 2, "workers": 0} if engine == "fdb-parallel" else {}
    with connect(session.database, engine=engine, **options) as other:
        prepared = other.prepare(
            "SELECT SUM(price) AS total FROM R WHERE g = :which"
        )
        assert prepared.run(which="a").rows == [(14,)]
        assert prepared.run(which="b").rows == [(30,)]


def test_run_binding_errors(session):
    prepared = session.prepare(
        "SELECT g FROM R WHERE price > :floor AND k < :cap"
    )
    with pytest.raises(ParameterError, match="positional"):
        prepared.run(1, 2, 3)
    with pytest.raises(ParameterError, match="both positionally and by name"):
        prepared.run(1, floor=2, cap=3)
    with pytest.raises(ParameterError, match="missing"):
        prepared.run(floor=1)


def test_one_shot_execute_with_params(session):
    result = session.execute(
        "SELECT g, SUM(price) AS rev FROM R WHERE price > ? GROUP BY g",
        params={"p1": 4},
    )
    assert sorted(result.rows) == [("a", 14), ("b", 30)]
    result = session.sql(
        "SELECT g, SUM(price) AS rev FROM R WHERE price > :floor GROUP BY g",
        params={"floor": 4},
    )
    assert sorted(result.rows) == [("a", 14), ("b", 30)]
