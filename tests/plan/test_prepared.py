"""The prepared-query lifecycle: caches, invalidation, explain surface."""

import pytest

from repro import connect, param
from repro.core.build import factorise_path
from repro.plan import PreparedQuery, canonical_key
from repro.relational.relation import Relation

ENGINES = ("fdb", "fdb-factorised", "rdb", "rdb-hash", "sqlite", "fdb-parallel")


def _relation():
    rows = [("a", 1, 5), ("a", 2, 9), ("b", 1, 30), ("c", 4, 2)]
    return Relation(("g", "k", "price"), rows, name="R")


@pytest.fixture()
def session():
    return connect(_relation())


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
def test_repeated_execute_hits_the_plan_cache(session):
    sql = "SELECT g, SUM(price) AS rev FROM R WHERE price > :f GROUP BY g"
    first = session.execute(sql, params={"f": 4})
    assert first.lifecycle.plan_cache == "miss"
    # A new binding misses the result cache but reuses the plan.
    rebound = session.execute(sql, params={"f": 0})
    assert rebound.lifecycle.plan_cache == "hit"
    assert "plan cache hit" in rebound.explain()
    # An identical re-execution is served whole from the result cache
    # (no plan work at all — hence "skipped").
    repeat = session.execute(sql, params={"f": 0})
    assert repeat.lifecycle.result_cache == "hit"
    assert repeat.lifecycle.plan_cache == "skipped"
    assert sorted(repeat.rows) == sorted(rebound.rows)
    assert "result cache hit" in repeat.explain()
    assert session.caches.plans.stats.hits >= 1


def test_structurally_identical_queries_share_one_plan(session):
    built = session.query("R").group_by("g").sum("price", "rev")
    session.execute(built)
    parsed = session.execute("SELECT g, SUM(price) AS rev FROM R GROUP BY g")
    # Same canonical structure → the SQL spelling reuses the built plan.
    assert parsed.lifecycle.plan_cache in ("hit", "skipped")


def test_prepared_rerun_skips_optimisation(session):
    prepared = session.prepare(
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
    )
    first = prepared.run(floor=4)
    assert first.lifecycle.plan_cache == "miss"
    rebound = prepared.run(floor=0)
    assert rebound.lifecycle.plan_cache == "hit"  # new binding, same plan
    assert "plan cache hit" in rebound.explain()
    repeat = prepared.run(floor=0)
    assert repeat.lifecycle.result_cache == "hit"


def test_catalogue_change_invalidates_plans(session):
    sql = "SELECT g, SUM(price) AS rev FROM R GROUP BY g"
    session.execute(sql)
    before = sorted(session.execute(sql).rows)
    # Re-registering R (here: the same rows under a factorised view)
    # changes the catalogue fingerprint — the plan recompiles.
    fact = factorise_path(_relation(), key="R", order=["g", "k", "price"])
    session.add_factorised("R", fact)
    after = session.execute(sql)
    assert after.lifecycle.plan_cache == "miss"
    assert sorted(after.rows) == before
    assert session.caches.plans.stats.invalidations >= 1


def test_engine_choices_do_not_share_plans(session):
    sql = "SELECT g, SUM(price) AS rev FROM R GROUP BY g"
    a = session.execute(sql, engine="fdb")
    b = session.execute(sql, engine="sqlite")
    assert b.lifecycle.plan_cache == "miss"  # sqlite compiled its own
    assert sorted(a.rows) == sorted(b.rows)


def test_plan_cache_lru_eviction():
    session = connect(_relation(), plan_cache_size=2, result_cache_size=2)
    for floor in range(4):
        session.execute(f"SELECT g FROM R WHERE price > {floor}")
    assert len(session.caches.plans) <= 2
    assert session.caches.plans.stats.evictions >= 2


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
def test_mutation_evicts_only_touched_relations(session):
    session.add_relation(Relation(("z",), [(1,), (2,)], "Z"))
    r_sql = "SELECT g, SUM(price) AS rev FROM R GROUP BY g"
    z_sql = "SELECT COUNT(*) AS n FROM Z"
    session.execute(r_sql), session.execute(z_sql)
    session.insert("Z", [(3,)])
    # The R result survives the Z insert (fine-grained invalidation)...
    assert session.execute(r_sql).lifecycle.result_cache == "hit"
    # ...the Z result does not.
    fresh = session.execute(z_sql)
    assert fresh.lifecycle.result_cache == "miss"
    assert fresh.rows == [(3,)]
    session.insert("R", [("d", 1, 50)])
    bumped = session.execute(r_sql)
    assert bumped.lifecycle.result_cache == "miss"
    assert sorted(bumped.rows) == [("a", 14), ("b", 30), ("c", 2), ("d", 50)]


def test_view_maintenance_evicts_dependent_results():
    """A delta to a base relation evicts results over views derived
    from it — the change-log's view_deltas carry the dependency."""
    from repro.data.workloads import build_workload_database

    database = build_workload_database(scale=0.1, seed=7)
    session = connect(database)
    sql = "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer"
    session.execute(sql)
    assert session.execute(sql).lifecycle.result_cache == "hit"
    # Orders feeds the registered factorised view R1.
    session.insert("Orders", [("c000", "dPREP001", "p00000")])
    refreshed = session.execute(sql)
    assert refreshed.lifecycle.result_cache == "miss"
    # Parity with a cold engine after the mutation.
    with connect(database, cache=False) as cold:
        assert sorted(refreshed.rows) == sorted(cold.execute(sql).rows)


def test_cache_disabled_sessions_still_prepare():
    session = connect(_relation(), cache=False)
    prepared = session.prepare(
        session.query("R").where("price", ">", param("floor")).select("g")
    )
    first = prepared.run(floor=4)
    assert first.lifecycle.result_cache == "off"
    # The handle retains its own plan even without shared caches.
    again = prepared.run(floor=4)
    assert again.lifecycle.plan_cache == "hit"
    assert sorted(again.rows) == sorted(first.rows)
    assert len(session.caches.plans) == 0


def test_cached_results_are_isolated_from_caller_mutation(session):
    sql = "SELECT g, price FROM R ORDER BY g"
    first = session.execute(sql)
    pristine = list(first.rows)
    # Mutating a returned result must not poison the cache...
    first.rows.reverse()
    second = session.execute(sql)
    assert second.lifecycle.result_cache == "hit"
    assert second.rows == pristine
    # ...and mutating a hit must not poison later hits either.
    second.rows.clear()
    third = session.execute(sql)
    assert third.lifecycle.result_cache == "hit"
    assert third.rows == pristine
    assert first is not second is not third  # fresh Result per execution


def test_unknown_params_rejected_even_without_declared_params(session):
    from repro.plan import ParameterError

    with pytest.raises(ParameterError, match="unknown parameters"):
        session.execute(
            "SELECT COUNT(*) AS n FROM R", params={"floor": 3}
        )


def test_delete_statements_reject_placeholders(session):
    from repro.sql.lexer import SQLSyntaxError

    with pytest.raises(SQLSyntaxError, match="not supported in DELETE"):
        session.sql("DELETE FROM R WHERE price > :x")


def test_sequence_params_bind_positionally(session):
    result = session.sql(
        "SELECT g, SUM(price) AS rev FROM R WHERE price > ? GROUP BY g",
        params=[4],
    )
    assert sorted(result.rows) == [("a", 14), ("b", 30)]
    from repro.plan import ParameterError

    with pytest.raises(ParameterError, match="mapping.*or a sequence"):
        session.execute("SELECT g FROM R WHERE price > ?", params=4)


def test_result_cache_hit_does_not_freshen_the_backend(session):
    """A hit must not forward change-log records into the backend."""
    sql = "SELECT g, SUM(price) AS rev FROM R GROUP BY g"
    session.execute(sql, engine="sqlite")
    backend = session._peek("sqlite")
    forwarded = []
    original = backend.forward

    def counting_forward(records, database):
        forwarded.append(len(list(records)))
        return original(records, database)

    backend.forward = counting_forward
    try:
        session.add_relation(Relation(("z",), [(1,)], "Zf"))
        hit = session.execute(sql, engine="sqlite")
        assert hit.lifecycle.result_cache == "hit"
        assert forwarded == []  # the skipped work stayed skipped
    finally:
        backend.forward = original


def test_prepared_explain_respects_closed_session(session):
    from repro import SessionClosedError

    prepared = session.prepare("SELECT COUNT(*) AS n FROM R")
    result = prepared.run()
    text = result.explain()  # cached on the Result before close
    session.close()
    with pytest.raises(SessionClosedError):
        prepared.explain()
    assert result.explain() == text  # the cached text survives


def test_flipped_shard_fallback_decision_repairs_in_place():
    from repro.shard.engine import ShardedPlan

    with connect(_relation(), engine="fdb-parallel", shards=2, workers=0) as s:
        backend = s._resolve(None)
        query = s.query("R").group_by("g").sum("price", "rev").to_query()
        good = backend.run_planned(
            backend.plan(query, s.database), query, s.database
        )
        # A stale artifact that (wrongly) remembers a fallback decision.
        stale = ShardedPlan(
            query=query,
            fallback="synthetic stale reason",
            inner=backend._inner.compile(query, s.database),
        )
        repaired = backend.run_planned(stale, query, s.database)
        assert sorted(repaired.relation.rows) == sorted(good.relation.rows)
        assert stale.fallback is None  # repaired, not degraded forever
        assert stale.shard_plans


# ---------------------------------------------------------------------------
# Prepared handles across engines
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_prepared_rerun_parity(session, engine):
    options = {"shards": 2, "workers": 0} if engine == "fdb-parallel" else {}
    with connect(session.database, engine=engine, **options) as other:
        prepared = other.prepare(
            "SELECT g, SUM(price) AS rev FROM R GROUP BY g ORDER BY rev DESC"
        )
        first = prepared.run()
        second = prepared.run()
        third = other.execute(
            "SELECT g, SUM(price) AS rev FROM R GROUP BY g ORDER BY rev DESC"
        )
        assert first.rows == second.rows == third.rows
        assert second.lifecycle.result_cache == "hit"


def test_prepared_handle_introspection(session):
    prepared = session.prepare(
        session.query("R").where("price", ">", param("floor")).select("g")
    )
    assert isinstance(prepared, PreparedQuery)
    assert prepared.parameters == ("floor",)
    assert prepared.cache_key == canonical_key(prepared.query)
    assert ":floor" in repr(prepared)
    assert "f-tree" in prepared.explain() or "query" in prepared.explain()


def test_sharded_prepared_plans_survive_deltas():
    """Per-shard plans recompile when a shard slice re-factorises."""
    from repro.data.workloads import build_workload_database

    database = build_workload_database(scale=0.1, seed=7)
    with connect(database, engine="fdb-parallel", shards=3, workers=0) as s:
        prepared = s.prepare(
            "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer"
        )
        before = prepared.run()
        assert before.rows  # the cold run returned data
        s.insert("Orders", [("c000", "dSHRD001", "p00000")])
        after = prepared.run()
        assert after.lifecycle.result_cache == "miss"  # delta evicted it
        with connect(database, cache=False) as cold:
            expected = cold.execute(
                "SELECT customer, SUM(price) AS revenue FROM R1 "
                "GROUP BY customer"
            )
        assert sorted(after.rows) == sorted(expected.rows)
