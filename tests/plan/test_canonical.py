"""Canonical structural hashing: what must and must not perturb keys."""

from repro import connect, param
from repro.plan import bound_key, canonical_key, canonical_text
from repro.relational.relation import Relation
from repro.sql import parse_query


def _session():
    rows = [("a", 1, 5), ("a", 2, 9), ("b", 1, 30)]
    return connect(Relation(("g", "k", "price"), rows, name="R"))


def test_same_structure_same_key_across_construction_paths():
    session = _session()
    built = (
        session.query("R")
        .where("price", ">", 4)
        .group_by("g")
        .sum("price", "rev")
        .to_query()
    )
    parsed = parse_query(
        "SELECT g, SUM(price) AS rev FROM R WHERE price > 4 GROUP BY g"
    )
    assert canonical_key(built) == canonical_key(parsed)


def test_query_name_label_is_excluded():
    session = _session()
    builder = session.query("R").group_by("g").sum("price", "rev")
    assert canonical_key(builder.to_query()) == canonical_key(
        builder.named("labelled").to_query()
    )


def test_different_constants_change_the_key():
    session = _session()
    base = session.query("R").group_by("g").sum("price", "rev")
    assert canonical_key(
        base.where("price", ">", 4).to_query()
    ) != canonical_key(base.where("price", ">", 5).to_query())


def test_constant_type_distinguishes():
    session = _session()
    base = session.query("R").group_by("g").sum("price", "rev")
    one_int = base.where("price", "=", 1).to_query()
    one_float = base.where("price", "=", 1.0).to_query()
    assert canonical_key(one_int) != canonical_key(one_float)


def test_parameterised_queries_share_one_key():
    """The whole point of Param leaves: bindings do not perturb the key."""
    session = _session()
    q = (
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
        .to_query()
    )
    sql = parse_query(
        "SELECT g, SUM(price) AS rev FROM R WHERE price > :floor GROUP BY g"
    )
    assert canonical_key(q) == canonical_key(sql)
    assert "param:floor" in canonical_text(q)


def test_bound_key_depends_on_values_not_spelling():
    session = _session()
    q = (
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
        .to_query()
    )
    assert bound_key(q, {"floor": 4}) != bound_key(q, {"floor": 5})
    assert bound_key(q, {"floor": 4}) != canonical_key(q)
    # Same binding → same key, however it was supplied.
    assert bound_key(q, {"floor": 4}) == bound_key(q, dict(floor=4))


def test_order_and_limit_and_distinct_are_structural():
    session = _session()
    base = session.query("R").group_by("g").sum("price", "rev")
    plain = base.to_query()
    assert canonical_key(plain) != canonical_key(
        base.order_by("rev", desc=True).to_query()
    )
    assert canonical_key(plain) != canonical_key(base.limit(3).to_query())
    q1 = session.query("R").select("g").to_query()
    q2 = session.query("R").select("g").distinct().to_query()
    assert canonical_key(q1) != canonical_key(q2)
