"""Cache correctness under mutations: seeded random parity runs.

The same prepared queries are re-executed interleaved with random
inserts and deletes.  After every step the cached session must agree
with a cold (cache-free) engine, and ``explain()`` may report a result
cache hit only when the database version genuinely allows it — i.e.
no change since the entry was stored touched a relation the query
reads.
"""

import random

import pytest

from repro import connect, param
from repro.relational.relation import Relation

SEED = 20130731
STEPS = 120


def _database():
    rng = random.Random(SEED)
    rows = {
        (f"g{rng.randrange(6)}", rng.randrange(50), rng.randrange(1, 100))
        for _ in range(120)
    }
    other = {(f"z{rng.randrange(4)}", rng.randrange(30)) for _ in range(40)}
    from repro.database import Database

    return Database(
        [
            Relation(("g", "k", "price"), sorted(rows), name="R"),
            Relation(("h", "v"), sorted(other), name="Z"),
        ]
    )


QUERIES = (
    ("R", "SELECT g, SUM(price) AS rev FROM R GROUP BY g", {}),
    ("R", "SELECT g, COUNT(*) AS n, MIN(price) AS lo, MAX(price) AS hi "
          "FROM R GROUP BY g ORDER BY g", {}),
    ("R", "SELECT g, SUM(price) AS rev FROM R WHERE price > :floor "
          "GROUP BY g", {"floor": 25}),
    ("R", "SELECT AVG(price) AS a FROM R WHERE k < :cap", {"cap": 30}),
    ("Z", "SELECT h, SUM(v) AS total FROM Z GROUP BY h", {}),
)


@pytest.mark.parametrize("engine", ("fdb", "sqlite"))
def test_seeded_random_parity_under_mutations(engine):
    database = _database()
    session = connect(database, engine=engine)
    cold = connect(database, engine=engine, cache=False)
    prepared = [
        (target, session.prepare(sql), params)
        for target, sql, params in QUERIES
    ]
    # Hand-tracked validity: version of the last mutation touching each
    # relation, and the version each cache entry was stored at.
    stored_at: dict[int, int] = {}
    last_touch = {"R": database.version, "Z": database.version}

    rng = random.Random(f"parity/{SEED}/{engine}")
    serial = 0
    hits = 0
    for step in range(STEPS):
        action = rng.random()
        if action < 0.35:
            # Mutate one of the relations.
            if rng.random() < 0.5:
                serial += 1
                database.insert(
                    "R",
                    [(f"g{rng.randrange(6)}", 1000 + serial, rng.randrange(1, 100))],
                )
                last_touch["R"] = database.version
            else:
                which = rng.choice(["R", "Z"])
                rows = database.flat(which).rows
                if rows:
                    database.delete(which, [rng.choice(rows)])
                    last_touch[which] = database.version
            continue
        index = rng.randrange(len(prepared))
        target, handle, params = prepared[index]
        result = handle.run(**params)
        expected = cold.execute(handle.query, params=params)
        assert sorted(result.rows) == sorted(expected.rows), (
            f"step {step}: cached {engine} diverged from cold engine"
        )
        # A hit is only legal if nothing touched the target relation
        # since the entry was stored.
        was_valid = (
            index in stored_at and stored_at[index] >= last_touch[target]
        )
        if result.lifecycle.result_cache == "hit":
            hits += 1
            assert was_valid, (
                f"step {step}: explain reported a result-cache hit after "
                f"a mutation touched {target}"
            )
        else:
            stored_at[index] = database.version
    assert hits > 10  # the run exercised the cache, not just misses


def test_parameterised_rebinding_interleaved_with_mutations():
    database = _database()
    session = connect(database)
    cold = connect(database, cache=False)
    prepared = session.prepare(
        session.query("R")
        .where("price", ">", param("floor"))
        .group_by("g")
        .sum("price", "rev")
        .count("n")
    )
    rng = random.Random(f"rebind/{SEED}")
    for step in range(40):
        floor = rng.randrange(0, 100)
        got = prepared.run(floor=floor)
        want = cold.execute(prepared.query, params={"floor": floor})
        assert sorted(got.rows) == sorted(want.rows), f"step {step}"
        if step % 5 == 4:
            database.insert(
                "R", [(f"g{rng.randrange(6)}", 2000 + step, rng.randrange(1, 100))]
            )
