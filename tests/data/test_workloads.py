"""Tests for the Figure 3 workload definitions and view construction."""

import pytest

from repro.data.workloads import (
    AGG_ORD_QUERIES,
    AGG_QUERIES,
    ORD_QUERIES,
    WORKLOAD,
    build_workload_database,
    section6_ftree,
)


def test_thirteen_queries_defined():
    assert len(WORKLOAD) == 13
    assert set(AGG_QUERIES + AGG_ORD_QUERIES + ORD_QUERIES) == set(WORKLOAD)


def test_groups_match_figure3():
    assert all(WORKLOAD[q].group == "AGG" for q in AGG_QUERIES)
    assert all(WORKLOAD[q].group == "AGG+ORD" for q in AGG_ORD_QUERIES)
    assert all(WORKLOAD[q].group == "ORD" for q in ORD_QUERIES)


def test_q2_definition():
    q2 = WORKLOAD["Q2"].query
    assert q2.relations == ("R1",)
    assert q2.group_by == ("customer",)
    assert q2.aggregates[0].alias == "revenue"


def test_q6_q7_extend_q2():
    assert WORKLOAD["Q6"].query.order_attributes == ("customer",)
    assert WORKLOAD["Q7"].query.order_attributes == ("revenue",)
    assert WORKLOAD["Q6"].query.group_by == ("customer",)


def test_ord_queries_target_views():
    assert WORKLOAD["Q10"].query.relations == ("R2",)
    assert WORKLOAD["Q13"].query.relations == ("R3",)
    assert WORKLOAD["Q12"].query.order_attributes == ("date", "package", "item")


def test_section6_ftree_shape():
    tree = section6_ftree()
    assert tree.attribute_names() == [
        "package",
        "date",
        "customer",
        "item",
        "price",
    ]
    assert tree.satisfies_path_constraint()


def test_build_database_views(tiny_workload_db):
    db = tiny_workload_db
    for name in ("R1", "R2", "R3"):
        assert name in db.relations and name in db.factorised
    r1 = db.flat("R1")
    assert set(r1.schema) == {"customer", "date", "package", "item", "price"}
    assert db.get_factorised("R1").to_relation() == r1


def test_views_skippable():
    db = build_workload_database(scale=0.1, materialise_views=False)
    assert "R1" not in db.relations
    assert set(db.names()) == {"Orders", "Packages", "Items"}


def test_r2_sorted_and_r3_sorted(tiny_workload_db):
    from repro.relational.sort import is_sorted_by

    assert is_sorted_by(
        tiny_workload_db.flat("R2"), ["package", "date", "item"]
    )
    assert is_sorted_by(
        tiny_workload_db.flat("R3"), ["date", "customer", "package"]
    )


def test_r3_is_orders_sorted(tiny_workload_db):
    assert tiny_workload_db.flat("R3") == tiny_workload_db.flat("Orders")


def test_expression_catalogue():
    from repro.data.workloads import (
        EXPRESSION_QUERIES,
        EXPRESSION_WORKLOAD,
        FULL_WORKLOAD,
        WORKLOAD,
    )

    assert len(WORKLOAD) == 13  # Figure 3 stays untouched
    assert set(EXPRESSION_QUERIES) == {"E1", "E2", "E3", "E4", "E5"}
    assert set(FULL_WORKLOAD) == set(WORKLOAD) | set(EXPRESSION_WORKLOAD)
    sums = EXPRESSION_WORKLOAD["E1"].query.aggregates
    assert sums[0].is_expression
    assert sums[0].source_attributes == ("price",)
