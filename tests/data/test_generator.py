"""Tests for the Section 6 synthetic data generator."""

import math

import pytest

from repro.data.generator import GeneratorConfig, generate, generate_database


def test_deterministic_per_seed():
    a = generate(GeneratorConfig(scale=0.25, seed=1))
    b = generate(GeneratorConfig(scale=0.25, seed=1))
    assert a.orders.rows == b.orders.rows
    assert a.packages.rows == b.packages.rows
    assert a.items.rows == b.items.rows


def test_different_seeds_differ():
    a = generate(GeneratorConfig(scale=0.25, seed=1))
    b = generate(GeneratorConfig(scale=0.25, seed=2))
    assert a.orders.rows != b.orders.rows


def test_paper_parameters_at_scale_one():
    config = GeneratorConfig(scale=1.0)
    assert config.n_dates == 800
    assert config.n_items == 100
    assert config.n_packages == 40
    assert config.package_size == 20


def test_sqrt_scaling():
    config = GeneratorConfig(scale=4.0)
    assert config.n_dates == 3200
    assert config.n_items == 200
    assert config.n_packages == 80
    assert config.package_size == 40


def test_orders_mean_close_to_two_per_date():
    data = generate(GeneratorConfig(scale=1.0))
    per_date = len(data.orders) / data.config.n_dates
    assert 1.5 < per_date < 2.5


def test_order_dates_per_customer_average():
    config = GeneratorConfig(scale=1.0)
    data = generate(config)
    pairs = {(row[0], row[1]) for row in data.orders.rows}
    per_customer = len(pairs) / config.customers
    # ≈ 80·s order dates per customer (the paper's stated average).
    assert 0.6 * 80 < per_customer < 1.4 * 80


def test_package_sizes_near_mean():
    data = generate(GeneratorConfig(scale=1.0))
    sizes = {}
    for package, _ in data.packages.rows:
        sizes[package] = sizes.get(package, 0) + 1
    mean = sum(sizes.values()) / len(sizes)
    assert 0.6 * 20 < mean < 1.4 * 20


def test_prices_within_bounds():
    data = generate(GeneratorConfig(scale=0.25, max_price=7))
    assert all(1 <= price <= 7 for _, price in data.items.rows)


def test_orders_are_distinct_triples():
    data = generate(GeneratorConfig(scale=0.5))
    assert len(set(data.orders.rows)) == len(data.orders)


def test_generate_database_wrapper():
    data = generate_database(scale=0.1, seed=3)
    assert data.orders.schema == ("customer", "date", "package")
    assert data.packages.schema == ("package", "item")
    assert data.items.schema == ("item", "price")


def test_join_grows_faster_than_factorisation():
    from repro.core.build import factorise
    from repro.data.workloads import section6_ftree
    from repro.relational.operators import multiway_join

    gaps = []
    for scale in (0.25, 1.0):
        data = generate(GeneratorConfig(scale=scale))
        joined = multiway_join(list(data.relations()))
        fact = factorise(joined, section6_ftree())
        gaps.append(len(joined) * len(joined.schema) / fact.size())
    assert gaps[1] > gaps[0]  # the succinctness gap widens with scale
