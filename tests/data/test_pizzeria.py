"""Tests for the Figure 1 example database."""

from repro.data.pizzeria import (
    pizzeria_database,
    pizzeria_relations,
    pizzeria_view,
    t1_ftree,
)


def test_relation_sizes_match_figure1():
    orders, pizzas, items = pizzeria_relations()
    assert len(orders) == 5
    assert len(pizzas) == 7
    assert len(items) == 4


def test_view_join_size():
    joined, fact = pizzeria_view()
    assert len(joined) == 13
    assert fact.size() == 26
    assert fact.to_relation() == joined


def test_t1_shape():
    tree = t1_ftree()
    assert tree.attribute_names() == ["pizza", "date", "customer", "item", "price"]
    assert tree.satisfies_path_constraint()


def test_database_registers_both_forms():
    db = pizzeria_database()
    assert "R" in db.relations and "R" in db.factorised
    assert set(db.names()) == {"Orders", "Pizzas", "Items", "R"}
    assert db.schema("R") == db.flat("R").schema
