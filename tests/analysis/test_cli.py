"""The ``python -m repro analyze`` entry point and the verify= knob."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import PlanVerificationError
from repro.api.session import Session, connect

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )


def test_analyze_lint_only_exits_clean(tmp_path):
    report_path = tmp_path / "findings.json"
    proc = run_cli("--skip-plans", "--json", str(report_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(report_path.read_text())
    assert payload["version"] == 1
    assert payload["summary"]["errors"] == 0


def test_analyze_flags_seeded_bug(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def grow(database, rows):\n"
        '    relation = database.relations["R"]\n'
        "    relation.rows.extend(rows)\n"
    )
    report_path = tmp_path / "findings.json"
    proc = run_cli(
        "--skip-plans", "--json", str(report_path), str(bad)
    )
    assert proc.returncode == 1
    payload = json.loads(report_path.read_text())
    assert payload["summary"]["rules"].get("cow-mutation") == 1


def test_analyze_full_run_exits_clean(tmp_path):
    proc = run_cli("--skip-lint", "--scale", "0.1")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "plan" in proc.stdout


# ---------------------------------------------------------------------------
# The verify= session knob
# ---------------------------------------------------------------------------
def test_verified_session_runs_valid_queries(tiny_workload_db):
    with connect(tiny_workload_db, verify=True) as session:
        result = (
            session.query("R1")
            .group_by("customer")
            .sum("price", "revenue")
            .run()
        )
        assert result.rows


def test_verified_session_rejects_bad_aggregate(tiny_workload_db):
    with connect(tiny_workload_db, verify=True) as session:
        with pytest.raises(PlanVerificationError) as excinfo:
            session.query("R3").sum("customer").run()
    assert "type/aggregate-argument" in str(excinfo.value)


def test_rejection_happens_at_prepare_time(tiny_workload_db):
    with connect(tiny_workload_db, verify=True) as session:
        prepared = session.prepare(session.query("R3").sum("customer"))
        with pytest.raises(PlanVerificationError):
            prepared.run()


def test_unverified_session_skips_the_checks(tiny_workload_db):
    # Without the knob, planning the same bad query succeeds (the
    # failure would only surface deep inside execution).
    with connect(tiny_workload_db) as session:
        session.prepare(session.query("R3").sum("customer"))


def test_with_engine_inherits_verify(tiny_workload_db):
    session = Session(tiny_workload_db, verify=True)
    assert session.with_engine("rdb").verify is True
