"""The planner/verifier contract: every emitted plan must verify clean.

A seeded sweep over the full benchmark workload (both optimisers, plus
randomly shuffled group-by/order permutations) asserting the verifier
never reports an error on a plan the planner actually produced — the
acceptance bar for wiring ``verify=True`` into the prepare path.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.analysis import verify_artifact, verify_compiled
from repro.core.engine import FDBEngine
from repro.data.workloads import FULL_WORKLOAD

OPTIMIZERS = ("greedy", "exhaustive")


def errors_of(findings):
    return [f for f in findings if f.severity == "error"]


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
@pytest.mark.parametrize("key", sorted(FULL_WORKLOAD))
def test_workload_plans_verify_clean(key, optimizer, tiny_workload_db):
    engine = FDBEngine(optimizer=optimizer)
    query = FULL_WORKLOAD[key].query
    compiled = engine.compile(query, tiny_workload_db)
    findings = verify_compiled(compiled, tiny_workload_db)
    assert errors_of(findings) == [], "\n".join(
        f.describe() for f in findings
    )


@pytest.mark.parametrize("key", sorted(FULL_WORKLOAD))
def test_workload_artifacts_verify_clean(key, tiny_workload_db):
    from repro.api.engines import FDBBackend

    backend = FDBBackend()
    query = FULL_WORKLOAD[key].query
    artifact = backend.plan(query, tiny_workload_db)
    findings = verify_artifact(query, artifact, tiny_workload_db)
    assert errors_of(findings) == [], "\n".join(
        f.describe() for f in findings
    )


def test_shuffled_variants_verify_clean(tiny_workload_db):
    """Permuted group-by/order variants still plan to verifiable trees."""
    rng = random.Random(2013)
    engine = FDBEngine(optimizer="greedy")
    checked = 0
    for key in sorted(FULL_WORKLOAD):
        query = FULL_WORKLOAD[key].query
        for _ in range(3):
            variant = query
            if len(query.group_by) > 1:
                group = list(query.group_by)
                rng.shuffle(group)
                variant = replace(variant, group_by=tuple(group))
            if len(query.order_by) > 1:
                order = list(query.order_by)
                rng.shuffle(order)
                variant = replace(variant, order_by=tuple(order))
            if variant is query:
                continue
            compiled = engine.compile(variant, tiny_workload_db)
            findings = verify_compiled(compiled, tiny_workload_db)
            assert errors_of(findings) == [], "\n".join(
                f.describe() for f in findings
            )
            checked += 1
    assert checked > 0


def test_registered_views_verify_clean(tiny_workload_db):
    from repro.analysis import verify_ftree

    for name in tiny_workload_db.names():
        fact = tiny_workload_db.get_factorised(name)
        if fact is None:
            continue
        findings = verify_ftree(
            fact.ftree, subject=f"view:{name}",
            schema=tiny_workload_db.schema(name),
        )
        assert findings == [], "\n".join(f.describe() for f in findings)
