"""Prepare-time type checking of the expression AST against catalogues."""

from __future__ import annotations

from repro import col, param
from repro.analysis import check_query_types, infer_column_types
from repro.analysis.typecheck import NUMBER, TEXT, param_slots
from repro.database import Database
from repro.query import AggregateSpec, Comparison, ComputedColumn, Query
from repro.relational.relation import Relation


def make_db():
    orders = Relation(
        ("customer", "day", "price", "qty"),
        [("Mario", "Monday", 10, 2), ("Lucia", "Friday", 7, 1)],
        name="Orders",
    )
    return Database([orders])


def rules_of(findings):
    return [f.rule for f in findings]


def test_clean_query_has_no_findings(tmp_path):
    db = make_db()
    query = Query(
        relations=("Orders",),
        group_by=("customer",),
        aggregates=(AggregateSpec("sum", "price", "revenue"),),
    )
    assert check_query_types(query, db) == []


def test_infer_column_types_samples_rows():
    types = infer_column_types(make_db(), ("Orders",))
    assert types["customer"] == TEXT
    assert types["price"] == NUMBER


def test_unknown_relation():
    query = Query(relations=("Nope",))
    findings = check_query_types(query, make_db())
    assert rules_of(findings) == ["type/unknown-relation"]


def test_unknown_attribute():
    query = Query(relations=("Orders",), group_by=("flavour",))
    findings = check_query_types(query, make_db())
    assert rules_of(findings) == ["type/unknown-attribute"]


def test_sum_over_text_column():
    query = Query(
        relations=("Orders",),
        aggregates=(AggregateSpec("sum", "customer", "total"),),
    )
    findings = check_query_types(query, make_db())
    assert "type/aggregate-argument" in rules_of(findings)
    assert all(f.severity == "error" for f in findings)


def test_min_over_text_is_fine():
    query = Query(
        relations=("Orders",),
        aggregates=(AggregateSpec("min", "customer", "first"),),
    )
    assert check_query_types(query, make_db()) == []


def test_arithmetic_over_text():
    query = Query(
        relations=("Orders",),
        computed=(ComputedColumn((col("customer") * 2), "doubled"),),
    )
    findings = check_query_types(query, make_db())
    assert "type/arithmetic" in rules_of(findings)


def test_comparison_type_mismatch_is_warning():
    query = Query(
        relations=("Orders",),
        comparisons=(Comparison("price", "=", "ten"),),
    )
    findings = check_query_types(query, make_db())
    assert rules_of(findings) == ["type/comparison"]
    assert findings[0].severity == "warning"


def test_param_slot_inference_and_conflict():
    query = Query(
        relations=("Orders",),
        comparisons=(
            Comparison("price", ">", param("floor")),
            Comparison("customer", "=", param("floor")),
        ),
    )
    findings = check_query_types(query, make_db())
    assert "type/param-conflict" in rules_of(findings)


def test_param_slots_helper():
    query = Query(
        relations=("Orders",),
        comparisons=(Comparison("price", ">", param("floor")),),
    )
    slots = param_slots(query, make_db())
    assert slots == {"floor": NUMBER}
