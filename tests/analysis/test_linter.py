"""Golden snippets: each concurrency-discipline rule fires exactly once."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_paths, lint_source, suppressed_rules


def lint(snippet: str, filename: str = "src/repro/sample.py"):
    return lint_source(textwrap.dedent(snippet), filename)


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Lock discipline
# ---------------------------------------------------------------------------
class TestLockDiscipline:
    def test_unguarded_write_to_guarded_container(self):
        findings = lint(
            """
            import threading

            class Database:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.relations: dict = {}

                def add(self, name, relation):
                    self.relations[name] = relation
            """
        )
        assert rules_of(findings) == ["lock-discipline"]
        assert "relations" in findings[0].message

    def test_guarded_write_is_clean(self):
        findings = lint(
            """
            import threading

            class Database:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.relations: dict = {}

                def add(self, name, relation):
                    with self._lock:
                        self.relations[name] = relation
            """
        )
        assert findings == []

    def test_private_helper_called_under_lock_is_clean(self):
        # _apply writes without taking the lock itself, but its only
        # caller holds it — the greatest-fixpoint analysis clears it.
        findings = lint(
            """
            import threading

            class Database:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.relations: dict = {}

                def add(self, name, relation):
                    with self._lock:
                        self._apply(name, relation)

                def _apply(self, name, relation):
                    self.relations[name] = relation
            """
        )
        assert findings == []

    def test_helper_with_one_unguarded_caller_is_flagged(self):
        findings = lint(
            """
            import threading

            class Database:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.relations: dict = {}

                def add(self, name, relation):
                    with self._lock:
                        self._apply(name, relation)

                def add_fast(self, name, relation):
                    self._apply(name, relation)

                def _apply(self, name, relation):
                    self.relations[name] = relation
            """
        )
        assert rules_of(findings) == ["lock-discipline"]

    def test_init_writes_are_exempt(self):
        findings = lint(
            """
            import threading

            class Database:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.relations = {}
                    self.relations["seed"] = 1
            """
        )
        assert findings == []

    def test_class_without_lock_is_ignored(self):
        findings = lint(
            """
            class Bag:
                def __init__(self):
                    self.items = {}

                def add(self, key, value):
                    self.items[key] = value
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Copy-on-write discipline
# ---------------------------------------------------------------------------
class TestCowDiscipline:
    def test_mutating_catalogue_relation(self):
        findings = lint(
            """
            def grow(database, rows):
                relation = database.relations["R"]
                relation.rows.extend(rows)
            """
        )
        assert rules_of(findings) == ["cow-mutation"]

    def test_mutating_flat_result(self):
        findings = lint(
            """
            def truncate(database):
                relation = database.flat("R")
                relation.rows = []
            """
        )
        assert rules_of(findings) == ["cow-mutation"]

    def test_fresh_copy_is_clean(self):
        findings = lint(
            """
            from repro.relational.relation import Relation

            def grow(database, rows):
                base = database.flat("R")
                fresh = Relation(base.schema, list(base.rows))
                fresh.rows.extend(rows)
                return fresh
            """
        )
        assert findings == []

    def test_frozen_dataclass_mutation(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class State:
                version: int

                def bump(self):
                    object.__setattr__(self, "version", self.version + 1)
            """
        )
        assert rules_of(findings) == ["frozen-mutation"]


# ---------------------------------------------------------------------------
# Async discipline (server/ files only)
# ---------------------------------------------------------------------------
class TestAsyncBlocking:
    SNIPPET = """
    import time

    async def handler(request):
        time.sleep(1)
        return b"ok"
    """

    def test_blocking_call_in_server_coroutine(self):
        findings = lint(self.SNIPPET, filename="src/repro/server/http.py")
        assert rules_of(findings) == ["async-blocking"]

    def test_rule_is_scoped_to_server_files(self):
        assert lint(self.SNIPPET, filename="src/repro/core/engine.py") == []


# ---------------------------------------------------------------------------
# Observability allocation under locks
# ---------------------------------------------------------------------------
class TestObsAllocation:
    def test_labels_inside_lock_flags(self):
        findings = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def lookup(self, key, events):
                    with self._lock:
                        events.labels("plan", "hit").inc()
            """
        )
        assert rules_of(findings) == ["obs-allocation"]
        assert ".labels(...)" in findings[0].message

    def test_family_construction_inside_lock_flags(self):
        findings = lint(
            """
            import threading
            from repro.obs.metrics import metrics

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def apply(self):
                    with self._lock:
                        metrics().counter("repro_x_total").inc()
            """
        )
        assert rules_of(findings) == ["obs-allocation", "obs-allocation"]

    def test_span_inside_lock_flags(self):
        findings = lint(
            """
            import threading
            from repro.obs import spans

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def run(self):
                    with self._lock:
                        with spans.span("engine.run"):
                            pass
            """
        )
        assert rules_of(findings) == ["obs-allocation"]

    def test_prebound_child_inside_lock_is_clean(self):
        findings = lint(
            """
            import threading

            _HITS = None  # pre-bound at import in real code

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def lookup(self, key):
                    with self._lock:
                        _HITS.inc()
            """
        )
        assert findings == []

    def test_allocation_outside_lock_is_clean(self):
        findings = lint(
            """
            import threading
            from repro.obs import spans

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def run(self, events):
                    child = events.labels("fdb")
                    with spans.span("engine.run"):
                        with self._lock:
                            child.inc()
            """
        )
        assert findings == []

    def test_nested_def_under_lock_is_clean(self):
        # The closure body runs later, when the lock is released.
        findings = lint(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def deferred(self, events):
                    with self._lock:
                        def emit():
                            events.labels("a").inc()
                        return emit
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Kernel scalar loops (columnar batch discipline)
# ---------------------------------------------------------------------------
class TestKernelScalarLoop:
    KERNEL = "src/repro/core/kernels.py"

    def test_for_over_union_values_attribute(self):
        findings = lint(
            """
            def swap_c(union):
                for value in union.values:
                    process(value)
            """,
            self.KERNEL,
        )
        assert rules_of(findings) == ["kernel-scalar-loop"]

    def test_enumerate_over_values_local(self):
        findings = lint(
            """
            def gamma_c(union):
                values = union.values
                for i, value in enumerate(values):
                    process(i, value)
            """,
            self.KERNEL,
        )
        assert rules_of(findings) == ["kernel-scalar-loop"]

    def test_index_loop_over_contexts_is_batch_idiom(self):
        findings = lint(
            """
            def merge_c(union):
                values = union.values
                for i in range(len(values)):
                    merge(union.children[0][i], union.children[1][i])
            """,
            self.KERNEL,
        )
        assert findings == []

    def test_dict_values_call_is_not_a_union(self):
        findings = lint(
            """
            def flush(table):
                for bucket in table.values():
                    bucket.clear()
            """,
            self.KERNEL,
        )
        assert findings == []

    def test_comprehension_over_column_is_sanctioned(self):
        findings = lint(
            """
            def fold_c(union):
                return [score(v) for v in union.values]
            """,
            self.KERNEL,
        )
        assert findings == []

    def test_rule_scoped_to_kernel_modules(self):
        snippet = """
            def iter_entries(union):
                for value in union.values:
                    yield value
            """
        assert lint(snippet, "src/repro/core/frep.py") == []
        assert lint(snippet, "src/repro/ivm/kernels.py") == []

    def test_allow_comment_escapes(self):
        findings = lint(
            """
            def scan_c(union):
                for value in union.values:  # repro: allow[kernel-scalar-loop]
                    if live(value):
                        return False
            """,
            self.KERNEL,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Suppressions and report plumbing
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_inline_suppression(self):
        findings = lint(
            """
            def grow(database, rows):
                relation = database.relations["R"]
                relation.rows.extend(rows)  # repro: allow[cow-mutation]
            """
        )
        assert findings == []

    def test_standalone_comment_covers_next_code_line(self):
        findings = lint(
            """
            def grow(database, rows):
                relation = database.relations["R"]
                # repro: allow[cow-mutation] -- the store owns this
                # relation outright; nothing else can observe the rows.
                relation.rows.extend(rows)
            """
        )
        assert findings == []

    def test_wildcard_suppression(self):
        findings = lint(
            """
            def grow(database, rows):
                relation = database.relations["R"]
                relation.rows.extend(rows)  # repro: allow[*]
            """
        )
        assert findings == []

    def test_unrelated_rule_does_not_suppress(self):
        findings = lint(
            """
            def grow(database, rows):
                relation = database.relations["R"]
                relation.rows.extend(rows)  # repro: allow[lock-discipline]
            """
        )
        assert rules_of(findings) == ["cow-mutation"]

    def test_suppressed_rules_parser(self):
        table = suppressed_rules(
            "x = 1  # repro: allow[a, b]\n# repro: allow[c]\ny = 2\n"
        )
        assert table[1] == {"a", "b"}
        assert table[3] == {"c"}

    def test_parse_error_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/bad.py")
        assert rules_of(findings) == ["parse-error"]


def test_repository_source_is_clean():
    """The linter's own verdict on src/repro: no findings at all."""
    import repro

    package = __import__("pathlib").Path(repro.__file__).parent
    assert lint_paths([package]) == []
