"""Golden-findings fixtures: each invalid f-tree/plan trips one rule."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PlanVerificationError,
    verify_compiled,
    verify_ftree,
    verify_merge_plan,
    verify_plan,
)
from repro.core.cost import Hypergraph
from repro.core.engine import FDBEngine
from repro.core.fplan import (
    AbsorbStep,
    AggregateStep,
    FPlan,
    MergeStep,
    RemoveLeafStep,
    RenameStep,
    SwapStep,
)
from repro.core.ftree import AggregateAttribute, build_ftree
from repro.core.optimizer import PlanContext
from repro.data.pizzeria import pizzeria_database


def rules_of(findings):
    return [f.rule for f in findings]


def errors_of(findings):
    return [f.rule for f in findings if f.severity == "error"]


# ---------------------------------------------------------------------------
# F-tree invariants
# ---------------------------------------------------------------------------
class TestFTreeInvariants:
    def test_valid_tree_is_clean(self):
        # Sibling branches carry disjoint relation keys (B and C are
        # independent given A), so the path constraint holds.
        tree = build_ftree(
            [("A", [("B", []), ("C", [])])],
            keys={"A": {"r", "s"}, "B": {"r"}, "C": {"s"}},
        )
        assert verify_ftree(tree) == []

    def test_path_constraint_violation(self):
        # B and C share the dependency key but sit in sibling branches.
        tree = build_ftree(
            [("A", [("B", []), ("C", [])])],
            keys={"A": {"r"}, "B": {"r", "s"}, "C": {"r", "s"}},
        )
        findings = verify_ftree(tree)
        assert rules_of(findings) == ["ftree/path-constraint"]
        assert "B" in findings[0].message and "C" in findings[0].message

    def test_key_closure_violation(self):
        tree = build_ftree([("A", [("B", [])])], keys={"A": {"r"}, "B": set()})
        findings = verify_ftree(tree)
        assert rules_of(findings) == ["ftree/key-closure"]
        assert "B" in findings[0].message

    def test_aggregate_over_clash(self):
        # The aggregate folded `price` away, yet `price` is still atomic.
        agg = AggregateAttribute(
            (("sum", "price"),), frozenset({"price"}), "total"
        )
        tree = build_ftree(
            [("customer", [(agg, []), ("price", [])])],
            keys={"customer": {"r", "s"}, "total": {"r"}, "price": {"s"}},
        )
        findings = verify_ftree(tree)
        assert rules_of(findings) == ["ftree/aggregate-over"]
        assert "price" in findings[0].message

    def test_schema_partition_violation(self):
        tree = build_ftree([("A", [("B", [])])])
        findings = verify_ftree(tree, schema=("A", "C"))
        assert rules_of(findings) == ["ftree/schema-partition"]
        assert "missing {C}" in findings[0].message
        assert "extra {B}" in findings[0].message

    def test_subject_is_attached(self):
        tree = build_ftree([("A", [])], keys={"A": set()})
        findings = verify_ftree(tree, subject="view:T")
        assert findings[0].subject == "view:T"


# ---------------------------------------------------------------------------
# F-plan operator pre-conditions (structural, context-free)
# ---------------------------------------------------------------------------
class TestPlanSteps:
    def tree(self):
        return build_ftree(
            [("A", [("B", [("C", [])]), ("D", [])])],
            keys={"A": {"r", "s"}, "B": {"r"}, "C": {"r"}, "D": {"s"}},
        )

    def test_empty_plan_is_clean(self):
        assert verify_plan(FPlan([]), self.tree()) == []

    def test_unknown_node(self):
        findings = verify_plan(FPlan([SwapStep("Z")]), self.tree())
        assert rules_of(findings) == ["plan/unknown-node"]

    def test_swap_root(self):
        findings = verify_plan(FPlan([SwapStep("A")]), self.tree())
        assert rules_of(findings) == ["plan/swap-root"]

    def test_merge_not_siblings(self):
        findings = verify_plan(FPlan([MergeStep("A", "C")]), self.tree())
        assert rules_of(findings) == ["plan/merge-not-siblings"]

    def test_absorb_not_ancestor(self):
        findings = verify_plan(FPlan([AbsorbStep("D", "C")]), self.tree())
        assert rules_of(findings) == ["plan/absorb-not-ancestor"]

    def test_rename_clash(self):
        findings = verify_plan(FPlan([RenameStep("B", "D")]), self.tree())
        assert rules_of(findings) == ["plan/rename-clash"]

    def test_remove_not_leaf(self):
        findings = verify_plan(FPlan([RemoveLeafStep("B")]), self.tree())
        assert rules_of(findings) == ["plan/remove-not-leaf"]

    def test_replay_stops_at_first_error(self):
        # The second step would also be invalid; replay must not reach it.
        plan = FPlan([SwapStep("A"), SwapStep("Z")])
        findings = verify_plan(plan, self.tree())
        assert rules_of(findings) == ["plan/swap-root"]

    def test_valid_swap_sequence_is_clean(self):
        assert verify_plan(FPlan([SwapStep("C")]), self.tree()) == []


# ---------------------------------------------------------------------------
# γ placement constraints (need a PlanContext)
# ---------------------------------------------------------------------------
class TestGammaConstraints:
    def tree(self):
        return build_ftree(
            [("A", [("B", []), ("C", [])])],
            keys={"A": {"r", "s"}, "B": {"r"}, "C": {"s"}},
        )

    def context(self, **overrides):
        options = {
            "kept": frozenset({"A"}),
            "functions": (("sum", "B"),),
        }
        options.update(overrides)
        return PlanContext(Hypergraph({"R": ("A", "B", "C")}), **options)

    def gamma(self, children=("B",), functions=(("sum", "B"),), name="g0"):
        return AggregateStep("A", tuple(children), tuple(functions), name)

    def test_valid_gamma_is_clean(self):
        findings = verify_plan(
            FPlan([self.gamma()]), self.tree(), self.context()
        )
        assert errors_of(findings) == []

    def test_non_partial_function(self):
        findings = verify_plan(
            FPlan([self.gamma(functions=(("avg", "B"),))]),
            self.tree(),
            self.context(),
        )
        assert "plan/aggregate-shape" in errors_of(findings)

    def test_result_name_clash(self):
        findings = verify_plan(
            FPlan([self.gamma(name="C")]), self.tree(), self.context()
        )
        assert "plan/aggregate-shape" in errors_of(findings)

    def test_child_not_under_parent(self):
        findings = verify_plan(
            FPlan([AggregateStep("B", ("C",), (("count", None),), "g0")]),
            self.tree(),
            self.context(),
        )
        assert "plan/aggregate-shape" in errors_of(findings)

    def test_aggregating_away_kept_attribute(self):
        findings = verify_plan(
            FPlan([self.gamma(children=("B",))]),
            self.tree(),
            self.context(kept=frozenset({"B"})),
        )
        assert "plan/aggregate-kept" in errors_of(findings)

    def test_covering_protected_attribute(self):
        findings = verify_plan(
            FPlan([self.gamma(children=("B",))]),
            self.tree(),
            self.context(protected=frozenset({"B"})),
        )
        assert "plan/aggregate-protected" in errors_of(findings)

    def test_coupled_attributes_in_one_gamma(self):
        findings = verify_plan(
            FPlan([self.gamma(children=("B", "C"))]),
            self.tree(),
            self.context(coupled=(frozenset({"B", "C"}),)),
        )
        assert "plan/aggregate-coupled" in errors_of(findings)


# ---------------------------------------------------------------------------
# Final-state shape conditions are warnings, not errors
# ---------------------------------------------------------------------------
class TestFinalTreeWarnings:
    def test_order_prefix_warning(self):
        # Ordering on a non-root attribute: Theorem 2 prefix-closure
        # fails, but the engine restructures at run time — warning only.
        tree = build_ftree([("A", [("B", [])])])
        context = PlanContext(
            Hypergraph({"R": ("A", "B")}), kept=frozenset({"A", "B"}),
            order=("B",),
        )
        findings = verify_plan(FPlan([]), tree, context)
        assert rules_of(findings) == ["plan/order-prefix"]
        assert findings[0].severity == "warning"

    def test_grouping_warning(self):
        tree = build_ftree([("A", [("B", []), ("C", [])])])
        context = PlanContext(
            Hypergraph({"R": ("A", "B", "C")}),
            kept=frozenset({"B"}),
            functions=(("sum", "C"),),
        )
        findings = verify_plan(FPlan([]), tree, context)
        assert rules_of(findings) == ["plan/grouping"]
        assert findings[0].severity == "warning"


# ---------------------------------------------------------------------------
# Compiled plans from the real optimiser verify clean
# ---------------------------------------------------------------------------
class TestVerifyCompiled:
    def test_pizzeria_group_by_plan_is_clean(self):
        from repro.query import AggregateSpec, Query

        database = pizzeria_database()
        engine = FDBEngine()
        query = Query(
            relations=("R",),
            group_by=("customer",),
            aggregates=(AggregateSpec("sum", "price", "revenue"),),
        )
        compiled = engine.compile(query, database)
        findings = verify_compiled(compiled, database)
        assert errors_of(findings) == []

    def test_error_findings_raise_with_rule_name(self):
        tree = build_ftree([("A", [])], keys={"A": set()})
        findings = verify_ftree(tree, subject="view:bad")
        error = PlanVerificationError(findings)
        assert "ftree/key-closure" in str(error)
        assert error.findings == tuple(findings)
        with pytest.raises(ValueError):
            raise error


# ---------------------------------------------------------------------------
# Sharded merge-strategy soundness
# ---------------------------------------------------------------------------
class TestMergePlan:
    def query(self):
        from repro.query import AggregateSpec, Query

        return Query(
            relations=("R",),
            group_by=("customer",),
            aggregates=(AggregateSpec("sum", "price", "revenue"),),
        )

    def test_planner_output_is_clean(self):
        from repro.shard.merge import plan_shards

        assert verify_merge_plan(self.query(), plan_shards(self.query())) == []

    def test_wrong_strategy(self):
        from repro.shard.merge import UNION, MergePlan

        merge = MergePlan(UNION, self.query())
        findings = verify_merge_plan(self.query(), merge)
        assert rules_of(findings) == ["shard/merge-strategy"]

    def test_shard_query_must_defer_limit(self):
        from dataclasses import replace

        from repro.shard.merge import plan_shards

        sound = plan_shards(self.query())
        leaky = replace(
            sound, shard_query=replace(sound.shard_query, limit=5)
        )
        findings = verify_merge_plan(self.query(), leaky)
        assert "shard/merge-strategy" in rules_of(findings)
        assert any("defer" in f.message for f in findings)

    def test_heap_merge_limit_mismatch(self):
        from dataclasses import replace

        from repro.query import Query
        from repro.shard.merge import plan_shards

        query = Query(relations=("R",), order_by=("price",), limit=3)
        sound = plan_shards(query)
        broken = replace(
            sound, shard_query=replace(sound.shard_query, limit=None)
        )
        findings = verify_merge_plan(query, broken)
        assert "shard/merge-strategy" in rules_of(findings)
