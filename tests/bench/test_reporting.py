"""Tests for experiment result export (CSV/JSON)."""

import csv
import io
import json

import pytest

from repro.bench.experiments import ExperimentReport
from repro.bench.harness import BenchResult
from repro.bench.reporting import (
    report_rows,
    reports_to_json,
    save_reports,
    write_csv,
)


@pytest.fixture()
def reports():
    report = ExperimentReport("fig5")
    report.results = [
        BenchResult("FDB", "Q1", 0.01, 100, 0.5),
        BenchResult("SQLite", "Q1", 0.02, 100, 0.5),
    ]
    report.table = "Figure 5 ..."
    report.extras = {"note": "x", "nested": {"a": 1, "obj": object()}}
    return {"fig5": report}


def test_report_rows(reports):
    rows = report_rows(reports["fig5"])
    assert rows[0] == {
        "experiment": "fig5",
        "engine": "FDB",
        "query": "Q1",
        "scale": 0.5,
        "seconds": 0.01,
        "rows": 100,
    }


def test_write_csv(reports):
    buffer = io.StringIO()
    count = write_csv(reports, buffer)
    assert count == 2
    parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
    assert parsed[1]["engine"] == "SQLite"
    assert float(parsed[0]["seconds"]) == 0.01


def test_reports_to_json_filters_unserialisable(reports):
    document = json.loads(reports_to_json(reports))
    assert document["fig5"]["extras"]["note"] == "x"
    assert document["fig5"]["extras"]["nested"] == {"a": 1}
    assert len(document["fig5"]["measurements"]) == 2


def test_save_reports(tmp_path, reports):
    csv_path, json_path = save_reports(reports, str(tmp_path / "out"))
    assert json.load(open(json_path))["fig5"]["table"].startswith("Figure 5")
    with open(csv_path) as handle:
        assert len(handle.readlines()) == 3  # header + 2 rows


def test_cli_experiments_output(tmp_path, capsys, monkeypatch):
    # Tiny scales so the full experiment run stays fast in tests.
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
    monkeypatch.setenv("REPRO_BENCH_SCALES", "0.1")
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "1")
    from repro.__main__ import main

    out_dir = str(tmp_path / "results")
    assert main(["experiments", "--output", out_dir]) == 0
    text = capsys.readouterr().out
    assert "results written to" in text
    document = json.load(open(out_dir + "/results.json"))
    assert "fig4" in document and "optimizer" in document
