"""Tests for the benchmark engine adapters."""

import pytest

from repro.bench.engines import (
    FDBAdapter,
    RDBAdapter,
    RDBEagerAdapter,
    SQLiteAdapter,
    SQLiteEagerAdapter,
    default_engines,
    prepare_all,
)
from repro.data.workloads import WORKLOAD


@pytest.fixture(scope="module")
def db():
    from repro.data.workloads import build_workload_database

    return build_workload_database(scale=0.1, seed=7)


def test_adapters_agree_on_row_counts(db):
    engines = default_engines()
    prepare_all(engines, db)
    query = WORKLOAD["Q2"].query
    counts = {engine.name: engine.run(query) for engine in engines}
    # FDB f/o reports singletons, everyone else row counts.
    flat_counts = {
        name: count
        for name, count in counts.items()
        if name != "FDB f/o"
    }
    assert len(set(flat_counts.values())) == 1


def test_fo_adapter_reports_singletons(db):
    adapter = FDBAdapter(output="factorised")
    adapter.prepare(db)
    assert adapter.run(WORKLOAD["Q2"].query) > 0
    assert adapter.name == "FDB f/o"


def test_eager_adapters(db):
    from dataclasses import replace

    query = replace(
        WORKLOAD["Q2"].query, relations=("Orders", "Packages", "Items")
    )
    reference = RDBAdapter("hash")
    reference.prepare(db)
    expected = reference.run(query)
    for adapter in (RDBEagerAdapter("hash"), SQLiteEagerAdapter()):
        adapter.prepare(db)
        assert adapter.run(query) == expected


def test_sqlite_requires_prepare():
    adapter = SQLiteAdapter()
    with pytest.raises(RuntimeError):
        adapter.run(WORKLOAD["Q2"].query)


def test_default_engines_flags():
    names = [e.name for e in default_engines(include_eager=True)]
    assert "SQLite man" in names and "RDB-hash man (PSQL-sim)" in names
    no_fo = [e.name for e in default_engines(include_fo=False)]
    assert "FDB f/o" not in no_fo
