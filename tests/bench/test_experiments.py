"""Smoke tests for the experiment harness at a tiny scale."""

import pytest

from repro.bench.ablations import (
    run_ablation_partial_agg,
    run_ablation_restructuring,
)
from repro.bench.experiments import (
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_optimizer_study,
    run_sizes,
)
from repro.bench.harness import fit_loglog_slope, render_table


def test_run_sizes_shape():
    report = run_sizes(scales=[0.1, 0.2])
    assert report.extras["flat_exponent"] > report.extras["fact_exponent"]
    assert "factorised" in report.table


def test_run_fig5(tiny_db_scale=0.1):
    report = run_fig5(scale=tiny_db_scale, repeats=1)
    engines = {r.engine for r in report.results}
    assert {"FDB", "FDB f/o", "SQLite"} <= engines
    assert report.seconds("FDB", "Q2") > 0
    assert "Q5" in report.table


def test_run_fig6():
    report = run_fig6(scale=0.1, repeats=1)
    engines = {r.engine for r in report.results}
    assert "SQLite man" in engines and "RDB-hash man (PSQL-sim)" in engines


def test_run_fig7():
    report = run_fig7(scale=0.1, repeats=1)
    queries = {r.query for r in report.results}
    assert {"Q6", "Q7", "Q8", "Q9"} <= queries


def test_run_fig8():
    report = run_fig8(scale=0.1, repeats=1)
    engines = {r.engine for r in report.results}
    assert "FDB lim" in engines
    # LIMIT 10 must not be slower than full enumeration for FDB (the
    # constant-delay claim) — allow generous noise at tiny scale.
    assert report.seconds("FDB lim", "Q10") <= report.seconds("FDB", "Q10") * 2


def test_optimizer_study_all_greedy_optimal():
    report = run_optimizer_study(scale=0.1)
    for name, stats in report.extras.items():
        assert (
            stats["greedy_exponent"] <= stats["exhaustive_exponent"] + 1e-9
        ), name


def test_ablation_partial_agg():
    report = run_ablation_partial_agg(scale=0.1, repeats=1)
    variants = {r.engine for r in report.results}
    assert len(variants) == 2


def test_ablation_restructuring():
    report = run_ablation_restructuring(scale=0.1, repeats=1)
    assert len(report.results) == 3


def test_fit_loglog_slope_exact():
    points = [(1, 10), (2, 40), (4, 160)]  # y = 10·x²
    assert fit_loglog_slope(points) == pytest.approx(2.0)


def test_render_table_missing_cells():
    table = render_table("t", ["r1"], ["c1", "c2"], {("r1", "c1"): "x"})
    assert "-" in table and "x" in table
