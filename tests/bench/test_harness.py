"""Unit tests for the timing/reporting harness utilities."""

import os

import pytest

from repro.bench.harness import (
    BenchResult,
    Series,
    env_repeats,
    env_scale,
    env_scales,
    fit_loglog_slope,
    render_series,
    render_table,
    time_call,
)


def test_time_call_returns_best_and_result():
    calls = []

    def work():
        calls.append(1)
        return "out"

    seconds, result = time_call(work, repeats=3)
    assert result == "out"
    assert len(calls) == 3
    assert seconds >= 0


def test_time_call_at_least_once():
    seconds, result = time_call(lambda: 7, repeats=0)
    assert result == 7


def test_bench_result_cell():
    assert BenchResult("e", "q", 0.12345).cell() == "0.1235s"  # rounded


def test_series_accumulates():
    series = Series("s")
    series.add(1, 2.0)
    series.add(2, 4.0)
    assert series.points == [(1, 2.0), (2, 4.0)]


def test_render_table_alignment():
    table = render_table(
        "Title",
        ["engine-a", "b"],
        ["q1", "q2"],
        {("engine-a", "q1"): "1.0", ("b", "q2"): "2.0"},
        row_header="engine",
    )
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert "engine" in lines[1]
    assert all("|" in line for line in lines[1:] if "-+-" not in line)


def test_render_series_table():
    s1 = Series("flat")
    s1.add(1, 10)
    s1.add(2, 40)
    text = render_series("sizes", [s1], "scale")
    assert "flat" in text and "10.0000" in text and "40.0000" in text


def test_env_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
    monkeypatch.setenv("REPRO_BENCH_SCALES", "0.5, 1 ,2")
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
    assert env_scale() == 2.5
    assert env_scales() == [0.5, 1.0, 2.0]
    assert env_repeats() == 7


def test_env_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_SCALES", raising=False)
    monkeypatch.delenv("REPRO_BENCH_REPEATS", raising=False)
    assert env_scale(3.0) == 3.0
    assert env_scales("1,2") == [1.0, 2.0]
    assert env_repeats(5) == 5


def test_fit_loglog_slope_linear():
    assert fit_loglog_slope([(1, 3), (2, 6), (4, 12)]) == pytest.approx(1.0)


def test_fit_loglog_slope_degenerate():
    assert fit_loglog_slope([(1, 5), (1, 5)]) == 0.0


def test_time_call_stats_returns_best_and_median():
    from repro.bench.harness import time_call_stats

    calls = []

    def work():
        calls.append(1)
        return "result"

    best, median, result = time_call_stats(work, repeats=5)
    assert len(calls) == 5
    assert result == "result"
    assert 0 <= best <= median


def test_write_bench_json(tmp_path):
    import json

    from repro.bench.harness import BenchResult, write_bench_json

    results = [
        ("fig5", BenchResult("FDB", "Q2", 0.5, rows=10, scale=1.0, median=0.6)),
        ("fig5", BenchResult("SQLite", "Q2", 1.5, rows=10, scale=1.0)),
    ]
    path = write_bench_json(results, tmp_path / "BENCH_PR2.json")
    records = json.loads(path.read_text())
    assert records == [
        {
            "benchmark": "fig5",
            "name": "Q2",
            "engine": "FDB",
            "scale": 1.0,
            "median_seconds": 0.6,
            "best_seconds": 0.5,
            "rows": 10,
        },
        {
            "benchmark": "fig5",
            "name": "Q2",
            "engine": "SQLite",
            "scale": 1.0,
            "median_seconds": 1.5,  # falls back to best-of-N
            "best_seconds": 1.5,
            "rows": 10,
        },
    ]


def test_bench_json_default_name():
    from repro.bench.harness import BENCH_JSON_NAME

    assert BENCH_JSON_NAME == "BENCH_PR2.json"
