"""Tests for the Database catalogue."""

import pytest

from repro.core.build import factorise_path
from repro.database import Database, UnknownRelationError
from repro.relational.relation import Relation


@pytest.fixture()
def db():
    database = Database([Relation(("a", "b"), [(1, 2)], "R")])
    database.add_factorised(
        "V", factorise_path(Relation(("x", "y"), [(3, 4), (3, 5)], "V"), "V")
    )
    return database


def test_contains(db):
    assert "R" in db and "V" in db and "missing" not in db


def test_flat_returns_registered(db):
    assert db.flat("R").rows == [(1, 2)]


def test_flat_flattens_factorised_views(db):
    flat = db.flat("V")
    assert sorted(flat.rows) == [(3, 4), (3, 5)]
    assert flat.name == "V"


def test_get_factorised(db):
    assert db.get_factorised("V") is not None
    assert db.get_factorised("R") is None


def test_schema_for_both_forms(db):
    assert db.schema("R") == ("a", "b")
    assert tuple(db.schema("V")) == ("x", "y")
    with pytest.raises(UnknownRelationError):
        db.schema("missing")


def test_unknown_relation_raises(db):
    with pytest.raises(UnknownRelationError):
        db.flat("missing")


def test_names_deduplicated(db):
    db.add_factorised(
        "R", factorise_path(Relation(("a", "b"), [(1, 2)], "R"), "R")
    )
    assert db.names() == ["R", "V"]


def test_add_relation_custom_name():
    database = Database()
    database.add_relation(Relation(("a",), [(1,)], "orig"), name="alias")
    assert "alias" in database and "orig" not in database
