"""Span trees: nesting, thread/process propagation, the slow log."""

from __future__ import annotations

import contextvars
import pickle
from concurrent.futures import ThreadPoolExecutor

from repro.obs import configure
from repro.obs.spans import (
    Span,
    SpanContext,
    current_span,
    remote_root,
    slow_log,
    span,
    span_context,
)


class TestNesting:
    def test_child_attaches_to_the_enclosing_span(self):
        with span("session.query") as root:
            with span("plan") as plan:
                assert current_span() is plan
            with span("engine.run"):
                with span("merge"):
                    pass
        assert [c.name for c in root.children] == ["plan", "engine.run"]
        assert root.children[1].children[0].name == "merge"
        assert all(
            c.trace_id == root.trace_id for c in root.children
        )

    def test_durations_recorded_on_exit(self):
        with span("q") as root:
            with span("step") as step:
                pass
        assert root.duration is not None and root.duration >= 0.0
        assert step.duration is not None

    def test_exception_marks_the_span(self):
        try:
            with span("q") as root:
                raise KeyError("boom")
        except KeyError:
            pass
        assert root.attributes["error"] == "KeyError"

    def test_current_span_resets_after_exit(self):
        assert current_span() is None
        with span("q"):
            assert current_span() is not None
        assert current_span() is None

    def test_disabled_span_binds_none(self):
        configure(enabled=False)
        try:
            with span("q") as root:
                assert root is None
            assert remote_root("r", None) is not None  # the noop object
            with remote_root("r", None) as remote:
                assert remote is None
        finally:
            configure(enabled=True)


class TestThreadPropagation:
    def test_copied_context_attaches_across_threads(self):
        # The documented executor pattern: one fresh copy per task.
        def work(index):
            with span("shard.run", shard=index):
                return index

        with span("engine.run") as parent:
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(contextvars.copy_context().run, work, i)
                    for i in range(4)
                ]
                [f.result() for f in futures]
        assert sorted(
            c.attributes["shard"] for c in parent.children
        ) == [0, 1, 2, 3]
        assert all(c.parent_id == parent.span_id for c in parent.children)

    def test_plain_submit_does_not_inherit(self):
        # Without the copy, the worker thread sees no current span.
        with span("engine.run"):
            with ThreadPoolExecutor(max_workers=1) as pool:
                assert pool.submit(current_span).result() is None


class TestProcessProtocol:
    def test_span_context_pickles(self):
        with span("session.query"):
            context = span_context()
        assert pickle.loads(pickle.dumps(context)) == context

    def test_remote_root_carries_the_parent_identity(self):
        context = SpanContext("trace-1", "span-1")
        with remote_root("shard.run", context, shard=2) as remote:
            pass
        assert remote.trace_id == "trace-1"
        assert remote.parent_id == "span-1"
        assert remote.attributes == {"shard": 2}

    def test_to_dict_from_dict_round_trip(self):
        with span("q") as root:
            with span("step", shard=0):
                pass
        clone = Span.from_dict(root.to_dict())
        assert clone.name == "q"
        assert clone.span_id == root.span_id
        assert clone.children[0].attributes == {"shard": 0}
        assert clone.children[0].duration == root.children[0].duration

    def test_adopt_reparents_a_worker_payload(self):
        context_holder = {}
        with span("engine.run") as parent:
            context_holder["ctx"] = span_context()
        # "Worker side": record against the pickled context.
        with remote_root(
            "shard.run", context_holder["ctx"], shard=1
        ) as worker:
            pass
        payload = pickle.loads(pickle.dumps(worker.to_dict()))
        adopted = parent.adopt(payload)
        assert adopted in parent.children
        assert adopted.parent_id == parent.span_id
        assert adopted.trace_id == parent.trace_id

    def test_adopt_rewrites_an_orphan_subtree(self):
        with remote_root("shard.run", None) as orphan:
            pass
        with span("engine.run") as parent:
            pass
        adopted = parent.adopt(orphan)
        assert adopted.trace_id == parent.trace_id


class TestRendering:
    def test_render_shows_tree_and_attributes(self):
        with span("session.query") as root:
            with span("shard.run", shard=0, mode="fork"):
                pass
        text = root.render()
        lines = text.splitlines()
        assert lines[0].startswith("session.query")
        assert "  shard.run [mode=fork, shard=0]" in lines[1]
        assert "ms" in lines[0]


class TestSlowLog:
    def test_roots_are_recorded_and_ranked(self):
        slow_log().clear()
        with span("fast") as fast:
            pass
        with span("slow") as slow:
            pass
        # Rank deterministically without sleeping.
        fast.duration = 0.001
        slow.duration = 0.5
        entries = slow_log().slowest(limit=2)
        assert [e["name"] for e in entries] == ["slow", "fast"]
        assert entries[0]["tree"]["name"] == "slow"
        slow_log().clear()

    def test_child_spans_are_not_recorded(self):
        slow_log().clear()
        with span("root"):
            with span("child"):
                pass
        names = [e["name"] for e in slow_log().slowest()]
        assert names == ["root"]
        slow_log().clear()

    def test_capacity_bounds_the_buffer(self):
        slow_log().clear()
        for index in range(40):
            with span(f"q{index}"):
                pass
        assert len(slow_log().slowest(limit=100)) == 32
        slow_log().clear()
