"""The metrics registry: instruments, merging, exposition round-trips."""

from __future__ import annotations

import pytest

from repro.obs import configure, enabled
from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import (
    BUCKETS,
    MetricsRegistry,
    metrics,
    snapshot_diff,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_increments(self, registry):
        queries = registry.counter("queries_total", "Queries.", ("engine",))
        queries.labels("fdb").inc()
        queries.labels("fdb").inc(2)
        queries.labels("rdb").inc()
        assert queries.labels("fdb").value == 3.0
        assert queries.labels("rdb").value == 1.0

    def test_gauge_set_inc_dec(self, registry):
        pins = registry.gauge("pins")
        pins.set(4)
        pins.inc()
        pins.dec(2)
        assert pins.labels().value == 3.0

    def test_histogram_bucketing(self, registry):
        lat = registry.histogram("latency_seconds")
        child = lat.labels()
        child.observe(0.001)  # lands in the le=0.0016 bucket
        child.observe(100.0)  # beyond the last bound: overflow bucket
        index = list(BUCKETS).index(0.0016)
        assert child.counts[index] == 1
        assert child.counts[-1] == 1
        assert child.count == 2
        assert child.total == pytest.approx(100.001)

    def test_family_is_idempotent(self, registry):
        first = registry.counter("hits_total", "Hits.", ("cache",))
        again = registry.counter("hits_total", "Hits.", ("cache",))
        assert first is again

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("a",))

    def test_label_arity_checked(self, registry):
        family = registry.counter("y_total", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")

    def test_labels_child_is_cached(self, registry):
        family = registry.counter("z_total", labelnames=("a",))
        assert family.labels("v") is family.labels("v")


class TestDisabled:
    def test_disabled_instruments_are_noops(self, registry):
        counter = registry.counter("c_total").labels()
        histogram = registry.histogram("h_seconds").labels()
        gauge = registry.gauge("g").labels()
        configure(enabled=False)
        try:
            assert not enabled()
            counter.inc()
            histogram.observe(0.5)
            gauge.set(7)
        finally:
            configure(enabled=True)
        assert counter.value == 0.0
        assert histogram.count == 0
        assert gauge.value == 0.0

    def test_merge_ignores_the_disabled_flag(self, registry):
        # A worker's already-recorded delta folds in regardless.
        registry.counter("c_total").labels().inc(5)
        target = MetricsRegistry()
        configure(enabled=False)
        try:
            target.merge(registry.snapshot())
        finally:
            configure(enabled=True)
        assert target.counter("c_total").labels().value == 5.0


class TestSnapshotMerge:
    def test_counter_and_histogram_merge_exactly(self, registry):
        registry.counter("c_total", "C.", ("k",)).labels("a").inc(5)
        registry.histogram("h_seconds").labels().observe(0.01)
        other = MetricsRegistry()
        other.counter("c_total", "C.", ("k",)).labels("a").inc(2)
        other.histogram("h_seconds").labels().observe(0.01)
        other.merge(registry.snapshot())
        assert other.counter("c_total", "C.", ("k",)).labels("a").value == 7.0
        child = other.histogram("h_seconds").labels()
        assert child.count == 2
        assert child.total == pytest.approx(0.02)

    def test_snapshot_diff_drops_gauges_and_zero_deltas(self, registry):
        registry.gauge("g").labels().set(3)
        counter = registry.counter("c_total").labels()
        counter.inc(4)
        before = registry.snapshot()
        counter.inc(2)
        delta = snapshot_diff(registry.snapshot(), before)
        assert "g" not in delta
        assert delta["c_total"]["samples"] == [[[], 2.0]]

    def test_diff_merge_is_double_count_safe(self, registry):
        # The worker protocol: diff per task, merge each diff — the
        # parent total equals the worker's true total.
        parent = MetricsRegistry()
        child = registry.counter("c_total").labels()
        for round_increments in (3, 2):
            before = registry.snapshot()
            child.inc(round_increments)
            parent.merge(snapshot_diff(registry.snapshot(), before))
        assert parent.counter("c_total").labels().value == 5.0

    def test_reset_zeroes_in_place(self, registry):
        family = registry.counter("c_total")
        bound = family.labels()
        bound.inc(9)
        registry.reset()
        assert bound.value == 0.0  # the pre-bound reference stays live
        bound.inc()
        assert family.labels().value == 1.0


class TestExposition:
    def test_render_parse_round_trip(self, registry):
        registry.counter("events_total", "Events.", ("kind",)).labels(
            "write"
        ).inc(3)
        registry.gauge("pins", "Pinned.").labels().set(2)
        registry.histogram("lat_seconds", "Latency.").labels().observe(0.001)
        text = render_prometheus(registry)
        families = parse_prometheus(text)
        assert families["events_total"]["kind"] == "counter"
        assert (
            families["events_total"]["samples"][
                ("events_total", (("kind", "write"),))
            ]
            == 3.0
        )
        assert families["pins"]["samples"][("pins", ())] == 2.0
        histogram = families["lat_seconds"]
        assert histogram["kind"] == "histogram"
        assert histogram["samples"][("lat_seconds_count", ())] == 1.0

    def test_cumulative_buckets_and_inf(self, registry):
        child = registry.histogram("h_seconds").labels()
        child.observe(0.001)
        child.observe(999.0)
        text = render_prometheus(registry)
        inf_lines = [
            line for line in text.splitlines() if 'le="+Inf"' in line
        ]
        assert inf_lines and inf_lines[0].endswith(" 2")

    def test_label_values_are_escaped(self, registry):
        registry.counter("e_total", labelnames=("v",)).labels(
            'a"b\\c\nd'
        ).inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_global_registry_serves_the_process(self):
        assert metrics() is metrics()
