"""End-to-end traces: Result.explain() span trees across every engine path."""

from __future__ import annotations

import json

import pytest

from repro import connect
from repro.data.workloads import build_workload_database
from repro.obs import configure

REVENUE = (
    "SELECT customer, SUM(price) AS revenue "
    "FROM Orders, Packages, Items GROUP BY customer"
)

# Single-relation aggregation over the registered view: shardable.
SHARDABLE = "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer"


@pytest.fixture(scope="module")
def db():
    return build_workload_database(scale=0.1, seed=7)


def _span_names(node: dict) -> set[str]:
    names = {node["name"]}
    for child in node["children"]:
        names |= _span_names(child)
    return names


class TestSingleEngine:
    def test_result_carries_the_root_span(self, db):
        session = connect(db, engine="fdb")
        result = session.sql(REVENUE)
        assert result.span is not None
        assert result.span.name == "session.query"
        assert result.span.duration is not None

    def test_explain_renders_the_span_tree(self, db):
        session = connect(db, engine="fdb")
        result = session.sql(REVENUE)
        text = result.explain()
        assert f"span tree (trace {result.span.trace_id})" in text
        assert "session.query" in text
        assert "engine.run" in text

    def test_trace_json_exports_the_tree(self, db):
        session = connect(db, engine="fdb")
        result = session.sql(REVENUE)
        tree = json.loads(result.trace_json())
        assert tree["name"] == "session.query"
        names = _span_names(tree)
        assert {"cache.lookup", "engine.run"} <= names

    def test_plan_span_appears_on_first_execution_only(self, db):
        session = connect(db, engine="fdb")
        first = session.sql(REVENUE + " ORDER BY revenue")
        assert "plan" in _span_names(json.loads(first.trace_json()))
        again = session.sql(REVENUE + " ORDER BY revenue")
        # Plan cache hit: no recompile, hence no plan span.
        assert "plan" not in _span_names(json.loads(again.trace_json()))

    def test_disabled_results_have_no_span(self, db):
        configure(enabled=False)
        try:
            session = connect(db, engine="fdb")
            result = session.sql(REVENUE)
            assert result.span is None
            assert result.trace_json() is None
            assert "span tree" not in result.explain()
        finally:
            configure(enabled=True)


class TestParallelEngine:
    """The acceptance-criteria trace: per-shard spans re-parented."""

    @pytest.mark.parametrize("workers", [0, 2])
    def test_shard_spans_reparent_under_the_root(self, db, workers):
        session = connect(
            db, engine="fdb-parallel", shards=3, workers=workers
        )
        try:
            result = session.sql(SHARDABLE)
            tree = json.loads(result.trace_json())
            names = _span_names(tree)
            assert {"session.query", "engine.run", "merge"} <= names

            def collect(node, name):
                found = [node] if node["name"] == name else []
                for child in node["children"]:
                    found.extend(collect(child, name))
                return found

            shard_spans = collect(tree, "shard.run")
            assert len(shard_spans) == 3
            assert sorted(
                s["attributes"]["shard"] for s in shard_spans
            ) == [0, 1, 2]
            # Every shard span is inside the root's trace (the fork
            # path re-parents via Span.adopt, the local paths attach
            # directly).
            assert all(
                s["trace_id"] == tree["trace_id"] for s in shard_spans
            )
            assert all(
                s["seconds"] is not None for s in shard_spans
            )
        finally:
            session.close()

    def test_explain_shows_per_shard_lines(self, db):
        session = connect(db, engine="fdb-parallel", shards=2, workers=0)
        try:
            result = session.sql(SHARDABLE)
            text = result.explain()
            assert text.count("shard.run") == 2
            assert "merge" in text
        finally:
            session.close()


class TestExplainAnalyze:
    def test_fplan_steps_carry_wall_times(self, db):
        session = connect(db, engine="fdb")
        result = session.sql(REVENUE)
        trace = result.trace
        assert trace is not None
        assert len(trace.seconds) == len(trace.steps)
        assert all(s >= 0.0 for s in trace.seconds)
        text = result.explain()
        assert "ms" in text
