"""Cross-engine parity: empty-input aggregates, numeric literals, LIMIT 0.

Every engine — fdb, fdb-factorised, rdb, rdb-hash, sqlite, and the
sharded fdb-parallel — must agree on the SQL corner cases this PR
fixes: ungrouped aggregates over zero rows yield one row (COUNT = 0,
everything else NULL), grouped aggregates over zero rows yield zero
rows, scientific-notation literals parse and round-trip, and LIMIT 0
returns the empty result.
"""

import pytest

from repro import col, connect
from repro.query import QueryError
from repro.relational.relation import Relation
from repro.sql import parse_query
from repro.sql.generator import query_to_sql
from repro.sql.lexer import SQLSyntaxError, tokenize

ENGINES = ("fdb", "fdb-factorised", "rdb", "rdb-hash", "sqlite", "fdb-parallel")


@pytest.fixture(scope="module")
def session():
    rows = [("a", 1, 5), ("a", 2, 9), ("b", 1, 30)]
    session = connect(
        Relation(("g", "k", "price"), rows, name="R"), engine="fdb"
    )
    yield session
    session.close()


def _run(session, sql, engine):
    options = {"shards": 3, "workers": 0} if engine == "fdb-parallel" else {}
    with connect(session.database, engine=engine, **options) as other:
        return other.sql(sql)


# ---------------------------------------------------------------------------
# Empty-input aggregates
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_ungrouped_aggregates_over_empty_input(session, engine):
    result = _run(
        session,
        "SELECT AVG(price) AS a, SUM(price) AS s, MIN(price) AS lo, "
        "MAX(price) AS hi, COUNT(*) AS n FROM R WHERE price > 1000",
        engine,
    )
    assert result.rows == [(None, None, None, None, 0)]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("function", ["AVG", "SUM", "MIN", "MAX"])
def test_single_empty_aggregate_is_null(session, engine, function):
    result = _run(
        session,
        f"SELECT {function}(price) AS v FROM R WHERE price > 1000",
        engine,
    )
    assert result.rows == [(None,)]


@pytest.mark.parametrize("engine", ENGINES)
def test_grouped_aggregates_over_empty_input(session, engine):
    result = _run(
        session,
        "SELECT g, SUM(price) AS s FROM R WHERE price > 1000 GROUP BY g",
        engine,
    )
    assert result.rows == []


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_expression_aggregate(session, engine):
    result = _run(
        session,
        "SELECT SUM(price * 2 + 1) AS s FROM R WHERE price > 1000",
        engine,
    )
    assert result.rows == [(None,)]


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_aggregate_with_order_by_alias(session, engine):
    result = _run(
        session,
        "SELECT SUM(price) AS s FROM R WHERE price > 1000 ORDER BY s",
        engine,
    )
    assert result.rows == [(None,)]


@pytest.mark.parametrize("engine", ENGINES)
def test_having_filters_the_null_row(session, engine):
    result = _run(
        session,
        "SELECT SUM(price) AS s FROM R WHERE price > 1000 HAVING s > 0",
        engine,
    )
    assert result.rows == []


def test_builder_empty_aggregates_match_across_engines(session):
    builder = (
        session.query("R").where("price", ">", 1000).avg("price", "mean")
    )
    for engine in ENGINES:
        options = (
            {"shards": 2, "workers": 0} if engine == "fdb-parallel" else {}
        )
        with connect(session.database, engine=engine, **options) as other:
            assert other.execute(builder.to_query()).rows == [(None,)], engine


# ---------------------------------------------------------------------------
# Scientific-notation literals
# ---------------------------------------------------------------------------
def test_lexer_accepts_scientific_notation():
    kinds = [(t.kind, t.value) for t in tokenize("1e9 2.5E-3 1E+6 -4e2")]
    assert kinds[:-1] == [
        ("NUMBER", "1e9"),
        ("NUMBER", "2.5E-3"),
        ("NUMBER", "1E+6"),
        ("NUMBER", "-4e2"),
    ]


def test_lexer_exponent_needs_digits():
    # "1e" is not an exponent: NUMBER 1 followed by IDENT e.
    kinds = [(t.kind, t.value) for t in tokenize("1e")]
    assert kinds[:-1] == [("NUMBER", "1"), ("IDENT", "e")]


def test_scientific_literals_parse_and_compare():
    query = parse_query("SELECT g FROM R WHERE price < 1e9 AND price > 2.5E-3")
    values = sorted(c.value for c in query.comparisons)
    assert values == [0.0025, 1000000000.0]


@pytest.mark.parametrize("engine", ENGINES)
def test_scientific_literals_agree_across_engines(session, engine):
    result = _run(
        session,
        "SELECT g, SUM(price) AS s FROM R WHERE price < 1e9 GROUP BY g",
        engine,
    )
    assert sorted(result.rows) == [("a", 14), ("b", 30)]


def test_scientific_literals_round_trip():
    for text in (
        "SELECT g FROM R WHERE price < 1e9",
        "SELECT g FROM R WHERE price > 2.5E-3",
        "SELECT g FROM R WHERE price < 1E+6",
        "SELECT SUM(price * 1e2) AS s FROM R",
    ):
        sql = query_to_sql(parse_query(text))
        assert query_to_sql(parse_query(sql)) == sql  # fixed point


def test_malformed_exponent_still_errors():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT g FROM R WHERE price < 1e9x9")


# ---------------------------------------------------------------------------
# LIMIT 0
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_sql_limit_zero(session, engine):
    assert _run(session, "SELECT g FROM R LIMIT 0", engine).rows == []
    assert (
        _run(
            session,
            "SELECT g, SUM(price) AS s FROM R GROUP BY g "
            "ORDER BY s DESC LIMIT 0",
            engine,
        ).rows
        == []
    )


def test_builder_limit_zero(session):
    assert session.query("R").limit(0).run().rows == []
    assert session.query("R").order_by("price").limit(0).run().rows == []


def test_builder_limit_still_rejects_bad_values(session):
    with pytest.raises(QueryError, match="non-negative"):
        session.query("R").limit(-3)
    with pytest.raises(QueryError, match="integer"):
        session.query("R").limit(1.5)


def test_expression_where_with_literal_forms(session):
    # The expression path accepts the same literal values the SQL
    # front-end now produces.
    rows = (
        session.query("R")
        .where(col("price") * 1.0, "<", 1e9)
        .group_by("g")
        .sum("price", "s")
        .run()
        .rows
    )
    assert sorted(rows) == [("a", 14), ("b", 30)]
