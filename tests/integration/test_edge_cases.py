"""Edge cases across the whole stack: empty inputs, extreme filters,
degenerate groupings, interactions between clauses."""

import pytest

from repro.core.engine import FDBEngine
from repro.database import Database
from repro.query import Comparison, Having, Query, aggregate
from repro.relational.engine import RDBEngine
from repro.relational.relation import Relation

from tests.conftest import assert_same_relation


@pytest.fixture()
def db():
    return Database(
        [
            Relation(("a", "b"), [(1, 2), (3, 4)], "R"),
            Relation(("b", "c"), [], "Empty"),
            Relation(("d",), [(7,)], "Single"),
        ]
    )


ENGINES = [
    ("flat", lambda: FDBEngine()),
    ("factorised", lambda: FDBEngine(output="factorised")),
]


@pytest.mark.parametrize("mode,make", ENGINES)
def test_group_by_over_empty_join(db, mode, make):
    q = Query(
        relations=("R", "Empty"),
        group_by=("a",),
        aggregates=(aggregate("count", None, "n"),),
    )
    result = make().execute(q, db)
    rows = result.rows if hasattr(result, "rows") else list(result.iter_tuples())
    assert rows == []
    assert RDBEngine().execute(q, db).rows == []


@pytest.mark.parametrize("mode,make", ENGINES)
def test_selection_filters_everything(db, mode, make):
    q = Query(
        relations=("R",),
        comparisons=(Comparison("a", ">", 99),),
        group_by=("a",),
        aggregates=(aggregate("sum", "b", "s"),),
    )
    result = make().execute(q, db)
    rows = result.rows if hasattr(result, "rows") else list(result.iter_tuples())
    assert rows == []


def test_spj_on_empty_relation(db):
    q = Query(relations=("Empty",), projection=("b",))
    assert FDBEngine().execute(q, db).rows == []


def test_ordered_empty_with_limit(db):
    q = Query(relations=("Empty",)).with_order(["b"]).with_limit(5)
    assert FDBEngine().execute(q, db).rows == []


def test_single_tuple_relation(db):
    q = Query(
        relations=("Single",),
        group_by=("d",),
        aggregates=(aggregate("avg", "d", "m"),),
    )
    assert_same_relation(
        FDBEngine().execute(q, db), RDBEngine().execute(q, db)
    )


def test_group_by_every_attribute(db):
    # Grouping by the full schema: every group has exactly one tuple.
    q = Query(
        relations=("R",),
        group_by=("a", "b"),
        aggregates=(aggregate("count", None, "n"),),
    )
    result = FDBEngine().execute(q, db)
    assert sorted(result.rows) == [(1, 2, 1), (3, 4, 1)]


def test_having_eliminates_all_groups(db):
    q = Query(
        relations=("R",),
        group_by=("a",),
        aggregates=(aggregate("sum", "b", "s"),),
        having=(Having("s", ">", 1000),),
    )
    assert FDBEngine().execute(q, db).rows == []
    fo = FDBEngine(output="factorised").execute(q, db)
    assert list(fo.iter_tuples()) == []


def test_limit_zero(db):
    q = Query(relations=("R",)).with_limit(0)
    assert FDBEngine().execute(q, db).rows == []


def test_limit_larger_than_result(db):
    q = Query(relations=("R",)).with_order(["a"]).with_limit(100)
    assert len(FDBEngine().execute(q, db)) == 2


def test_duplicate_values_across_columns():
    # Same value in different columns must not confuse equivalences.
    db = Database([Relation(("x", "y"), [(1, 1), (1, 2), (2, 1)], "T")])
    q = Query(
        relations=("T",),
        group_by=("x",),
        aggregates=(aggregate("sum", "y", "s"),),
    )
    assert_same_relation(
        FDBEngine().execute(q, db), RDBEngine().execute(q, db)
    )


def test_string_and_numeric_mixed_schema():
    db = Database(
        [Relation(("name", "score"), [("b", 2), ("a", 9), ("b", 5)], "T")]
    )
    q = Query(
        relations=("T",),
        group_by=("name",),
        aggregates=(
            aggregate("min", "score", "lo"),
            aggregate("max", "score", "hi"),
        ),
    ).with_order([("name", "desc")])
    result = FDBEngine().execute(q, db)
    assert result.rows == [("b", 2, 5), ("a", 9, 9)]


def test_comparison_on_every_operator():
    db = Database([Relation(("v",), [(i,) for i in range(6)], "T")])
    for op, expected in [
        ("=", 1),
        ("!=", 5),
        ("<", 3),
        ("<=", 4),
        (">", 2),
        (">=", 3),
    ]:
        q = Query(relations=("T",), comparisons=(Comparison("v", op, 3),))
        assert len(FDBEngine().execute(q, db)) == expected, op


def test_aggregate_then_everything_combined(pizzeria):
    """All clauses at once: WHERE + GROUP BY + HAVING + ORDER + LIMIT."""
    q = Query(
        relations=("R",),
        comparisons=(Comparison("price", ">=", 1),),
        group_by=("pizza",),
        aggregates=(
            aggregate("sum", "price", "s"),
            aggregate("count", None, "n"),
        ),
        having=(Having("n", ">", 2),),
    ).with_order([("s", "desc")]).with_limit(2)
    assert_same_relation(
        FDBEngine().execute(q, pizzeria),
        RDBEngine().execute(q, pizzeria),
    )


def test_three_way_independent_grouping_with_desc_order():
    """Group attrs from three independent inputs: the f/o path must
    linearise via nesting (nest_root_under) and honour mixed order."""
    from repro.relational.sort import SortKey

    db = Database(
        [
            Relation(("a", "v"), [(1, 2), (2, 3), (1, 5)], "R"),
            Relation(("b",), [(7,), (8,)], "S"),
            Relation(("c",), [("x",), ("y",), ("z",)], "T"),
        ]
    )
    q = Query(
        relations=("R", "S", "T"),
        group_by=("a", "b", "c"),
        aggregates=(
            aggregate("sum", "v", "s"),
            aggregate("count", None, "n"),
        ),
        order_by=(SortKey("b", True), SortKey("a")),
    )
    reference = RDBEngine().execute(q, db)
    fo = FDBEngine(output="factorised").execute(q, db)
    assert_same_relation(fo.to_relation(), reference)
    assert_same_relation(FDBEngine().execute(q, db), reference)
    rows = list(fo.iter_tuples())
    assert [r[1] for r in rows] == sorted((r[1] for r in rows), reverse=True)


def test_aggregate_over_grouping_attribute():
    """SELECT g, SUM(g), AVG(g) ... GROUP BY g — the source is the key."""
    db = Database(
        [Relation(("g", "v"), [(1, 10), (1, 20), (2, 5)], "T")]
    )
    q = Query(
        relations=("T",),
        group_by=("g",),
        aggregates=(
            aggregate("sum", "g", "sg"),
            aggregate("avg", "g", "ag"),
            aggregate("min", "g", "mg"),
            aggregate("sum", "v", "sv"),
        ),
    )
    expected = RDBEngine().execute(q, db)
    assert_same_relation(FDBEngine().execute(q, db), expected)
    assert_same_relation(
        FDBEngine(output="factorised").execute(q, db).to_relation(), expected
    )
    assert sorted(expected.rows) == [(1, 2, 1.0, 1, 30), (2, 2, 2.0, 2, 5)]


def test_view_reuse_is_not_mutated(pizzeria):
    """Running queries must never mutate a registered factorised view."""
    fact = pizzeria.get_factorised("R")
    before = fact.pretty()
    size_before = fact.size()
    for group in (("customer",), ("pizza", "date"), ()):
        q = Query(
            relations=("R",),
            group_by=group,
            aggregates=(aggregate("sum", "price", "s"),),
        )
        FDBEngine().execute(q, pizzeria)
        FDBEngine(output="factorised").execute(q, pizzeria)
    assert fact.pretty() == before
    assert fact.size() == size_before
