"""Property tests for serialisation and the advisor on random inputs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import operators as ops
from repro.core.advisor import enumerate_ftrees
from repro.core.build import factorise_path
from repro.core.cost import Hypergraph
from repro.core.io import dumps, loads
from repro.relational.relation import Relation

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["x", "y", "zz"]),
)


@st.composite
def typed_relations(draw):
    """Relations with homogeneous columns of mixed types across columns."""
    n_rows = draw(st.integers(min_value=0, max_value=8))
    col_a = draw(st.lists(st.integers(0, 4), min_size=n_rows, max_size=n_rows))
    col_b = draw(
        st.lists(st.sampled_from(["p", "q", "r"]), min_size=n_rows, max_size=n_rows)
    )
    rows = list(dict.fromkeys(zip(col_a, col_b)))
    return Relation(("a", "b"), rows, name="R")


@given(typed_relations())
@SETTINGS
def test_serialisation_roundtrip_random(relation):
    fact = factorise_path(relation, "R")
    restored = loads(dumps(fact))
    restored.validate()
    assert restored.to_relation() == relation
    assert restored.size() == fact.size()


@given(typed_relations())
@SETTINGS
def test_serialisation_roundtrip_after_aggregation(relation):
    if not len(relation):
        return
    fact = factorise_path(relation, "R")
    aggregated = ops.apply_aggregation(
        fact, "a", ["b"], [("count", None)], name="n"
    )
    restored = loads(dumps(aggregated))
    assert list(restored.iter_tuples()) == list(aggregated.iter_tuples())


@st.composite
def hypergraphs(draw):
    """Random 2-3 relation hypergraphs over up to 4 attributes."""
    attributes = ["a", "b", "c", "d"][: draw(st.integers(2, 4))]
    n_edges = draw(st.integers(1, 3))
    edges = {}
    covered = set()
    for index in range(n_edges):
        edge = draw(
            st.sets(st.sampled_from(attributes), min_size=1, max_size=3)
        )
        edges[f"R{index}"] = tuple(sorted(edge))
        covered |= edge
    for attribute in attributes:
        if attribute not in covered:
            edges.setdefault("R0", ())
            edges["R0"] = tuple(sorted(set(edges["R0"]) | {attribute}))
    return attributes, Hypergraph(edges)


@given(hypergraphs())
@SETTINGS
def test_enumerated_trees_always_valid(pair):
    attributes, hypergraph = pair
    count = 0
    for tree in enumerate_ftrees(attributes, hypergraph, cap=3000):
        assert tree.satisfies_path_constraint()
        assert sorted(tree.attribute_names()) == sorted(attributes)
        count += 1
        if count > 200:
            break
    assert count >= 1  # at least one valid tree always exists (a path)
