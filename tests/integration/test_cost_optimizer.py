"""Cost-based optimisation: parity, drift adaptivity, plan-cache epochs.

The cost-based strategy must be observationally identical to the static
strategies (same rows, same ordering contracts) across the full named
workload, after IVM deltas, and under the sharded backend — while on a
skewed workload it must pick a measurably smaller f-tree than greedy
and re-optimise when drift invalidates its statistics.
"""

from __future__ import annotations

import random

import pytest

from repro import connect
from repro.core.build import factorise
from repro.core.engine import FDBEngine
from repro.core.ftree import build_ftree
from repro.data.workloads import FULL_WORKLOAD, build_workload_database
from repro.database import Database
from repro.query import Equality, Query
from repro.relational.relation import Relation
from repro.stats import stats_cache
from repro.stats.cache import _REOPT_DRIFT
from tests.shard.test_random_parity import _assert_parity, _random_query

SEED = "cost-optimizer/2013"


@pytest.fixture(scope="module")
def db():
    return build_workload_database(scale=0.1, seed=7)


@pytest.fixture(autouse=True)
def _fresh_stats():
    stats_cache().clear()
    yield
    stats_cache().clear()


# ---------------------------------------------------------------------------
# Full named workload: cost == greedy (and exhaustive on a subset)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(FULL_WORKLOAD))
def test_full_workload_parity_cost_vs_greedy(db, name):
    query = FULL_WORKLOAD[name].query
    greedy = connect(db, engine="fdb", optimizer="greedy").execute(query)
    cost = connect(db, engine="fdb", optimizer="cost").execute(query)
    _assert_parity(query, greedy, cost)


@pytest.mark.parametrize("name", ["Q1", "Q5", "Q8", "Q10", "Q13"])
def test_workload_parity_cost_vs_exhaustive(db, name):
    query = FULL_WORKLOAD[name].query
    exhaustive = connect(db, engine="fdb", optimizer="exhaustive").execute(
        query
    )
    cost = connect(db, engine="fdb", optimizer="cost").execute(query)
    _assert_parity(query, exhaustive, cost)


def test_cost_explain_reports_strategy_and_estimate(db):
    session = connect(db, engine="fdb", optimizer="cost")
    result = session.execute(FULL_WORKLOAD["Q2"].query)
    text = result.explain()
    assert "optimizer: cost" in text
    assert "cost: estimated" in text
    assert "statistics:" in text


# ---------------------------------------------------------------------------
# Parity after IVM deltas
# ---------------------------------------------------------------------------
def test_parity_after_ivm_deltas():
    rng = random.Random(SEED + "/deltas")
    database = build_workload_database(scale=0.1, seed=23)
    greedy = connect(database, engine="fdb", optimizer="greedy")
    cost = connect(database, engine="fdb", optimizer="cost")
    packages = sorted({row[2] for row in database.flat("Orders").rows})
    for step in range(6):
        if step % 2 == 0:
            row = (f"c{step:03d}", f"dCST{step:05d}", rng.choice(packages))
            greedy.insert("Orders", [row])
        else:
            greedy.delete("Orders", [rng.choice(database.flat("Orders").rows)])
        for _ in range(3):
            query = _random_query(rng, database)
            _assert_parity(query, greedy.execute(query), cost.execute(query))


# ---------------------------------------------------------------------------
# Sharded backend with merged statistics
# ---------------------------------------------------------------------------
def test_sharded_parity_with_cost_optimizer(db):
    rng = random.Random(SEED + "/shards")
    reference = connect(db, engine="fdb", optimizer="greedy")
    parallel = connect(
        db, engine="fdb-parallel", shards=3, workers=0, optimizer="cost"
    )
    for _ in range(15):
        query = _random_query(rng, db)
        _assert_parity(
            query, reference.execute(query), parallel.execute(query)
        )


# ---------------------------------------------------------------------------
# The skewed workload: drift-triggered re-optimisation
# ---------------------------------------------------------------------------
def _block(j, a_vals, xs, c_vals, ys):
    """A complete sub-product for one ``j``: keeps V factorisable over
    the registered tree j → (a → x, c → y)."""
    left = [(a, x) for a in a_vals for x in xs]
    right = [(c, y) for c in c_vals for y in ys]
    return [(j, a, x, c, y) for (a, x) in left for (c, y) in right]


def _skew_database():
    rows = []
    for j in range(4):
        rows += _block(
            j,
            [f"a{j}_{i}" for i in range(2)],
            [0, 1],  # x: 2 distinct values initially
            [f"c{j}_{i}" for i in range(2)],
            list(range(6)),  # y: 6 distinct values throughout
        )
    relation = Relation(("j", "a", "x", "c", "y"), rows, name="V")
    tree = build_ftree([("j", [("a", ["x"]), ("c", ["y"])])])
    database = Database([relation])
    database.add_factorised(
        "V", factorise(relation, tree, check=True).to_columnar()
    )
    return database


def _skew_rows():
    """Complete blocks for new j values that explode x's distinct count
    (60 fresh values) while y keeps its small domain."""
    rows = []
    for j in (100, 101):
        rows += _block(
            j,
            [f"a{j}"],
            [1000 + j * 100 + k for k in range(30)],
            [f"c{j}"],
            list(range(6)),
        )
    return rows


SKEW_QUERY = Query(relations=("V",), equalities=(Equality("x", "y"),))


def test_drift_triggers_reoptimisation_to_smaller_plan():
    database = _skew_database()
    greedy = FDBEngine(optimizer="greedy")
    cost = FDBEngine(optimizer="cost")

    _, plan_before, _ = cost.execute_traced(SKEW_QUERY, database)
    reopts = _REOPT_DRIFT._sample()
    report = database.insert("V", _skew_rows())
    assert database.drift_rows("V") >= report.inserted

    greedy_rel, _, greedy_trace = greedy.execute_traced(SKEW_QUERY, database)
    cost_rel, plan_after, cost_trace = cost.execute_traced(
        SKEW_QUERY, database
    )
    # The drift invalidation fired and produced a different plan…
    assert _REOPT_DRIFT._sample() == reopts + 1
    assert str(plan_after) != str(plan_before)
    # …that is measurably smaller than greedy's static choice: fewer
    # peak singletons across the intermediate factorisations.
    assert max(cost_trace.sizes) < max(greedy_trace.sizes)
    # And still the same answer (column order is plan-dependent for
    # SELECT *, so align schemas before comparing).
    aligned = cost_rel.project(greedy_rel.schema, dedup=False)
    assert sorted(aligned.rows) == sorted(greedy_rel.rows)


def test_prepared_plan_is_invalidated_by_drift_epochs():
    database = _skew_database()
    # result_cache_size=0: repeated runs must consult the plan path so
    # the reported plan-cache status is meaningful.
    session = connect(
        database, engine="fdb", optimizer="cost", result_cache_size=0
    )
    prepared = session.prepare(SKEW_QUERY)
    prepared.run()
    assert prepared.run().lifecycle.plan_cache == "hit"

    # A below-threshold change keeps the epoch, hence the plan.
    session.insert("V", _block(50, ["a50"], [0], ["c50"], [3]))
    assert prepared.run().lifecycle.plan_cache == "hit"

    # Past the threshold the stats epoch bumps and the fingerprint
    # changes: the retained plan is dropped and re-optimised.
    session.insert("V", _skew_rows())
    assert prepared.run().lifecycle.plan_cache == "miss"
    assert prepared.run().lifecycle.plan_cache == "hit"


def test_greedy_sessions_ignore_stats_epochs():
    database = _skew_database()
    session = connect(
        database, engine="fdb", optimizer="greedy", result_cache_size=0
    )
    prepared = session.prepare(SKEW_QUERY)
    prepared.run()
    session.insert("V", _skew_rows())
    # Statics don't consume statistics: the catalogue shape is all that
    # matters, and it did not change.
    assert prepared.run().lifecycle.plan_cache == "hit"
