"""Seeded layout-parity properties: columnar vs legacy unions.

The columnar kernel (`repro.core.kernels`) must be observationally
identical to the legacy per-node operators: same rows in the same
order, same singleton accounting in execution traces, across the full
named workload, seeded random queries, IVM deltas spliced into each
layout, and sharded ``fdb-parallel`` runs over columnar-registered
views.  Every random source is seeded so failures replay exactly.
"""

import random
import re

import pytest

from repro import connect
from repro.core.engine import FDBEngine
from repro.data.workloads import FULL_WORKLOAD, build_workload_database
from tests.shard.test_random_parity import _assert_parity, _random_query

SEED = "columnar-parity/2013"


def _columnar_database(scale=0.1, seed=7):
    """A workload database whose views are registered columnar."""
    database = build_workload_database(scale=scale, seed=seed)
    for name in list(database.factorised):
        database.add_factorised(
            name, database.get_factorised(name).to_columnar()
        )
    return database


@pytest.fixture(scope="module")
def db():
    return build_workload_database(scale=0.1, seed=7)


# ---------------------------------------------------------------------------
# Full named workload: rows, ordering, trace accounting
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(FULL_WORKLOAD))
def test_full_workload_exact_parity(db, name):
    query = FULL_WORKLOAD[name].query
    legacy = connect(db, engine="fdb", layout="legacy").execute(query)
    columnar = connect(db, engine="fdb", layout="columnar").execute(query)
    assert columnar.schema == legacy.schema
    assert list(columnar.rows) == list(legacy.rows)


@pytest.mark.parametrize("name", sorted(FULL_WORKLOAD))
def test_trace_size_accounting_matches(db, name):
    """Singleton counts per plan step are layout-invariant; resident
    bytes are layout-specific but always accounted (> 0)."""
    query = FULL_WORKLOAD[name].query
    _, _, legacy = FDBEngine(
        output="flat", layout="legacy"
    ).execute_traced(query, db)
    _, _, columnar = FDBEngine(
        output="flat", layout="columnar"
    ).execute_traced(query, db)
    # Aggregate placeholder names carry a process-global counter
    # (``__agg_7``); normalise it so only the structure is compared.
    def normalise(steps):
        return [re.sub(r"__agg_\d+", "__agg", step) for step in steps]

    assert normalise(columnar.steps) == normalise(legacy.steps)
    assert columnar.sizes == legacy.sizes
    assert len(columnar.bytes) == len(legacy.bytes)
    assert all(b > 0 for b in columnar.bytes)
    assert all(b > 0 for b in legacy.bytes)


def test_registered_views_report_same_singletons(db):
    for name in db.factorised:
        legacy = db.get_factorised(name).to_legacy()
        columnar = legacy.to_columnar()
        legacy_singletons, legacy_bytes = legacy.size_info()
        columnar_singletons, columnar_bytes = columnar.size_info()
        assert columnar_singletons == legacy_singletons
        assert legacy_bytes > 0 and columnar_bytes > 0


# ---------------------------------------------------------------------------
# Seeded random queries
# ---------------------------------------------------------------------------
def test_seeded_random_queries_agree(db):
    rng = random.Random(SEED)
    legacy = connect(db, engine="fdb", layout="legacy")
    columnar = connect(db, engine="fdb", layout="columnar")
    for _ in range(40):
        query = _random_query(rng, db)
        _assert_parity(query, legacy.execute(query), columnar.execute(query))


# ---------------------------------------------------------------------------
# IVM deltas spliced into each layout independently
# ---------------------------------------------------------------------------
def test_parity_after_ivm_deltas():
    rng = random.Random(SEED + "/deltas")
    legacy_db = build_workload_database(scale=0.1, seed=23)
    columnar_db = _columnar_database(scale=0.1, seed=23)
    legacy = connect(legacy_db, engine="fdb", layout="legacy")
    columnar = connect(columnar_db, engine="fdb", layout="columnar")
    packages = sorted({row[2] for row in legacy_db.flat("Orders").rows})
    for step in range(8):
        if step % 2 == 0:
            row = (f"c{step:03d}", f"dCOL{step:05d}", rng.choice(packages))
            legacy.insert("Orders", [row])
            columnar.insert("Orders", [row])
        else:
            victim = rng.choice(legacy_db.flat("Orders").rows)
            legacy.delete("Orders", [victim])
            columnar.delete("Orders", [victim])
        assert sorted(columnar_db.flat("Orders").rows) == sorted(
            legacy_db.flat("Orders").rows
        )
        for _ in range(3):
            query = _random_query(rng, legacy_db)
            _assert_parity(
                query, legacy.execute(query), columnar.execute(query)
            )


def test_maintained_views_stay_columnar_after_deltas():
    from repro.core.frep import ColumnarFactorisation

    database = _columnar_database(scale=0.1, seed=23)
    session = connect(database, engine="fdb", layout="columnar")
    packages = sorted({row[2] for row in database.flat("Orders").rows})
    session.insert("Orders", [("c900", "dNEW00001", packages[0])])
    session.delete("Orders", [database.flat("Orders").rows[0]])
    for name in database.factorised:
        fact = database.get_factorised(name)
        assert isinstance(fact, ColumnarFactorisation), name


# ---------------------------------------------------------------------------
# Sharded runs over columnar-registered views
# ---------------------------------------------------------------------------
def test_sharded_parity_with_columnar_views():
    rng = random.Random(SEED + "/shards")
    database = _columnar_database(scale=0.1, seed=7)
    reference = connect(database, engine="fdb", layout="legacy")
    parallel = connect(database, engine="fdb-parallel", shards=3, workers=0)
    for _ in range(20):
        query = _random_query(rng, database)
        _assert_parity(
            query, reference.execute(query), parallel.execute(query)
        )


def test_sharded_parity_with_columnar_views_after_mutations():
    rng = random.Random(SEED + "/shard-deltas")
    database = _columnar_database(scale=0.1, seed=23)
    reference = connect(database, engine="fdb", layout="columnar")
    parallel = connect(database, engine="fdb-parallel", shards=3, workers=0)
    packages = sorted({row[2] for row in database.flat("Orders").rows})
    for step in range(6):
        if step % 2 == 0:
            parallel.insert(
                "Orders",
                [(f"c{step:03d}", f"dSHC{step:05d}", rng.choice(packages))],
            )
        else:
            victim = rng.choice(database.flat("Orders").rows)
            parallel.delete("Orders", [victim])
        for _ in range(3):
            query = _random_query(rng, database)
            _assert_parity(
                query, reference.execute(query), parallel.execute(query)
            )
