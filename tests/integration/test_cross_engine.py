"""Cross-engine integration: FDB (both modes), RDB (both modes), sqlite3.

Every Figure 3 query — plus targeted variants — must produce identical
results on every engine, both from the factorised materialised views
and from flat input.
"""

import sqlite3
from dataclasses import replace

import pytest

from repro.core.engine import FDBEngine
from repro.data.workloads import WORKLOAD
from repro.relational.engine import RDBEngine
from repro.relational.plans import eager_aggregation
from repro.sql.generator import query_to_sql

from tests.conftest import assert_same_relation


@pytest.fixture(scope="module")
def db():
    from repro.data.workloads import build_workload_database

    return build_workload_database(scale=0.1, seed=7)


@pytest.fixture(scope="module")
def connection(db):
    con = sqlite3.connect(":memory:")
    for name in db.names():
        relation = db.flat(name)
        cols = ", ".join(f'"{a}"' for a in relation.schema)
        con.execute(f'CREATE TABLE "{name}" ({cols})')
        marks = ",".join("?" * len(relation.schema))
        con.executemany(f'INSERT INTO "{name}" VALUES ({marks})', relation.rows)
    return con


@pytest.mark.parametrize("name", list(WORKLOAD))
def test_all_engines_agree_on_views(db, connection, name):
    query = WORKLOAD[name].query
    reference = RDBEngine("sort").execute(query, db)

    flat = FDBEngine().execute(query, db)
    assert_same_relation(flat, reference)

    factorised = FDBEngine(output="factorised").execute(query, db)
    assert_same_relation(factorised.to_relation(), reference)

    hashed = RDBEngine("hash").execute(query, db)
    assert_same_relation(hashed, reference)

    rows = connection.execute(query_to_sql(query)).fetchall()
    assert len(rows) == len(reference)


@pytest.mark.parametrize("name", list(WORKLOAD))
def test_ordering_agrees(db, name):
    query = WORKLOAD[name].query
    if not query.order_by:
        pytest.skip("unordered query")
    reference = RDBEngine().execute(query, db)
    result = FDBEngine().execute(query, db)
    keys = [k.attribute for k in query.order_by]
    ref_cols = [
        tuple(r[reference.schema.index(k)] for k in keys) for r in reference.rows
    ]
    out_cols = [
        tuple(r[result.schema.index(k)] for k in keys) for r in result.rows
    ]
    assert ref_cols == out_cols


@pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
def test_flat_input_agreement(db, name):
    query = replace(
        WORKLOAD[name].query, relations=("Orders", "Packages", "Items")
    )
    reference = RDBEngine().execute(query, db)
    assert_same_relation(FDBEngine().execute(query, db), reference)
    assert_same_relation(eager_aggregation(query, db).execute(db), reference)


@pytest.mark.parametrize("name", ["Q10", "Q11", "Q12", "Q13"])
def test_limits_agree(db, name):
    query = WORKLOAD[name].query.with_limit(10)
    reference = RDBEngine().execute(query, db)
    result = FDBEngine().execute(query, db)
    assert len(result) == len(reference) == 10
    keys = [k.attribute for k in query.order_by]
    ref_cols = [
        tuple(r[reference.schema.index(k)] for k in keys) for r in reference.rows
    ]
    out_cols = [
        tuple(r[result.schema.index(k)] for k in keys) for r in result.rows
    ]
    assert ref_cols == out_cols


def test_min_max_avg_on_views(db):
    from repro.query import Query, aggregate

    query = Query(
        relations=("R1",),
        group_by=("package",),
        aggregates=(
            aggregate("min", "price", "lo"),
            aggregate("max", "price", "hi"),
            aggregate("avg", "price", "mean"),
            aggregate("count", None, "n"),
        ),
    )
    reference = RDBEngine().execute(query, db)
    assert_same_relation(FDBEngine().execute(query, db), reference)
    assert_same_relation(
        FDBEngine(output="factorised").execute(query, db).to_relation(),
        reference,
    )


def test_selection_on_views(db):
    from repro.query import Comparison, Query, aggregate

    query = Query(
        relations=("R1",),
        comparisons=(Comparison("price", ">", 10),),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "s"),),
    )
    reference = RDBEngine().execute(query, db)
    assert_same_relation(FDBEngine().execute(query, db), reference)


def test_descending_orders(db):
    query = WORKLOAD["Q13"].query.with_order(
        [("customer", "desc"), "date", ("package", "desc")]
    )
    reference = RDBEngine().execute(query, db)
    result = FDBEngine().execute(query, db)
    keys = [k.attribute for k in query.order_by]
    ref_cols = [
        tuple(r[reference.schema.index(k)] for k in keys) for r in reference.rows
    ]
    out_cols = [
        tuple(r[result.schema.index(k)] for k in keys) for r in result.rows
    ]
    assert ref_cols == out_cols
