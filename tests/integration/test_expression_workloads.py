"""The expression workload catalogue (E1–E5) across every engine."""

import pytest

from repro.api.engines import create_engine
from repro.data.workloads import EXPRESSION_QUERIES, EXPRESSION_WORKLOAD
from repro.relational.engine import RDBEngine


ENGINES = ("fdb", "rdb", "rdb-hash", "sqlite")


def test_catalogue_shape():
    assert set(EXPRESSION_QUERIES) == {"E1", "E2", "E3", "E4", "E5"}
    assert all(
        EXPRESSION_WORKLOAD[name].group == "EXPR"
        for name in EXPRESSION_QUERIES
    )


@pytest.mark.parametrize("name", EXPRESSION_QUERIES)
def test_expression_workloads_engine_parity(tiny_workload_db, name):
    query = EXPRESSION_WORKLOAD[name].query
    baseline = sorted(RDBEngine().execute(query, tiny_workload_db).rows)
    assert baseline, f"{name} returned no rows — weak test data"
    for engine_name in ENGINES:
        engine = create_engine(engine_name)
        engine.prepare(tiny_workload_db)
        run = engine.run(query, tiny_workload_db)
        rows = sorted(tuple(r) for r in run.relation.rows)
        assert len(rows) == len(baseline), engine_name
        for left, right in zip(rows, baseline):
            assert left == pytest.approx(right), (engine_name, left, right)


def test_expression_workloads_have_sql_form(tiny_workload_db):
    from repro.sql import parse_query, query_to_sql

    for name in EXPRESSION_QUERIES:
        query = EXPRESSION_WORKLOAD[name].query
        sql = query_to_sql(query)
        reparsed = parse_query(sql)
        left = sorted(RDBEngine().execute(query, tiny_workload_db).rows)
        right = sorted(RDBEngine().execute(reparsed, tiny_workload_db).rows)
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert a == pytest.approx(b), name
