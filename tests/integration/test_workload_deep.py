"""Deeper workload coverage: fig4 harness, exhaustive optimiser on the
real workload, SQL round-trips of the Figure 3 queries."""

import pytest

from repro.bench.experiments import run_fig4
from repro.core.engine import FDBEngine
from repro.data.workloads import WORKLOAD
from repro.relational.engine import RDBEngine
from repro.sql import parse_query, query_to_sql

from tests.conftest import assert_same_relation


def test_run_fig4_series():
    report = run_fig4(scales=[0.1, 0.2], repeats=1)
    series = report.extras["series"]
    assert "FDB: Q2" in series
    for label, data in series.items():
        assert len(data.points) == 2, label
        assert all(seconds > 0 for _, seconds in data.points)


@pytest.mark.parametrize("name", ["Q1", "Q2", "Q4", "Q5"])
def test_exhaustive_optimizer_on_workload(tiny_workload_db, name):
    query = WORKLOAD[name].query
    greedy = FDBEngine(optimizer="greedy").execute(query, tiny_workload_db)
    exhaustive = FDBEngine(optimizer="exhaustive").execute(
        query, tiny_workload_db
    )
    assert_same_relation(greedy, exhaustive)


FIG3_SQL = {
    "Q1": (
        "SELECT package, date, customer, SUM(price) FROM R1 "
        "GROUP BY package, date, customer"
    ),
    "Q2": "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer",
    "Q5": "SELECT SUM(price) FROM R1",
    "Q7": (
        "SELECT customer, SUM(price) AS revenue FROM R1 "
        "GROUP BY customer ORDER BY revenue"
    ),
    "Q12": "SELECT * FROM R2 ORDER BY date, package, item",
}


@pytest.mark.parametrize("name", list(FIG3_SQL))
def test_figure3_queries_expressible_in_sql(tiny_workload_db, name):
    """The SQL front-end reproduces the algebraic workload definitions."""
    from_sql = parse_query(FIG3_SQL[name])
    algebraic = WORKLOAD[name].query
    left = RDBEngine().execute(from_sql, tiny_workload_db)
    right = RDBEngine().execute(algebraic, tiny_workload_db)
    assert_same_relation(left, right)
    # And the SQL we generate back parses to an equivalent query.
    regenerated = parse_query(query_to_sql(from_sql))
    again = RDBEngine().execute(regenerated, tiny_workload_db)
    assert_same_relation(again, left)


def test_fdb_plan_sizes_shrink_with_aggregation(tiny_workload_db):
    """Execution traces: γ steps reduce representation size."""
    engine = FDBEngine()
    _, _, trace = engine.execute_traced(WORKLOAD["Q2"].query, tiny_workload_db)
    input_size = tiny_workload_db.get_factorised("R1").size()
    gamma_sizes = [
        size
        for step, size in zip(trace.steps, trace.sizes)
        if step.startswith("γ")
    ]
    assert gamma_sizes, "expected at least one γ step"
    assert gamma_sizes[0] < input_size


def test_q6_order_free_for_fdb(tiny_workload_db):
    """Experiment 3: Q6's order-by is satisfied by Q2's result already."""
    engine = FDBEngine()
    _, q2_plan, _ = engine.execute_traced(WORKLOAD["Q2"].query, tiny_workload_db)
    q2_steps = len(q2_plan)
    _, q6_plan, _ = engine.execute_traced(WORKLOAD["Q6"].query, tiny_workload_db)
    q6_steps = len(q6_plan)
    assert q6_steps == q2_steps  # no extra restructuring work
