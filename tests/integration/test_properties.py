"""Property-based tests (hypothesis) for the core invariants.

The central invariants of factorised databases, exercised on randomised
inputs:

1. factorise ∘ flatten is the identity (path trees: any relation);
2. join trees: flatten(factorise(R ⋈ S)) = R ⋈ S;
3. swap never changes the represented relation, the sortedness
   invariant, or the path constraint;
4. FDB and RDB agree on randomised aggregate queries;
5. ordered enumeration equals sorting the flat result;
6. the size-bound cost dominates the actual representation size;
7. merge/absorb/selection agree with their relational counterparts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.cost import Hypergraph, ftree_cost
from repro.core.engine import FDBEngine
from repro.core.enumerate import iter_tuples, restructure_for_order
from repro.core.ftree import build_ftree
from repro.database import Database
from repro.query import Comparison, Query, aggregate
from repro.relational.engine import RDBEngine
from repro.relational.operators import natural_join
from repro.relational.relation import Relation
from repro.relational.sort import sort_rows

from tests.conftest import assert_same_relation

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

values = st.integers(min_value=0, max_value=5)


@st.composite
def relations(draw, attrs=("a", "b", "c"), max_rows=12):
    rows = draw(
        st.lists(
            st.tuples(*([values] * len(attrs))),
            min_size=1,
            max_size=max_rows,
            unique=True,
        )
    )
    return Relation(attrs, rows, name="R")


@st.composite
def joined_pair(draw):
    left = draw(
        st.lists(st.tuples(values, values), min_size=1, max_size=10, unique=True)
    )
    right = draw(
        st.lists(st.tuples(values, values), min_size=1, max_size=10, unique=True)
    )
    r = Relation(("a", "b"), left, name="R")
    s = Relation(("b", "c"), right, name="S")
    return r, s


@given(relations())
@SETTINGS
def test_factorise_flatten_identity(relation):
    fact = factorise_path(relation, "R")
    fact.validate()
    assert fact.to_relation() == relation


@given(joined_pair())
@SETTINGS
def test_join_tree_factorisation(pair):
    r, s = pair
    joined = natural_join(r, s)
    if not len(joined):
        return
    tree = build_ftree(
        [("b", ["a", "c"])],
        keys={"b": {"R", "S"}, "a": {"R"}, "c": {"S"}},
    )
    fact = factorise(joined, tree)
    fact.validate()
    assert fact.to_relation() == joined
    # Bound check: cost with |D| = max input size dominates actual size.
    hypergraph = Hypergraph({"R": ("a", "b"), "S": ("b", "c")})
    bound = ftree_cost(tree, hypergraph, scale=max(len(r), len(s)))
    assert bound >= fact.size()


@given(relations(), st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4))
@SETTINGS
def test_swap_sequence_preserves_relation(relation, swap_names):
    fact = factorise_path(relation, "R")
    for name in swap_names:
        node = fact.ftree.node(name)
        if fact.ftree.parent(node) is None:
            continue
        fact = ops.swap(fact, name)
        fact.validate()
        assert fact.ftree.satisfies_path_constraint()
    assert fact.to_relation() == relation


@given(
    joined_pair(),
    st.sampled_from(["a", "b", "c"]),
    st.sampled_from(["sum", "count", "min", "max", "avg"]),
)
@SETTINGS
def test_fdb_matches_rdb_on_random_aggregates(pair, group_attr, function):
    r, s = pair
    db = Database([r, s])
    attribute = None if function == "count" else ("c" if group_attr != "c" else "a")
    query = Query(
        relations=("R", "S"),
        group_by=(group_attr,),
        aggregates=(aggregate(function, attribute, "out"),),
    )
    reference = RDBEngine().execute(query, db)
    if not len(reference):
        return
    assert_same_relation(FDBEngine().execute(query, db), reference)


@given(joined_pair())
@SETTINGS
def test_factorised_output_matches_rdb(pair):
    r, s = pair
    db = Database([r, s])
    query = Query(
        relations=("R", "S"),
        group_by=("a",),
        aggregates=(
            aggregate("sum", "c", "s"),
            aggregate("count", None, "n"),
        ),
    )
    reference = RDBEngine().execute(query, db)
    if not len(reference):
        return
    result = FDBEngine(output="factorised").execute(query, db)
    assert_same_relation(result.to_relation(), reference)


@given(
    relations(),
    st.permutations(["a", "b", "c"]),
    st.tuples(st.booleans(), st.booleans(), st.booleans()),
)
@SETTINGS
def test_ordered_enumeration_equals_sorting(relation, perm, directions):
    order = [
        (attr, "desc" if desc else "asc")
        for attr, desc in zip(perm, directions)
    ]
    fact = factorise_path(relation, "R")
    for child in restructure_for_order(fact.ftree, order):
        fact = ops.swap(fact, child)
    rows = list(iter_tuples(fact, order))
    expected = sort_rows(
        relation.project(fact.schema(), dedup=False).rows,
        fact.schema(),
        order,
    )
    assert rows == expected


@given(relations(), values)
@SETTINGS
def test_constant_selection_matches_relational(relation, threshold):
    fact = factorise_path(relation, "R")
    selected = ops.select_constant(fact, Comparison("b", "<=", threshold))
    selected.validate()
    expected = relation.select(lambda row: row["b"] <= threshold)
    assert selected.to_relation() == expected


@given(relations())
@SETTINGS
def test_absorb_matches_relational_selection(relation):
    fact = factorise_path(relation, "R")  # a → b → c
    absorbed = ops.absorb(fact, "a", "c")
    absorbed.validate()
    expected = relation.select(lambda row: row["a"] == row["c"])
    flat = absorbed.to_relation()
    assert set(flat.project(["a", "b", "c"], dedup=False).rows) == set(
        expected.rows
    )


@given(joined_pair())
@SETTINGS
def test_merge_computes_natural_join(pair):
    r, s = pair
    r2 = r.rename({"b": "b1"})
    s2 = s.rename({"b": "b2"})
    fact = ops.product(
        factorise_path(r2, "R", order=["b1", "a"]),
        factorise_path(s2, "S", order=["b2", "c"]),
    )
    merged = ops.merge_siblings(fact, "b1", "b2")
    merged.validate()
    expected = natural_join(r, s)
    flat = merged.to_relation()
    projected = set(
        (row[flat.schema.index("a")], row[flat.schema.index("b1")], row[flat.schema.index("c")])
        for row in flat.rows
    )
    assert projected == {
        (a, b, c) for (b, a, c) in
        ((row[expected.schema.index("b")], row[expected.schema.index("a")], row[expected.schema.index("c")]) for row in expected.rows)
    }


@given(relations(max_rows=10))
@SETTINGS
def test_remove_leaf_is_projection(relation):
    fact = factorise_path(relation, "R")
    removed = ops.remove_leaf(fact, "c")
    removed.validate()
    assert removed.to_relation() == relation.project(["a", "b"])


@given(joined_pair())
@SETTINGS
def test_scalar_aggregates_match(pair):
    r, s = pair
    db = Database([r, s])
    query = Query(
        relations=("R", "S"),
        aggregates=(
            aggregate("count", None, "n"),
            aggregate("sum", "a", "sa"),
        ),
    )
    reference = RDBEngine().execute(query, db)
    assert_same_relation(FDBEngine().execute(query, db), reference)
