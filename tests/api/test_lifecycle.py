"""Session close semantics: idempotent, final, clear errors."""

import pytest

from repro import SessionClosedError, connect, param
from repro.relational.relation import Relation


@pytest.fixture()
def session():
    rows = [("a", 1, 5), ("b", 2, 9)]
    return connect(Relation(("g", "k", "price"), rows, name="R"))


def test_close_is_idempotent(session):
    assert not session.closed
    session.close()
    assert session.closed
    session.close()  # second close is a no-op, not an error
    assert session.closed


def test_context_manager_closes(session):
    with session as s:
        s.execute("SELECT COUNT(*) AS n FROM R")
    assert session.closed
    with pytest.raises(SessionClosedError):
        session.execute("SELECT COUNT(*) AS n FROM R")


@pytest.mark.parametrize(
    "use",
    [
        lambda s: s.execute("SELECT COUNT(*) AS n FROM R"),
        lambda s: s.query("R"),
        lambda s: s.sql("SELECT COUNT(*) AS n FROM R"),
        lambda s: s.prepare("SELECT COUNT(*) AS n FROM R"),
        lambda s: s.explain("SELECT COUNT(*) AS n FROM R"),
        lambda s: s.insert("R", [("c", 3, 1)]),
        lambda s: s.delete("R", [("a", 1, 5)]),
        lambda s: s.watch("SELECT g, COUNT(*) AS n FROM R GROUP BY g"),
        lambda s: s.add_relation(Relation(("z",), [(1,)], "Z")),
    ],
    ids=[
        "execute",
        "query",
        "sql",
        "prepare",
        "explain",
        "insert",
        "delete",
        "watch",
        "add_relation",
    ],
)
def test_use_after_close_raises_session_closed(session, use):
    session.close()
    with pytest.raises(SessionClosedError, match="closed"):
        use(session)


def test_apply_after_close_raises(session):
    from repro.ivm.delta import Delta

    delta = Delta.insert("R", [("c", 3, 1)])
    session.close()
    with pytest.raises(SessionClosedError):
        session.apply(delta)


def test_prepared_handle_of_closed_session_raises(session):
    prepared = session.prepare(
        session.query("R").where("price", ">", param("floor")).select("g")
    )
    prepared.run(floor=1)
    session.close()
    with pytest.raises(SessionClosedError):
        prepared.run(floor=1)


def test_closed_session_database_survives(session):
    database = session.database
    session.close()
    with connect(database) as fresh:
        assert fresh.execute("SELECT COUNT(*) AS n FROM R").rows == [(2,)]


def test_sqlite_backend_closed_with_session(session):
    backend = session._resolve("sqlite")
    session.execute("SELECT COUNT(*) AS n FROM R", engine="sqlite")
    session.close()
    with pytest.raises(RuntimeError, match="not prepared"):
        backend.connection
