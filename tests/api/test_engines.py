"""Engine registry and backend behaviour."""

import pytest

from repro.api import (
    Engine,
    EngineRun,
    available_engines,
    connect,
    create_engine,
    register_engine,
)
from repro.relational.relation import Relation


def test_builtin_registry_names():
    names = available_engines()
    for expected in ("fdb", "fdb-factorised", "rdb", "rdb-hash", "sqlite"):
        assert expected in names


def test_create_engine_unknown_name_suggests():
    with pytest.raises(ValueError, match="did you mean 'sqlite'"):
        create_engine("sqlight")
    with pytest.raises(ValueError, match="registered engines"):
        create_engine("nope")


def test_register_engine_rejects_silent_override():
    with pytest.raises(ValueError, match="already registered"):
        register_engine("fdb", lambda: None)


def test_engine_options_forwarded():
    fdb = create_engine("fdb", optimizer="exhaustive")
    assert fdb.name == "FDB"
    assert create_engine("fdb-factorised").name == "FDB f/o"
    assert create_engine("rdb").name == "RDB-sort"
    assert create_engine("rdb-hash").name == "RDB-hash"


def test_custom_engine_plugs_into_sessions(pizzeria):
    class ConstantEngine(Engine):
        name = "constant"

        def run(self, query, database):
            return EngineRun(
                relation=Relation(("answer",), [(42,)], "constant")
            )

    register_engine("constant-test", ConstantEngine, replace=True)
    session = connect(pizzeria)
    result = session.query("R").count("n").run(engine="constant-test")
    assert result.rows == [(42,)]
    assert result.engine == "constant"
    # Default explain text exists even for minimal backends.
    assert "constant" in result.explain()


def test_sqlite_backend_reloads_per_database(pizzeria, tiny_workload_db):
    backend = create_engine("sqlite")
    with pytest.raises(RuntimeError, match="not prepared"):
        backend.connection
    backend.prepare(pizzeria)
    first = backend.connection
    query = connect(pizzeria).query("R").count("n").to_query()
    assert backend.run(query, pizzeria).relation.rows == [(13,)]
    # A different database triggers a fresh load.
    backend.prepare(tiny_workload_db)
    assert backend.connection is not first
