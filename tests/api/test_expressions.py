"""Expressions through the canonical session API: parity and surface.

Acceptance: ``SUM(price * qty)``-style queries run through
``connect()`` on the fdb, rdb, and sqlite engines with identical
results, and the fdb path computes them without full flattening when
the attributes live on independent branches (trace inspection).
"""

import warnings

import pytest

from repro import QueryError, Relation, col, connect
from repro.core.engine import FDBEngine
from repro.query import aggregate


PARITY_ENGINES = ("fdb", "rdb", "sqlite")


@pytest.fixture()
def session():
    return connect(
        [
            Relation(
                ("k", "price"), [(1, 10), (1, 20), (2, 5), (3, 7)], "S"
            ),
            Relation(
                ("k", "qty"), [(1, 2), (1, 3), (2, 4), (3, 1)], "T"
            ),
        ]
    )


def revenue_builder(session):
    return (
        session.query("S", "T")
        .group_by("k")
        .sum(col("price") * col("qty"), alias="revenue")
    )


def test_sum_product_parity_across_engines(session):
    results = {
        engine: sorted(revenue_builder(session).run(engine=engine).rows)
        for engine in PARITY_ENGINES + ("rdb-hash", "fdb-factorised")
    }
    expected = [(1, 150), (2, 20), (3, 7)]
    for engine, rows in results.items():
        assert rows == expected, f"{engine} disagrees: {rows}"


def test_fdb_path_avoids_flattening_on_independent_branches(session):
    result = revenue_builder(session).run(engine="fdb")
    stats = result.expression_stats
    assert stats is not None
    assert stats.flatten_events == 0
    assert stats.native_terms > 0


def test_expression_provenance_in_explain(session):
    result = revenue_builder(session).run(engine="fdb")
    text = result.explain()
    assert "expression: revenue ← sum(price * qty)" in text
    assert "factorisation-native" in text


def test_builder_expression_validation(session):
    with pytest.raises(QueryError, match="unknown attribute"):
        session.query("S").sum(col("typo") * col("price"), "x")


def test_builder_expression_where_parity(session):
    rows = {}
    for engine in PARITY_ENGINES:
        result = (
            session.query("S", "T")
            .where(col("price") * 2, ">", 10)
            .group_by("k")
            .sum("price", "s")
            .run(engine=engine)
        )
        rows[engine] = sorted(result.rows)
    assert rows["fdb"] == rows["rdb"] == rows["sqlite"]
    assert rows["fdb"] == [(1, 60), (3, 7)]


def test_builder_computed_columns_parity(session):
    for engine in PARITY_ENGINES:
        result = (
            session.query("S")
            .select("k", (col("price") * 2, "double"))
            .run(engine=engine)
        )
        assert result.schema == ("k", "double")
        assert sorted(result.rows) == [(1, 20), (1, 40), (2, 10), (3, 14)]


def test_builder_bare_col_select_is_projection(session):
    result = session.query("S").select(col("k")).run()
    assert result.schema == ("k",)


def test_sql_expression_through_session(session):
    for engine in PARITY_ENGINES:
        result = session.sql(
            "SELECT k, SUM(price * qty) AS revenue FROM S NATURAL JOIN T "
            "GROUP BY k",
            engine=engine,
        )
        assert sorted(result.rows) == [(1, 150), (2, 20), (3, 7)]


def test_division_parity_with_sqlite(session):
    # True division everywhere, including the generated SQL fed to
    # sqlite (integer columns would otherwise divide integrally).
    for engine in PARITY_ENGINES:
        result = (
            session.query("S")
            .group_by("k")
            .sum(col("price") / 4, alias="q")
            .run(engine=engine)
        )
        for key, value in result.rows:
            assert value == pytest.approx(
                {1: 7.5, 2: 1.25, 3: 1.75}[key]
            ), engine


def test_string_arguments_still_work_everywhere(session):
    for engine in PARITY_ENGINES:
        result = (
            session.query("S").group_by("k").sum("price", "s").run(engine=engine)
        )
        assert sorted(result.rows) == [(1, 30), (2, 5), (3, 7)]


def test_expression_min_parity(session):
    for engine in PARITY_ENGINES:
        result = (
            session.query("S", "T")
            .group_by("k")
            .min(col("price") + col("qty"), alias="lo")
            .run(engine=engine)
        )
        assert sorted(result.rows) == [(1, 12), (2, 9), (3, 8)]


# ---------------------------------------------------------------------------
# Engine-state shims are gone: execute_traced is the supported surface
# ---------------------------------------------------------------------------
def test_last_plan_shims_removed(session):
    engine = FDBEngine()
    query = revenue_builder(session).to_query()
    engine.execute(query, session.database)
    assert not hasattr(engine, "last_plan")
    assert not hasattr(engine, "last_trace")


def test_execute_traced_does_not_warn(session):
    engine = FDBEngine()
    query = revenue_builder(session).to_query()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result, plan, trace = engine.execute_traced(query, session.database)
    assert plan is not None and trace is not None
    assert sorted(result.rows) == [(1, 150), (2, 20), (3, 7)]


# ---------------------------------------------------------------------------
# Review regressions
# ---------------------------------------------------------------------------
def test_factorised_output_rejects_computed_alias_order(session):
    builder = (
        session.query("S", "T")
        .select("k", (col("price") * col("qty"), "p"))
        .order_by("p", desc=True)
        .limit(3)
    )
    with pytest.raises(QueryError, match="computed column"):
        builder.run(engine="fdb-factorised")
    # The flat engines agree on the ordered, limited result.
    rows = {
        engine: builder.run(engine=engine).rows
        for engine in PARITY_ENGINES
    }
    assert rows["fdb"] == rows["rdb"] == rows["sqlite"]


def test_having_arithmetic_rejected_cleanly(session):
    with pytest.raises(QueryError, match="HAVING supports aggregate"):
        session.sql(
            "SELECT k, SUM(price) AS r FROM S GROUP BY k HAVING r + 1 > 2"
        )


def test_constant_computed_columns(session):
    from repro import lit

    for engine in PARITY_ENGINES:
        assert session.sql("SELECT 2 * 3 AS six FROM S", engine=engine).rows == [
            (6,)
        ], engine
    assert session.query("S").select((lit(2) * 3, "six")).run().rows == [(6,)]


def test_select_list_order_preserved(session):
    for engine in PARITY_ENGINES:
        result = session.sql("SELECT price * 2 AS d, k FROM S", engine=engine)
        assert result.schema == ("d", "k"), engine
    result = session.query("S").select((col("price") * 2, "d"), "k").run()
    assert result.schema == ("d", "k")


def test_non_injective_computed_column_dedups(session):
    for engine in PARITY_ENGINES:
        result = (
            session.query("S").select((col("price") * 0, "z")).run(engine=engine)
        )
        assert result.rows == [(0,)], engine
