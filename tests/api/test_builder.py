"""Builder→AST lowering golden tests and error-message tests."""

import pytest

from repro.api import connect
from repro.query import (
    AggregateSpec,
    Comparison,
    Equality,
    Having,
    Query,
    QueryError,
)
from repro.relational.sort import SortKey


@pytest.fixture()
def session(pizzeria):
    return connect(pizzeria)


# ---------------------------------------------------------------------------
# Golden lowering
# ---------------------------------------------------------------------------
def test_lowering_aggregate_chain(session):
    query = (
        session.query("R")
        .where("date", "=", "Friday")
        .group_by("customer")
        .agg("sum", "price", "revenue")
        .order_by("revenue", desc=True)
        .limit(3)
        .named("top")
        .to_query()
    )
    assert query == Query(
        relations=("R",),
        comparisons=(Comparison("date", "=", "Friday"),),
        group_by=("customer",),
        aggregates=(AggregateSpec("sum", "price", "revenue"),),
        order_by=(SortKey("revenue", descending=True),),
        limit=3,
        name="top",
    )


def test_lowering_spj_chain(session):
    query = (
        session.query("Orders", "Pizzas")
        .on("pizza", "item")
        .where("customer", "Mario")
        .select("customer", "item")
        .distinct()
        .order_by("customer", ("item", "desc"))
        .to_query()
    )
    assert query == Query(
        relations=("Orders", "Pizzas"),
        equalities=(Equality("pizza", "item"),),
        comparisons=(Comparison("customer", "=", "Mario"),),
        projection=("customer", "item"),
        order_by=(SortKey("customer"), SortKey("item", descending=True)),
        distinct=True,
    )


def test_lowering_having_and_conveniences(session):
    query = (
        session.query("R")
        .group_by("pizza")
        .sum("price", "total")
        .count("orders")
        .avg("price")
        .having("orders", ">", 1)
        .to_query()
    )
    assert query.aggregates == (
        AggregateSpec("sum", "price", "total"),
        AggregateSpec("count", None, "orders"),
        AggregateSpec("avg", "price", "avg(price)"),
    )
    assert query.having == (Having("orders", ">", 1),)


def test_builder_is_immutable(session):
    base = session.query("R").group_by("customer")
    summed = base.sum("price", "revenue")
    counted = base.count("n")
    # Forking the chain must not leak state between branches.
    assert base.to_query().aggregates == ()
    assert [s.alias for s in summed.to_query().aggregates] == ["revenue"]
    assert [s.alias for s in counted.to_query().aggregates] == ["n"]


def test_builder_to_sql_and_str(session):
    builder = session.query("R").group_by("customer").sum("price", "revenue")
    assert 'SUM(price) AS "revenue"' in builder.to_sql()
    assert "ϖ" in str(builder)


# ---------------------------------------------------------------------------
# Eager validation with good messages
# ---------------------------------------------------------------------------
def test_unknown_relation_suggests(session):
    with pytest.raises(QueryError, match="did you mean 'Orders'"):
        session.query("Orderz")


def test_unknown_attribute_suggests(session):
    with pytest.raises(QueryError, match="did you mean 'price'"):
        session.query("R").group_by("customer").sum("pice")


def test_unknown_attribute_lists_visible(session):
    with pytest.raises(QueryError, match="expose: customer, date, pizza"):
        session.query("Orders").where("price", ">", 3)


def test_unknown_function_suggests(session):
    with pytest.raises(QueryError, match="did you mean 'count'"):
        session.query("R").agg("cuont", "price")


def test_unknown_operator(session):
    with pytest.raises(QueryError, match="unknown comparison operator"):
        session.query("R").where("price", "~", 3)


def test_having_requires_aggregates(session):
    with pytest.raises(QueryError, match="requires at least one aggregate"):
        session.query("R").group_by("customer").having("customer", "=", "x")


def test_having_unknown_target(session):
    builder = session.query("R").group_by("customer").sum("price", "revenue")
    with pytest.raises(QueryError, match="did you mean 'revenue'"):
        builder.having("revenu", ">", 5)


def test_select_conflicts_with_aggregates(session):
    aggregated = session.query("R").group_by("customer").sum("price")
    with pytest.raises(QueryError, match="cannot be combined with aggregates"):
        aggregated.select("customer")
    selected = session.query("R").select("customer")
    with pytest.raises(QueryError, match="cannot be combined with select"):
        selected.sum("price")


def test_duplicate_alias(session):
    builder = session.query("R").group_by("customer").sum("price", "x")
    with pytest.raises(QueryError, match="duplicate aggregate alias"):
        builder.count("x")


def test_order_by_outside_output_schema(session):
    builder = session.query("R").group_by("customer").sum("price", "revenue")
    with pytest.raises(QueryError, match="not in the output schema"):
        builder.order_by("price")


def test_limit_validation(session):
    with pytest.raises(QueryError, match="must be non-negative"):
        session.query("R").limit(-1)
    with pytest.raises(QueryError, match="must be an integer"):
        session.query("R").limit(2.5)
    with pytest.raises(QueryError, match="must be an integer"):
        session.query("R").limit("ten")
    with pytest.raises(QueryError, match="must be an integer"):
        session.query("R").limit(True)


def test_empty_query_rejected(session):
    with pytest.raises(QueryError, match="at least one relation"):
        session.query()
