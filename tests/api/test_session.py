"""Session facade: cross-engine parity, Result contents, SQL entry."""

import pytest

from repro.api import Result, connect
from repro.database import Database
from repro.query import Query, aggregate
from repro.relational.relation import Relation

from tests.conftest import assert_same_relation

ENGINES = ("fdb", "fdb-factorised", "rdb", "rdb-hash", "sqlite")


@pytest.fixture()
def session(pizzeria):
    return connect(pizzeria)


@pytest.mark.parametrize("engine", ENGINES)
def test_aggregate_parity_over_pizzeria(session, engine):
    builder = (
        session.query("R")
        .group_by("customer")
        .sum("price", "revenue")
        .order_by("revenue", desc=True)
    )
    reference = builder.run()  # default engine: fdb
    other = builder.run(engine=engine)
    assert other == reference
    assert other.schema == ("customer", "revenue")


@pytest.mark.parametrize("engine", ENGINES)
def test_join_parity_over_base_relations(session, engine):
    builder = (
        session.query("Orders", "Pizzas", "Items")
        .group_by("customer")
        .sum("price", "spent")
        .count("lines")
    )
    assert builder.run(engine=engine) == builder.run(engine="rdb")


@pytest.mark.parametrize("engine", ("fdb", "rdb", "sqlite"))
def test_spj_parity(session, engine):
    builder = (
        session.query("R")
        .where("price", ">", 1)
        .select("customer", "item")
        .distinct()
    )
    assert_same_relation(
        builder.run(engine=engine).to_relation(),
        builder.run(engine="rdb").to_relation(),
    )


def test_result_plan_without_last_plan(session):
    """Result.plan comes from the execution, not engine state."""
    first = session.query("R").group_by("customer").sum("price", "a").run()
    second = session.query("R").group_by("pizza").count("b").run()
    assert first.plan is not None and second.plan is not None
    assert str(first.plan) != "" and first.plan is not second.plan
    # The earlier result keeps its own plan even after later queries.
    assert "sum(price)" in str(first.plan)
    assert first.explain() != second.explain()
    assert "γ" in first.explain()


def test_result_contents_flat(session):
    result = session.query("R").group_by("customer").sum("price", "r").run()
    assert isinstance(result, Result)
    assert result.factorised is None
    assert len(result) == len(result.rows) == 3
    assert result.first() in result.rows
    assert set(result.as_dicts()[0]) == {"customer", "r"}
    stats = result.stats
    assert stats.engine == "FDB" and stats.seconds >= 0 and stats.rows == 3
    assert stats.singletons is None
    assert "FDB" in repr(result) and "ms" in str(stats)


def test_result_contents_factorised(session):
    builder = session.query("R").group_by("customer").sum("price", "r")
    result = builder.run(engine="fdb-factorised")
    assert result.factorised is not None
    # Stats do not flatten: the row count stays unknown (None) until the
    # caller materialises, while the singleton count is always available.
    assert result.stats.rows is None
    assert result.stats.singletons == result.factorised.size()
    assert "singletons" in str(result.stats)
    assert sorted(result) == sorted(builder.run().rows)
    assert result == builder.run()
    assert result.stats.rows == 3  # now materialised


def test_sql_entry_point(session):
    text = (
        "SELECT customer, SUM(price) AS revenue FROM R "
        "GROUP BY customer ORDER BY revenue DESC"
    )
    fdb = session.sql(text)
    sqlite = session.sql(text, engine="sqlite")
    assert fdb == sqlite
    assert fdb.rows[0][1] >= fdb.rows[-1][1]


def test_execute_accepts_query_builder_and_text(session):
    query = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
    )
    from_ast = session.execute(query)
    from_text = session.execute(
        "SELECT customer, SUM(price) AS revenue FROM R GROUP BY customer"
    )
    from_builder = session.execute(
        session.query("R").group_by("customer").sum("price", "revenue")
    )
    assert from_ast == from_text == from_builder
    with pytest.raises(TypeError, match="expected a QueryBuilder"):
        session.execute(42)


def test_execute_sql_helper(pizzeria):
    from repro.sql import execute_sql

    result = execute_sql(
        "SELECT customer, SUM(price) AS revenue FROM R GROUP BY customer",
        pizzeria,
        engine="sqlite",
    )
    assert result.engine == "SQLite" and len(result) == 3


def test_session_explain(session):
    builder = session.query("R").group_by("customer").sum("price", "revenue")
    assert "γ" in builder.explain()
    assert "sqlite query plan" in builder.explain(engine="sqlite")
    assert "RDB pipeline" in session.explain(builder, engine="rdb")


def test_connect_sources():
    relation = Relation(("a", "b"), [(1, 10), (2, 20)], "T")
    assert connect(relation).names() == ["T"]
    assert connect([relation]).names() == ["T"]
    assert connect(Database([relation])).names() == ["T"]
    empty = connect()
    assert empty.names() == []
    empty.add_relation(relation)
    assert empty.query("T").count("n").run().rows == [(2,)]


def test_use_and_with_engine(session):
    session.use("rdb")
    assert session.query("R").count("n").run().engine == "RDB-sort"
    forked = session.with_engine("sqlite")
    assert forked.query("R").count("n").run().engine == "SQLite"
    # the original keeps its own default
    assert session.query("R").count("n").run().engine == "RDB-sort"


def test_engine_instances_are_prepared_once(session):
    from repro.api import Engine, EngineRun

    prepared = []

    class Probe(Engine):
        name = "probe"

        def prepare(self, database):
            prepared.append(database)

        def run(self, query, database):
            return EngineRun(relation=Relation(("n",), [(0,)]))

    probe = Probe()
    session.query("R").count("n").run(engine=probe)
    session.query("R").count("n").run(engine=probe)
    assert prepared == [session.database]  # prepared exactly once
    # Engine options only make sense alongside registry names.
    with pytest.raises(ValueError, match="registry names"):
        connect(session.database, engine=probe, optimizer="exhaustive") \
            .query("R").count("n").run()


def test_instance_engine_sees_catalogue_changes(session):
    from repro.api import create_engine

    backend = create_engine("sqlite")
    assert session.query("R").count("n").run(engine=backend).rows == [(13,)]
    session.add_relation(Relation(("c", "d"), [(2, 20)], "S"))
    # Re-prepare must actually reload, despite the same Database object.
    result = session.sql("SELECT c, SUM(d) AS t FROM S GROUP BY c", engine=backend)
    assert result.rows == [(2, 20)]


def test_engine_instances_are_cached_per_session(session):
    first = session._resolve("sqlite")
    second = session._resolve("sqlite")
    assert first is second
    session.add_relation(Relation(("z",), [(1,)], "Z"))
    # The cached instance survives but re-prepares against the new
    # catalogue (the database version stamp flags it as stale).
    assert session.query("Z").count("n").run(engine="sqlite").rows == [(1,)]


# ---------------------------------------------------------------------------
# Stale-backend regression (PR 3): cached backends must observe mutations
# ---------------------------------------------------------------------------
def test_cached_sqlite_backend_observes_session_mutations(session):
    query = session.query("R").group_by("customer").sum("price", "rev")
    before = sorted(session.execute(query, engine="sqlite").rows)
    backend = session._resolve("sqlite")  # cached connection
    session.insert("Orders", [("Lucia", "Monday", "Margherita")])
    after = sorted(session.execute(query, engine="sqlite").rows)
    assert after != before
    # The connection was delta-forwarded, not rebuilt.
    assert session._resolve("sqlite") is backend
    assert after == sorted(session.execute(query, engine="fdb").rows)
    assert after == sorted(session.execute(query, engine="rdb").rows)


def test_cached_backend_observes_direct_database_mutation(session):
    query = session.query("Items").group_by("item").count("n")
    sorted(session.execute(query, engine="sqlite").rows)
    # Mutate behind the session's back: the version stamp still bumps.
    session.database.insert("Items", [("truffle", 9)])
    rows = dict(session.execute(query, engine="sqlite").rows)
    assert rows["truffle"] == 1


def test_every_engine_observes_mutations(session):
    query = session.query("R").group_by("pizza").sum("price", "total")
    for engine in ("fdb", "fdb-factorised", "rdb", "rdb-hash", "sqlite"):
        session.execute(query, engine=engine)  # warm the cache
    session.delete("Orders", [("Pietro", "Friday", "Hawaii")])
    reference = sorted(session.execute(query, engine="rdb").rows)
    for engine in ("fdb", "fdb-factorised", "rdb-hash", "sqlite"):
        assert sorted(session.execute(query, engine=engine).rows) == reference


def test_version_stamp_bumps_on_every_mutation_path(session):
    database = session.database
    v0 = database.version
    session.insert("Items", [("x1", 1)])
    v1 = database.version
    assert v1 > v0
    session.sql("DELETE FROM Items WHERE item = 'x1'")
    v2 = database.version
    assert v2 > v1
    database.insert("Items", [("x2", 2)])
    assert database.version > v2


def test_apply_report_surface(session):
    from repro import Delta

    report = session.apply(
        Delta.insert("Items", [("truffle", 9)])
        + Delta.delete("Items", rows=[("truffle", 9)])
    )
    assert report.inserted == 1 and report.deleted == 1
    assert "views maintained" in str(report)
