"""SQL INSERT/DELETE: lexing, parsing, lowering, generation, execution."""

import pytest

from repro import connect
from repro.data.pizzeria import pizzeria_database
from repro.ivm.delta import Delta, Deletion, Insertion
from repro.query import Comparison, Equality
from repro.sql import (
    SQLSyntaxError,
    change_to_sql,
    delta_to_sql,
    parse_sql,
    parse_statement,
    tokenize,
)
from repro.sql.parser import DeleteStatement, InsertStatement


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
def test_mutation_keywords_tokenise():
    kinds = [
        (token.kind, token.value)
        for token in tokenize("INSERT INTO t VALUES DELETE")
    ]
    assert ("KEYWORD", "INSERT") in kinds
    assert ("KEYWORD", "INTO") in kinds
    assert ("KEYWORD", "VALUES") in kinds
    assert ("KEYWORD", "DELETE") in kinds


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def test_parse_insert_values():
    statement = parse_sql(
        "INSERT INTO Orders VALUES ('Lucia', 'Monday', 'Margherita'), "
        "('Zoe', 'Friday', 'Hawaii');"
    )
    assert isinstance(statement, InsertStatement)
    assert statement.table == "Orders"
    assert statement.columns == []
    assert statement.rows == [
        ("Lucia", "Monday", "Margherita"),
        ("Zoe", "Friday", "Hawaii"),
    ]


def test_parse_insert_with_columns_and_numbers():
    statement = parse_sql(
        "INSERT INTO Items (item, price) VALUES ('truffle', 9), ('x', -2.5)"
    )
    assert statement.columns == ["item", "price"]
    assert statement.rows == [("truffle", 9), ("x", -2.5)]


def test_parse_delete_with_where():
    statement = parse_sql("DELETE FROM Items WHERE price > 5 AND item = 'base'")
    assert isinstance(statement, DeleteStatement)
    assert statement.table == "Items"
    assert len(statement.where) == 2


def test_parse_delete_without_where():
    statement = parse_sql("DELETE FROM Items")
    assert statement.where == []


def test_parse_select_still_routes():
    from repro.sql.parser import SelectStatement

    assert isinstance(parse_sql("SELECT * FROM R"), SelectStatement)


def test_parse_insert_rejects_non_literals():
    with pytest.raises(SQLSyntaxError, match="literal"):
        parse_sql("INSERT INTO t VALUES (a)")


def test_parse_insert_requires_values():
    with pytest.raises(SQLSyntaxError):
        parse_sql("INSERT INTO t (a, b)")


# ---------------------------------------------------------------------------
# Compiler lowering
# ---------------------------------------------------------------------------
def test_insert_lowers_to_delta():
    delta = parse_statement(
        "INSERT INTO Items (item, price) VALUES ('truffle', 9)"
    )
    assert isinstance(delta, Delta)
    (change,) = delta.changes
    assert isinstance(change, Insertion)
    assert change.relation == "Items"
    assert change.columns == ("item", "price")
    assert change.rows == (("truffle", 9),)


def test_delete_lowers_to_structured_predicate():
    delta = parse_statement(
        "DELETE FROM Orders WHERE price * 2 > 10 AND customer = date"
    )
    (change,) = delta.changes
    assert isinstance(change, Deletion)
    comparison, equality = change.predicate
    assert isinstance(comparison, Comparison) and comparison.op == ">"
    assert isinstance(equality, Equality)
    assert change.matches({"price": 6, "customer": "x", "date": "x"})
    assert not change.matches({"price": 6, "customer": "x", "date": "y"})


def test_select_lowers_to_query():
    from repro.query import Query

    assert isinstance(parse_statement("SELECT * FROM R"), Query)


# ---------------------------------------------------------------------------
# Generator round-trip
# ---------------------------------------------------------------------------
def test_insert_round_trip():
    original = Delta.insert(
        "Items", [("truffle", 9), ("o'brien", -2)], columns=("item", "price")
    )
    (change,) = original.changes
    sql = change_to_sql(change)
    assert sql == (
        "INSERT INTO Items (item, price) VALUES ('truffle', 9), "
        "('o''brien', -2)"
    )
    reparsed = parse_statement(sql)
    assert reparsed.changes == original.changes


def test_delete_round_trip():
    original = Delta.delete(
        "Items",
        where=(Comparison("price", ">", 5), Equality("item", "item")),
    )
    sql = change_to_sql(original.changes[0])
    assert sql == "DELETE FROM Items WHERE price > 5 AND item = item"
    reparsed = parse_statement(sql)
    assert reparsed.changes == original.changes


def test_delete_all_round_trip():
    original = Delta.delete("Items")
    sql = change_to_sql(original.changes[0])
    assert sql == "DELETE FROM Items"
    assert parse_statement(sql).changes == original.changes


def test_delta_to_sql_one_statement_per_change():
    delta = Delta.insert("A", [(1,)]) + Delta.delete("B")
    statements = delta_to_sql(delta)
    assert statements == ["INSERT INTO A VALUES (1)", "DELETE FROM B"]


def test_callable_predicate_not_renderable():
    with pytest.raises(ValueError, match="callable"):
        change_to_sql(Deletion("R", predicate=lambda b: True))


def test_row_deletion_not_renderable():
    with pytest.raises(ValueError, match="predicate deletion"):
        change_to_sql(Deletion("R", rows=((1,),)))


# ---------------------------------------------------------------------------
# End-to-end through the session
# ---------------------------------------------------------------------------
def test_sql_mutations_execute_and_maintain():
    session = connect(pizzeria_database())
    report = session.sql(
        "INSERT INTO Orders (customer, date, pizza) "
        "VALUES ('Lucia', 'Monday', 'Margherita')"
    )
    assert report.inserted == 1
    report = session.sql("DELETE FROM Items WHERE price > 5")
    assert report.deleted == 1  # base (6)
    reference = sorted(
        session.sql(
            "SELECT customer, SUM(price) AS rev FROM R GROUP BY customer",
            engine="rdb",
        ).rows
    )
    for engine in ("fdb", "sqlite"):
        got = sorted(
            session.sql(
                "SELECT customer, SUM(price) AS rev FROM R GROUP BY customer",
                engine=engine,
            ).rows
        )
        assert got == reference
    assert session.database.maintenance.rebuilds == 0
