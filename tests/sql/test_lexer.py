"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SQLSyntaxError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


def test_keywords_case_insensitive():
    assert values("select FROM Group") == ["SELECT", "FROM", "GROUP"]
    assert kinds("select")[:1] == ["KEYWORD"]


def test_identifiers_keep_case():
    tokens = tokenize("Orders customer_Id")
    assert tokens[0].kind == "IDENT" and tokens[0].value == "Orders"
    assert tokens[1].value == "customer_Id"


def test_numbers():
    tokens = tokenize("42 3.14 -7")
    assert [t.value for t in tokens[:-1]] == ["42", "3.14", "-7"]
    assert all(t.kind == "NUMBER" for t in tokens[:-1])


def test_strings_with_escapes():
    tokens = tokenize("'hello' 'it''s'")
    assert tokens[0].value == "hello"
    assert tokens[1].value == "it's"


def test_unterminated_string():
    with pytest.raises(SQLSyntaxError):
        tokenize("'oops")


def test_operators():
    assert values("a <= b >= c != d <> e = f < g > h") == [
        "a", "<=", "b", ">=", "c", "!=", "d", "<>", "e", "=", "f", "<",
        "g", ">", "h",
    ]


def test_punctuation():
    assert kinds("( ) , * .")[:-1] == ["LPAREN", "RPAREN", "COMMA", "STAR", "DOT"]


def test_quoted_identifier():
    tokens = tokenize('"Group"')
    assert tokens[0].kind == "IDENT" and tokens[0].value == "Group"


def test_unterminated_quoted_identifier():
    with pytest.raises(SQLSyntaxError):
        tokenize('"oops')


def test_unexpected_character():
    with pytest.raises(SQLSyntaxError):
        tokenize("a ; b")  # semicolons are stripped before tokenizing


def test_eof_token():
    assert tokenize("")[-1].kind == "EOF"


def test_positions_recorded():
    tokens = tokenize("a  bb")
    assert tokens[0].position == 0
    assert tokens[1].position == 3
