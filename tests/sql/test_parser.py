"""Unit tests for the SQL parser."""

import pytest

from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import ColumnRef, parse_select


def test_star_select():
    stmt = parse_select("SELECT * FROM R")
    assert stmt.star and stmt.tables == ["R"]


def test_column_list():
    stmt = parse_select("SELECT a, b FROM R")
    assert [item.column.name for item in stmt.items] == ["a", "b"]


def test_aggregates_with_alias():
    stmt = parse_select("SELECT SUM(price) AS total, COUNT(*) FROM R")
    assert stmt.items[0].aggregate == "sum"
    assert stmt.items[0].alias == "total"
    assert stmt.items[1].aggregate == "count"
    assert stmt.items[1].column is None


def test_non_count_star_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_select("SELECT SUM(*) FROM R")


def test_qualified_columns():
    stmt = parse_select("SELECT R.a FROM R WHERE R.a = S.b")
    assert stmt.items[0].column == ColumnRef("a", "R")
    condition = stmt.where[0]
    assert condition.right_is_column
    assert condition.right == ColumnRef("b", "S")


def test_from_comma_list():
    stmt = parse_select("SELECT * FROM R, S, T")
    assert stmt.tables == ["R", "S", "T"]


def test_join_syntax():
    stmt = parse_select(
        "SELECT * FROM R NATURAL JOIN S INNER JOIN T ON a = b"
    )
    assert stmt.tables == ["R", "S", "T"]
    assert len(stmt.where) == 1


def test_where_conjunction():
    stmt = parse_select("SELECT * FROM R WHERE a = 1 AND b < 'x' AND c != 2.5")
    assert len(stmt.where) == 3
    assert stmt.where[0].right == 1
    assert stmt.where[1].right == "x"
    assert stmt.where[2].right == 2.5


def test_diamond_not_equal():
    stmt = parse_select("SELECT * FROM R WHERE a <> 3")
    assert stmt.where[0].op == "!="


def test_group_by_and_having():
    stmt = parse_select(
        "SELECT a, SUM(v) AS s FROM R GROUP BY a HAVING s > 10 AND SUM(v) < 99"
    )
    assert [c.name for c in stmt.group_by] == ["a"]
    assert stmt.having[0].left.name == "s"
    assert stmt.having[1].left.name == "sum(v)"


def test_order_by_directions():
    stmt = parse_select("SELECT * FROM R ORDER BY a DESC, b ASC, c")
    assert [(o.column.name, o.descending) for o in stmt.order_by] == [
        ("a", True),
        ("b", False),
        ("c", False),
    ]


def test_limit():
    stmt = parse_select("SELECT * FROM R LIMIT 10")
    assert stmt.limit == 10


def test_distinct():
    assert parse_select("SELECT DISTINCT a FROM R").distinct


def test_trailing_semicolon_tolerated():
    assert parse_select("SELECT * FROM R;").tables == ["R"]


def test_missing_from_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_select("SELECT a")


def test_garbage_after_query_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_select("SELECT * FROM R extra")


def test_limit_requires_integer():
    with pytest.raises(SQLSyntaxError):
        parse_select("SELECT * FROM R LIMIT x")
