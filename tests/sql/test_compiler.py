"""Unit tests for SQL → Query compilation."""

import pytest

from repro.query import QueryError
from repro.sql import parse_query


def test_simple_aggregate_query():
    q = parse_query(
        "SELECT customer, SUM(price) AS revenue FROM R GROUP BY customer"
    )
    assert q.relations == ("R",)
    assert q.group_by == ("customer",)
    assert q.aggregates[0].alias == "revenue"
    assert q.aggregates[0].function == "sum"


def test_default_alias():
    q = parse_query("SELECT a, COUNT(*) FROM R GROUP BY a")
    assert q.aggregates[0].alias == "count(*)"


def test_projection_query():
    q = parse_query("SELECT a, b FROM R")
    assert q.projection == ("a", "b")
    assert not q.aggregates


def test_star_query():
    q = parse_query("SELECT * FROM R")
    assert q.projection is None


def test_where_split_into_equalities_and_comparisons():
    q = parse_query("SELECT * FROM R, S WHERE a = b AND c > 5")
    assert q.equalities[0].left == "a" and q.equalities[0].right == "b"
    assert q.comparisons[0].attribute == "c"


def test_group_by_order_preserved_from_select():
    q = parse_query("SELECT b, a, COUNT(*) FROM R GROUP BY a, b")
    assert q.group_by == ("b", "a")  # SELECT order wins for output


def test_group_by_mismatch_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT a, c, COUNT(*) FROM R GROUP BY a")


def test_having_and_order_and_limit():
    q = parse_query(
        "SELECT a, SUM(v) AS s FROM R GROUP BY a HAVING s > 1 "
        "ORDER BY s DESC LIMIT 5"
    )
    assert q.having[0].target == "s"
    assert q.order_by[0].attribute == "s" and q.order_by[0].descending
    assert q.limit == 5


def test_having_without_aggregates_rejected():
    with pytest.raises(QueryError):
        parse_query("SELECT a FROM R HAVING a > 1")


def test_column_alias_becomes_computed_column():
    q = parse_query("SELECT a AS x FROM R")
    assert q.projection == ()
    assert len(q.computed) == 1
    assert q.computed[0].alias == "x"
    assert q.computed[0].source_attributes == ("a",)
    assert q.output_schema == ("x",)


def test_table_qualifiers_dropped():
    q = parse_query("SELECT R.a FROM R WHERE R.a = 1")
    assert q.projection == ("a",)
    assert q.comparisons[0].attribute == "a"


def test_distinct_flag():
    assert parse_query("SELECT DISTINCT a FROM R").distinct
