"""Golden round-trip tests: generator output re-parses equivalently.

For every query in the workload catalogue (Figure 3 plus the
expression workloads) and a battery of expression SQL forms, the
generated SQL must be a *fixed point* of the parse → compile →
generate cycle: re-parsing yields an equivalent ``SelectStatement``
whose regenerated SQL is byte-identical.
"""

import pytest

from repro.data.workloads import FULL_WORKLOAD
from repro.sql.compiler import compile_select
from repro.sql.generator import query_to_sql
from repro.sql.parser import parse_select


def assert_sql_fixed_point(sql: str) -> None:
    statement = parse_select(sql)
    recompiled = compile_select(statement)
    regenerated = query_to_sql(recompiled)
    assert regenerated == sql, (
        f"generated SQL is not a fixed point:\n  first : {sql}\n"
        f"  second: {regenerated}"
    )


@pytest.mark.parametrize("name", sorted(FULL_WORKLOAD))
def test_workload_catalogue_roundtrips(name):
    query = FULL_WORKLOAD[name].query
    sql = query_to_sql(query)
    assert_sql_fixed_point(sql)


@pytest.mark.parametrize("name", sorted(FULL_WORKLOAD))
def test_workload_catalogue_recompiles_equivalently(name):
    """The re-parsed statement also compiles back to the same shape."""
    query = FULL_WORKLOAD[name].query
    sql = query_to_sql(query)
    recompiled = compile_select(parse_select(sql))
    assert recompiled.output_schema == query.output_schema
    assert recompiled.group_by == query.group_by
    assert recompiled.order_by == query.order_by
    assert recompiled.limit == query.limit
    assert len(recompiled.aggregates) == len(query.aggregates)
    assert len(recompiled.computed) == len(query.computed)


EXPRESSION_FORMS = [
    "SELECT customer, SUM(price * qty) AS \"revenue\" FROM Orders GROUP BY customer",
    "SELECT SUM(price * price) AS \"sq\" FROM Orders",
    "SELECT SUM(1.0 * price / 4 + 1) AS \"x\" FROM Orders",
    "SELECT SUM(-price) AS \"neg\" FROM Orders",
    "SELECT SUM((a + b) * c) AS \"s\" FROM R",
    "SELECT AVG(price * 3 - 1) AS \"m\" FROM Orders GROUP BY customer",
    "SELECT MIN(a * b) AS \"lo\" FROM R GROUP BY k",
    "SELECT price * qty AS \"total\" FROM Orders",
    "SELECT customer, price - 2 AS \"discounted\" FROM Orders",
    "SELECT customer AS \"who\" FROM Orders",
    "SELECT customer FROM Orders WHERE price * qty > 100",
    "SELECT customer FROM Orders WHERE price * 2 <= 30 AND customer = 'Mario'",
    "SELECT COUNT(*) AS \"n\" FROM Orders WHERE -price < -5",
]


@pytest.mark.parametrize("sql", EXPRESSION_FORMS)
def test_expression_forms_roundtrip(sql):
    # Normalise once (the catalogue strings are hand-written), then the
    # generated form must be stable.
    first = query_to_sql(compile_select(parse_select(sql)))
    assert_sql_fixed_point(first)


def test_negative_literal_after_attribute_is_subtraction():
    statement = parse_select('SELECT a -2 AS "d" FROM R')
    query = compile_select(statement)
    assert query.computed[0].expression.evaluate({"a": 10}) == 8


def test_precedence_preserved_through_roundtrip():
    sql = query_to_sql(
        compile_select(parse_select('SELECT (a + b) * c AS "x" FROM R'))
    )
    query = compile_select(parse_select(sql))
    value = query.computed[0].expression.evaluate({"a": 1, "b": 2, "c": 10})
    assert value == 30
