"""Round-trip tests: Query → SQL → sqlite3 agrees with our engines."""

import sqlite3

import pytest

from repro.query import Query, aggregate, Having, Comparison
from repro.relational.engine import RDBEngine
from repro.sql import parse_query, query_to_sql
from repro.sql.generator import eager_query_to_sql


@pytest.fixture()
def connection(pizzeria):
    con = sqlite3.connect(":memory:")
    for name in ("Orders", "Pizzas", "Items"):
        relation = pizzeria.flat(name)
        cols = ", ".join(relation.schema)
        con.execute(f"CREATE TABLE {name} ({cols})")
        marks = ",".join("?" * len(relation.schema))
        con.executemany(f"INSERT INTO {name} VALUES ({marks})", relation.rows)
    return con


def run_sqlite(connection, sql):
    return sorted(tuple(r) for r in connection.execute(sql).fetchall())


def run_rdb(query, pizzeria):
    return sorted(RDBEngine().execute(query, pizzeria).rows)


QUERIES = [
    "SELECT customer, SUM(price) AS revenue FROM Orders, Pizzas, Items GROUP BY customer",
    "SELECT pizza, COUNT(*) AS n FROM Orders, Pizzas, Items GROUP BY pizza HAVING n > 3",
    "SELECT customer, MIN(price) AS lo, MAX(price) AS hi FROM Orders, Pizzas, Items GROUP BY customer",
    "SELECT pizza, AVG(price) AS m FROM Pizzas, Items GROUP BY pizza ORDER BY m DESC",
    "SELECT customer FROM Orders WHERE pizza = 'Hawaii'",
    "SELECT SUM(price) AS total FROM Orders, Pizzas, Items",
]


@pytest.mark.parametrize("text", QUERIES)
def test_roundtrip_sqlite_agrees(text, pizzeria, connection):
    query = parse_query(text)
    ours = run_rdb(query, pizzeria)
    theirs = run_sqlite(connection, query_to_sql(query))
    # Floats from AVG may differ in representation, not value.
    assert len(ours) == len(theirs)
    for left, right in zip(ours, theirs):
        assert left == pytest.approx(right) if any(
            isinstance(v, float) for v in left
        ) else left == right


def test_generated_sql_quotes_strings():
    q = Query(
        relations=("Orders",),
        comparisons=(Comparison("customer", "=", "O'Hara"),),
    )
    sql = query_to_sql(q)
    assert "'O''Hara'" in sql


def test_generated_sql_orders_and_limits():
    q = parse_query(
        "SELECT customer, SUM(price) AS r FROM Orders, Pizzas, Items "
        "GROUP BY customer ORDER BY r DESC LIMIT 2"
    )
    sql = query_to_sql(q)
    assert 'ORDER BY "r" DESC' in sql and "LIMIT 2" in sql


@pytest.mark.parametrize(
    "text",
    [
        "SELECT customer, SUM(price) AS revenue FROM Orders, Pizzas, Items GROUP BY customer",
        "SELECT pizza, COUNT(*) AS n, AVG(price) AS m FROM Orders, Pizzas, Items GROUP BY pizza",
        "SELECT customer, MIN(price) AS lo FROM Orders, Pizzas, Items GROUP BY customer",
    ],
)
def test_eager_sql_agrees_with_lazy(text, pizzeria, connection):
    query = parse_query(text)
    lazy = run_sqlite(connection, query_to_sql(query))
    eager = run_sqlite(connection, eager_query_to_sql(query, pizzeria))
    assert len(lazy) == len(eager)
    for left, right in zip(lazy, eager):
        for lv, rv in zip(left, right):
            assert lv == pytest.approx(rv)
