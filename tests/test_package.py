"""Package-level exports: lazy attributes, __dir__, star import."""

import importlib


def test_lazy_engine_attributes():
    import repro

    assert repro.FDBEngine().name == "FDB"
    assert repro.RDBEngine().name == "RDB"


def test_dir_includes_lazy_names():
    import repro

    names = dir(repro)
    for expected in ("FDBEngine", "RDBEngine", "connect", "Session",
                     "QueryBuilder", "Result", "register_engine"):
        assert expected in names, expected


def test_star_import_covers_all():
    namespace = {}
    exec("from repro import *", namespace)
    import repro

    for name in repro.__all__:
        if name.startswith("__"):
            continue
        assert name in namespace, name


def test_all_names_resolve():
    repro = importlib.import_module("repro")
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_unknown_attribute_raises():
    import pytest
    import repro

    with pytest.raises(AttributeError, match="no attribute"):
        repro.not_a_real_name


def test_session_api_reexports_match():
    import repro
    from repro.api import Session, connect

    assert repro.connect is connect
    assert repro.Session is Session
