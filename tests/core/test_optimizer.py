"""Unit tests for the greedy heuristic and exhaustive plan search."""

import pytest

from repro.core.build import factorise, factorise_path
from repro.core.cost import Hypergraph, s_parameter
from repro.core.engine import expand_functions
from repro.core.fplan import AggregateStep, MergeStep, SwapStep
from repro.core.optimizer import (
    ExhaustiveOptimizer,
    GreedyOptimizer,
    PlanContext,
)
from repro.data.workloads import WORKLOAD, section6_ftree
from repro.query import Equality
from repro.relational.operators import multiway_join


HYPERGRAPH = Hypergraph(
    {
        "Orders": ("customer", "date", "package"),
        "Packages": ("package", "item"),
        "Items": ("item", "price"),
    }
)


def _context(query, order_included=True):
    aliases = {s.alias for s in query.aggregates}
    return PlanContext(
        hypergraph=HYPERGRAPH,
        kept=frozenset(query.group_by),
        functions=expand_functions(query.aggregates),
        order=tuple(
            k for k in query.order_by if k.attribute not in aliases
        )
        if order_included
        else (),
    )


def test_greedy_q2_structure():
    """The Q2 plan mirrors Example 1: partial γ, swaps, final γ."""
    plan = GreedyOptimizer().plan(section6_ftree(), _context(WORKLOAD["Q2"].query))
    kinds = [type(step).__name__ for step in plan]
    assert kinds.count("AggregateStep") >= 2  # partial + final aggregation
    assert "SwapStep" in kinds  # customer pushed to the root
    # First step: the item subtree is aggregated before restructuring.
    assert isinstance(plan.steps[0], AggregateStep)


def test_greedy_q1_single_gamma():
    """Q1 keeps all of package/date/customer: one γ over items suffices."""
    plan = GreedyOptimizer().plan(section6_ftree(), _context(WORKLOAD["Q1"].query))
    assert len(plan) == 1
    assert isinstance(plan.steps[0], AggregateStep)


def test_greedy_q5_whole_tree():
    plan = GreedyOptimizer().plan(section6_ftree(), _context(WORKLOAD["Q5"].query))
    assert len(plan) == 1
    step = plan.steps[0]
    assert step.parent is None  # aggregates the roots away entirely


def test_greedy_plans_executable(pizzeria_rels, t1):
    joined = multiway_join(list(pizzeria_rels))
    fact = factorise(joined, t1)
    hypergraph = Hypergraph(
        {
            "Orders": ("customer", "date", "pizza"),
            "Pizzas": ("pizza", "item"),
            "Items": ("item", "price"),
        }
    )
    ctx = PlanContext(
        hypergraph=hypergraph,
        kept=frozenset({"customer"}),
        functions=(("sum", "price"),),
    )
    plan = GreedyOptimizer().plan(fact.ftree, ctx)
    result = plan.execute(fact)
    result.validate()
    # Everything but customer is aggregated.
    atomic = {
        a
        for node in result.ftree.nodes()
        if node.aggregate is None
        for a in node.attributes
    }
    assert atomic == {"customer"}


def test_greedy_selections_first():
    """Pending equalities block aggregation of their subtrees (Prop. 3)."""
    from repro.core.ftree import build_ftree

    tree = build_ftree(
        ["a", "b"],
        keys={"a": {"R"}, "b": {"S"}},
    )
    ctx = PlanContext(
        hypergraph=Hypergraph({"R": ("a",), "S": ("b",)}),
        equalities=(Equality("a", "b"),),
        kept=frozenset(),
        functions=(("count", None),),
    )
    plan = GreedyOptimizer().plan(tree, ctx)
    kinds = [type(step).__name__ for step in plan]
    assert kinds[0] == "MergeStep"  # selection before any γ
    assert "AggregateStep" in kinds


def test_greedy_order_restructuring():
    """Step 5: Q12's order induces exactly one swap (Experiment 4)."""
    ctx = PlanContext(
        hypergraph=HYPERGRAPH,
        kept=frozenset({"package", "date", "item", "customer", "price"}),
        functions=(),
        order=tuple(WORKLOAD["Q12"].query.order_by),
    )
    plan = GreedyOptimizer().plan(section6_ftree(), ctx)
    assert [s for s in plan] == [SwapStep("date")]


def test_greedy_no_order_work_for_q11():
    ctx = PlanContext(
        hypergraph=HYPERGRAPH,
        kept=frozenset({"package", "date", "item", "customer", "price"}),
        functions=(),
        order=tuple(WORKLOAD["Q11"].query.order_by),
    )
    plan = GreedyOptimizer().plan(section6_ftree(), ctx)
    assert len(plan) == 0


def test_exhaustive_matches_greedy_exponent():
    """The paper: greedy is optimal for the workload (asymptotic metric)."""
    for name in ("Q1", "Q2", "Q3", "Q4", "Q5"):
        ctx = _context(WORKLOAD[name].query)
        tree = section6_ftree()
        greedy = GreedyOptimizer().plan(tree, ctx)
        exhaustive = ExhaustiveOptimizer().plan(tree, ctx)
        g_exp = max(
            (s_parameter(t, HYPERGRAPH) for t in greedy.simulate(tree)[1:]),
            default=0.0,
        )
        e_exp = max(
            (s_parameter(t, HYPERGRAPH) for t in exhaustive.simulate(tree)[1:]),
            default=0.0,
        )
        assert g_exp <= e_exp + 1e-9, name


def test_exhaustive_small_join_plan():
    from repro.core.ftree import build_ftree

    tree = build_ftree(
        ["a", "b"],
        keys={"a": {"R"}, "b": {"S"}},
    )
    ctx = PlanContext(
        hypergraph=Hypergraph({"R": ("a",), "S": ("b",)}),
        equalities=(Equality("a", "b"),),
    )
    plan = ExhaustiveOptimizer().plan(tree, ctx)
    assert any(isinstance(step, MergeStep) for step in plan)


def test_exhaustive_falls_back_when_capped():
    ctx = _context(WORKLOAD["Q2"].query)
    tight = ExhaustiveOptimizer(max_states=1)
    plan = tight.plan(section6_ftree(), ctx)  # falls back to greedy
    greedy = GreedyOptimizer().plan(section6_ftree(), ctx)

    def shape(steps):
        # Aggregate names are freshly minted, so compare shapes only.
        return [
            (type(s).__name__, getattr(s, "child", None), getattr(s, "children", None))
            for s in steps
        ]

    assert shape(plan) == shape(greedy)


def test_push_costing_prefers_cheap_side():
    """Step 3 compares pushing either side by the size-bound metric."""
    from repro.core.ftree import build_ftree

    # R(a, x) as path a→x and S(b) single: equate x = b.
    tree = build_ftree(
        [("a", ["x"]), "b"],
        keys={"a": {"R"}, "x": {"R"}, "b": {"S"}},
    )
    ctx = PlanContext(
        hypergraph=Hypergraph({"R": ("a", "x"), "S": ("b",)}),
        equalities=(Equality("x", "b"),),
    )
    plan = GreedyOptimizer().plan(tree, ctx)
    result_kinds = [type(s).__name__ for s in plan]
    assert result_kinds[-1] in ("MergeStep", "AbsorbStep")
