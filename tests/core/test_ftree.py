"""Unit tests for f-trees, dependency keys and the path constraint."""

import pytest

from repro.core.ftree import (
    AggregateAttribute,
    FNode,
    FTree,
    FTreeError,
    build_ftree,
    fresh_aggregate_name,
    path_ftree,
)


@pytest.fixture()
def tree():
    # a → (b → d, c) with keys making b,d dependent and c independent
    return build_ftree(
        [("a", [("b", ["d"]), "c"])],
        keys={"a": {"r", "s"}, "b": {"r"}, "d": {"r"}, "c": {"s"}},
    )


def test_node_lookup(tree):
    assert tree.node("a").name == "a"
    assert tree.node("d").attributes == ("d",)
    with pytest.raises(FTreeError):
        tree.node("zzz")


def test_contains(tree):
    assert "b" in tree
    assert "zzz" not in tree


def test_parent_and_ancestors(tree):
    d = tree.node("d")
    assert tree.parent(d).name == "b"
    assert [n.name for n in tree.ancestors(d)] == ["b", "a"]
    assert tree.parent(tree.node("a")) is None


def test_depth(tree):
    assert tree.depth(tree.node("a")) == 0
    assert tree.depth(tree.node("d")) == 2


def test_is_ancestor(tree):
    assert tree.is_ancestor(tree.node("a"), tree.node("d"))
    assert not tree.is_ancestor(tree.node("c"), tree.node("d"))


def test_on_same_path(tree):
    assert tree.on_same_path(tree.node("a"), tree.node("d"))
    assert not tree.on_same_path(tree.node("c"), tree.node("d"))
    assert tree.on_same_path(tree.node("b"), tree.node("b"))


def test_path_to(tree):
    assert tree.path_to("a") == (0, ())
    assert tree.path_to("d") == (0, (0, 0))
    assert tree.path_to("c") == (0, (1,))


def test_preorder_names(tree):
    assert tree.attribute_names() == ["a", "b", "d", "c"]


def test_atomic_attributes(tree):
    assert tree.atomic_attributes() == {"a", "b", "c", "d"}


def test_duplicate_attribute_rejected():
    with pytest.raises(FTreeError):
        FTree([FNode(("a",)), FNode(("a",))])


def test_equivalence_class_node():
    node = FNode(("a", "b"), keys={"r"})
    tree = FTree([node])
    assert tree.node("a") is tree.node("b")
    assert node.all_names == ("a", "b")


def test_path_constraint_holds(tree):
    assert tree.satisfies_path_constraint()


def test_path_constraint_violated():
    # b and c dependent (share key r) but on different branches.
    bad = build_ftree(
        [("a", ["b", "c"])],
        keys={"a": {"r"}, "b": {"r"}, "c": {"r"}},
    )
    assert not bad.satisfies_path_constraint()
    with pytest.raises(Exception):
        bad.check_path_constraint()


def test_replace_node_shares_untouched_subtrees(tree):
    c_before = tree.node("c")
    replaced = tree.replace_node("d", lambda node: [])
    assert "d" not in replaced
    assert replaced.node("c") is c_before  # sibling branch shared


def test_replace_node_with_multiple(tree):
    replaced = tree.replace_node(
        "b", lambda node: [FNode(("x",)), FNode(("y",))]
    )
    assert replaced.attribute_names() == ["a", "x", "y", "c"]


def test_map_nodes_rebuilds_keys(tree):
    mapped = tree.map_nodes(lambda n: n.with_keys(n.keys | {"extra"}))
    assert all("extra" in n.keys for n in mapped.nodes())
    # original untouched
    assert all("extra" not in n.keys for n in tree.nodes())


def test_path_ftree():
    tree = path_ftree(("x", "y", "z"), "R")
    assert tree.attribute_names() == ["x", "y", "z"]
    assert tree.depth(tree.node("z")) == 2
    assert tree.satisfies_path_constraint()


def test_path_ftree_custom_order():
    tree = path_ftree(("x", "y"), "R", order=("y", "x"))
    assert tree.attribute_names() == ["y", "x"]


def test_path_ftree_order_must_cover():
    with pytest.raises(FTreeError):
        path_ftree(("x", "y"), "R", order=("x",))


def test_aggregate_attribute_components():
    agg = AggregateAttribute(
        (("sum", "p"), ("count", None)), frozenset({"p", "i"}), "node"
    )
    assert agg.sum_component("p") == 0
    assert agg.count_component == 1
    assert agg.component("min", "p") is None
    assert agg.covers("i") and not agg.covers("q")


def test_aggregate_attribute_needs_function():
    with pytest.raises(FTreeError):
        AggregateAttribute((), frozenset(), "x")


def test_aggregate_node_identity():
    agg = AggregateAttribute((("count", None),), frozenset({"x"}), "n1")
    node = FNode(agg)
    assert node.is_aggregate
    assert node.name == "n1"
    with pytest.raises(FTreeError):
        node.with_attributes(("y",))


def test_fresh_names_unique():
    assert fresh_aggregate_name() != fresh_aggregate_name()


def test_pretty_renders_structure(tree):
    text = tree.pretty()
    assert text.splitlines()[0] == "a"
    assert "  b" in text and "    d" in text


def test_subtree_helpers(tree):
    b = tree.node("b")
    assert b.subtree_names() == {"b", "d"}
    assert b.subtree_atomic_attributes() == {"b", "d"}
    assert b.subtree_keys() == frozenset({"r"})


def test_forest_with_multiple_roots():
    forest = build_ftree(["a", ("b", ["c"])], keys={"a": {"r"}, "b": {"s"}, "c": {"s"}})
    assert len(forest.roots) == 2
    assert forest.path_to("c") == (1, (0,))
