"""Round-trip tests for factorisation serialisation."""

import pytest

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.io import (
    SerialisationError,
    dumps,
    factorisation_from_dict,
    factorisation_to_dict,
    ftree_from_dict,
    ftree_to_dict,
    load_view,
    loads,
    save_view,
)
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation


@pytest.fixture()
def pizza_fact(pizzeria_rels, t1):
    return factorise(multiway_join(list(pizzeria_rels)), t1)


def test_ftree_roundtrip(t1):
    document = ftree_to_dict(t1)
    restored = ftree_from_dict(document)
    assert restored.pretty() == t1.pretty()
    assert restored.node("pizza").keys == t1.node("pizza").keys


def test_ftree_with_aggregate_roundtrip(pizza_fact):
    aggregated = ops.apply_aggregation(
        pizza_fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    restored = ftree_from_dict(ftree_to_dict(aggregated.ftree))
    node = restored.node("sp")
    assert node.is_aggregate
    assert node.aggregate.functions == (("sum", "price"),)
    assert node.aggregate.over == frozenset({"item", "price"})


def test_factorisation_roundtrip(pizza_fact):
    restored = loads(dumps(pizza_fact))
    assert restored.size() == pizza_fact.size()
    assert restored.to_relation() == pizza_fact.to_relation()


def test_roundtrip_with_aggregate_values(pizza_fact):
    aggregated = ops.apply_aggregation(
        pizza_fact, "pizza", ["item"], [("sum", "price"), ("count", None)], name="sp"
    )
    restored = loads(dumps(aggregated))
    assert list(restored.iter_tuples()) == list(aggregated.iter_tuples())


def test_file_roundtrip(tmp_path, pizza_fact):
    path = str(tmp_path / "view.fdb.json")
    save_view(pizza_fact, path)
    restored = load_view(path)
    assert restored.to_relation() == pizza_fact.to_relation()


def test_version_checked(pizza_fact):
    document = factorisation_to_dict(pizza_fact)
    document["version"] = 99
    with pytest.raises(SerialisationError):
        factorisation_from_dict(document)


def test_malformed_tree_rejected():
    with pytest.raises(SerialisationError):
        ftree_from_dict({"nope": []})


def test_loaded_view_is_queryable(tmp_path, pizzeria):
    from repro.core.engine import FDBEngine
    from repro.query import Query, aggregate

    path = str(tmp_path / "r.json")
    save_view(pizzeria.get_factorised("R"), path)
    restored = load_view(path)
    pizzeria.add_factorised("R2", restored)
    q = Query(
        relations=("R2",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    result = FDBEngine().execute(q, pizzeria)
    assert sorted(result.rows) == [("Lucia", 9), ("Mario", 22), ("Pietro", 9)]


def test_empty_factorisation_roundtrip():
    fact = factorise_path(Relation(("a", "b"), []), "R")
    restored = loads(dumps(fact))
    assert restored.is_empty() or restored.size() == 0
