"""Unit tests for the f-plan operators (swap, merge, absorb, γ, ...)."""

import pytest

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.frep import Factorisation
from repro.core.ftree import build_ftree
from repro.query import Comparison
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation


@pytest.fixture()
def pizza_fact(pizzeria_rels, t1):
    joined = multiway_join(list(pizzeria_rels))
    return factorise(joined, t1)


@pytest.fixture()
def pizza_relation(pizzeria_rels):
    return multiway_join(list(pizzeria_rels))


# ---------------------------------------------------------------------------
# swap χ
# ---------------------------------------------------------------------------
def test_swap_preserves_relation(pizza_fact, pizza_relation):
    swapped = ops.swap(pizza_fact, "date")
    swapped.validate()
    assert swapped.to_relation() == pizza_relation
    assert swapped.ftree.parent(swapped.ftree.node("pizza")).name == "date"


def test_swap_partitions_dependent_children(pizza_fact):
    # Swapping date above pizza: the item branch depends on pizza, so it
    # must stay below pizza (T_AB); date has no independent children.
    swapped = ops.swap(pizza_fact, "date")
    pizza_node = swapped.ftree.node("pizza")
    assert {c.name for c in pizza_node.children} == {"customer", "item"}


def test_swap_keeps_sorted_invariant(pizza_fact):
    swapped = ops.swap(pizza_fact, "date")
    dates = [e.value for e in swapped.roots[0]]
    assert dates == sorted(dates)
    swapped.validate()


def test_swap_root_rejected(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.swap(pizza_fact, "pizza")


def test_swap_twice_restores_structure(pizza_fact, pizza_relation):
    once = ops.swap(pizza_fact, "date")
    twice = ops.swap(once, "pizza")
    twice.validate()
    assert twice.to_relation() == pizza_relation
    assert twice.ftree.node("pizza") is twice.ftree.roots[0]


def test_swap_example2_right_branch_untouched(pizza_fact):
    """Example 2: pushing customer up need not change the item branch."""
    up1 = ops.swap(pizza_fact, "customer")  # above date
    up2 = ops.swap(up1, "customer")  # above pizza
    up2.validate()
    # The item→price fragments are shared with the input (same objects),
    # i.e. the right branch of T1 was not rebuilt.
    original_items = {
        entry.value: entry.children[1] for entry in pizza_fact.roots[0]
    }
    pizza_node = up2.ftree.node("pizza")
    item_slot = [c.name for c in pizza_node.children].index("item")
    shared = 0
    for customer_entry in up2.roots[0]:
        for pizza_entry in customer_entry.children[-1]:
            if pizza_entry.children[item_slot] is original_items[pizza_entry.value]:
                shared += 1
    assert shared >= 3  # every pizza occurrence reuses its fragment


def test_swap_deep_node(pizza_fact, pizza_relation):
    swapped = ops.swap(pizza_fact, "customer")  # deep: child of date
    swapped.validate()
    assert swapped.to_relation() == pizza_relation


def test_strict_swap_checks(pizza_fact):
    ops.STRICT_SWAP_CHECKS = True
    try:
        swapped = ops.swap(pizza_fact, "date")
        swapped.validate()
    finally:
        ops.STRICT_SWAP_CHECKS = False


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------
def test_merge_roots():
    r = Relation(("a",), [(1,), (2,), (3,)], "R")
    s = Relation(("b",), [(2,), (3,), (4,)], "S")
    fact = ops.product(factorise_path(r, "R"), factorise_path(s, "S"))
    merged = ops.merge_siblings(fact, "a", "b")
    merged.validate()
    assert sorted(merged.iter_tuples()) == [(2, 2), (3, 3)]
    node = merged.ftree.node("a")
    assert set(node.attributes) == {"a", "b"}


def test_merge_computes_join():
    r = Relation(("a", "x"), [(1, 10), (2, 20), (2, 21)], "R")
    s = Relation(("b", "y"), [(2, 5), (3, 6)], "S")
    fact = ops.product(
        factorise_path(r, "R"), factorise_path(s, "S")
    )
    merged = ops.merge_siblings(fact, "a", "b")
    # Merged class (a, b) emits the shared value for both attributes.
    assert merged.schema() == ["a", "b", "x", "y"]
    assert sorted(merged.iter_tuples()) == [(2, 2, 20, 5), (2, 2, 21, 5)]


def test_merge_non_siblings_rejected(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.merge_siblings(pizza_fact, "pizza", "customer")


def test_merge_under_common_parent():
    # tree: a → (b, c); select b = c.
    relation = Relation(
        ("a", "b", "c"),
        [(1, 5, 5), (1, 5, 6), (1, 6, 6), (2, 7, 7)],
    )
    tree = build_ftree(
        [("a", ["b", "c"])],
        keys={"a": {"r", "s"}, "b": {"r"}, "c": {"s"}},
    )
    # This relation does not factor exactly over the tree, but the merge
    # result must equal the selection over the tree's relation.
    fact = factorise(relation, tree)
    merged = ops.merge_siblings(fact, "b", "c")
    merged.validate()
    expected = sorted(
        (a, b, b)
        for a, b in {(1, 5), (1, 6), (2, 7)}
    )
    assert sorted(merged.iter_tuples()) == expected


def test_merge_prunes_empty_contexts():
    relation = Relation(("a", "b", "c"), [(1, 5, 6), (2, 7, 7)])
    tree = build_ftree(
        [("a", ["b", "c"])],
        keys={"a": {"r", "s"}, "b": {"r"}, "c": {"s"}},
    )
    fact = factorise(relation, tree)
    merged = ops.merge_siblings(fact, "b", "c")
    # a=1 has no b=c match and must disappear entirely.
    assert sorted(merged.iter_tuples()) == [(2, 7, 7)]


# ---------------------------------------------------------------------------
# absorb
# ---------------------------------------------------------------------------
def test_absorb_descendant():
    relation = Relation(("a", "b"), [(1, 1), (1, 2), (2, 2), (3, 1)])
    fact = factorise_path(relation, "R")  # a → b
    absorbed = ops.absorb(fact, "a", "b")
    absorbed.validate()
    assert sorted(absorbed.iter_tuples()) == [(1, 1), (2, 2)]
    node = absorbed.ftree.node("a")
    assert set(node.attributes) == {"a", "b"}
    assert not node.children


def test_absorb_deep_descendant():
    relation = Relation(
        ("a", "m", "b"), [(1, 9, 1), (1, 9, 2), (2, 8, 2), (3, 7, 9)]
    )
    fact = factorise_path(relation, "R")  # a → m → b
    absorbed = ops.absorb(fact, "a", "b")
    absorbed.validate()
    # b joins a's class, so the schema becomes (a, b, m).
    assert absorbed.schema() == ["a", "b", "m"]
    assert sorted(absorbed.iter_tuples()) == [(1, 1, 9), (2, 2, 8)]
    # b's children (none) hoisted; m keeps its place under the merged node.
    assert absorbed.ftree.node("m").name == "m"


def test_absorb_requires_ancestry(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.absorb(pizza_fact, "customer", "item")


def test_absorb_hoists_children():
    relation = Relation(
        ("a", "b", "c"), [(1, 1, 5), (2, 2, 6), (2, 3, 7)]
    )
    fact = factorise_path(relation, "R")  # a → b → c
    absorbed = ops.absorb(fact, "a", "b")
    absorbed.validate()
    assert sorted(absorbed.iter_tuples()) == [(1, 1, 5), (2, 2, 6)]
    merged = absorbed.ftree.node("a")
    assert [c.name for c in merged.children] == ["c"]


# ---------------------------------------------------------------------------
# constant selection
# ---------------------------------------------------------------------------
def test_select_constant(pizza_fact):
    selected = ops.select_constant(pizza_fact, Comparison("price", "<=", 2))
    selected.validate()
    expected = {
        row for row in pizza_fact.iter_tuples() if row[4] <= 2
    }
    assert set(selected.iter_tuples()) == expected


def test_select_constant_prunes_upward(pizza_fact):
    selected = ops.select_constant(
        pizza_fact, Comparison("customer", "=", "Lucia")
    )
    # Only Hawaii remains at the root.
    assert [e.value for e in selected.roots[0]] == ["Hawaii"]


def test_select_constant_to_empty(pizza_fact):
    selected = ops.select_constant(
        pizza_fact, Comparison("customer", "=", "Nobody")
    )
    assert selected.is_empty()
    assert list(selected.iter_tuples()) == []


# ---------------------------------------------------------------------------
# projection operators
# ---------------------------------------------------------------------------
def test_remove_leaf(pizza_fact, pizza_relation):
    removed = ops.remove_leaf(pizza_fact, "price")
    removed.validate()
    assert removed.to_relation() == pizza_relation.project(
        ["customer", "date", "pizza", "item"]
    )


def test_remove_leaf_requires_leaf(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.remove_leaf(pizza_fact, "date")


def test_remove_leaf_mints_dependency(pizza_fact):
    # Removing price leaves item dependent on the Items relation only;
    # no two remaining dependents, so no fresh key is needed. Removing
    # customer after date (below) exercises the fresh-key path instead.
    removed = ops.remove_leaf(pizza_fact, "customer")
    removed.validate()
    assert "customer" not in removed.ftree


def test_remove_last_node_rejected():
    fact = factorise_path(Relation(("x",), [(1,)]), "R")
    with pytest.raises(ops.OperatorError):
        ops.remove_leaf(fact, "x")


def test_remove_class_attribute():
    tree = build_ftree([(("a", "b"), ["c"])], keys={"a": {"r"}, "c": {"r"}})
    fact = factorise(
        Relation(("a", "b", "c"), [(1, 1, 5), (2, 2, 6)]), tree
    )
    dropped = ops.remove_class_attribute(fact, "b")
    assert dropped.schema() == ["a", "c"]
    assert sorted(dropped.iter_tuples()) == [(1, 5), (2, 6)]


def test_remove_class_attribute_requires_class(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.remove_class_attribute(pizza_fact, "price")


# ---------------------------------------------------------------------------
# rename and product
# ---------------------------------------------------------------------------
def test_rename(pizza_fact):
    renamed = ops.rename(pizza_fact, "price", "cost")
    assert "cost" in renamed.ftree and "price" not in renamed.ftree
    # Constant time: fragments are shared, not copied.
    assert renamed.roots is pizza_fact.roots


def test_rename_conflict(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.rename(pizza_fact, "price", "item")


def test_product_disjoint_forests():
    left = factorise_path(Relation(("a",), [(1,)]), "L")
    right = factorise_path(Relation(("b",), [(2,)]), "R")
    combined = ops.product(left, right)
    assert list(combined.iter_tuples()) == [(1, 2)]


# ---------------------------------------------------------------------------
# nesting (linearisation support)
# ---------------------------------------------------------------------------
def test_nest_under_preserves_relation(pizza_fact, pizza_relation):
    nested = ops.nest_under(pizza_fact, "item", "date")
    nested.validate()
    assert nested.to_relation() == pizza_relation
    date = nested.ftree.node("date")
    assert {c.name for c in date.children} == {"customer", "item"}


def test_nest_under_requires_siblings(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.nest_under(pizza_fact, "customer", "item")


def test_nest_root_under():
    left = factorise_path(Relation(("a",), [(1,), (2,)]), "L")
    right = factorise_path(Relation(("b",), [(5,), (6,)]), "R")
    fact = ops.product(left, right)
    nested = ops.nest_root_under(fact, "b", "a")
    nested.validate()
    assert sorted(nested.iter_tuples()) == [(1, 5), (1, 6), (2, 5), (2, 6)]
    assert len(nested.ftree.roots) == 1


def test_nest_root_under_rejects_non_root(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.nest_root_under(pizza_fact, "date", "item")


# ---------------------------------------------------------------------------
# the γ aggregation operator
# ---------------------------------------------------------------------------
def test_gamma_example4_t2(pizza_fact):
    """Example 4: γ_sum(price) on the item subtree of T1 yields T2."""
    result = ops.apply_aggregation(
        pizza_fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    result.validate()
    names = result.ftree.attribute_names()
    assert names == ["pizza", "date", "customer", "sp"]
    by_pizza = {
        e.value: e.children[1][0].value for e in result.roots[0]
    }
    assert by_pizza == {
        "Capricciosa": (8,),
        "Hawaii": (9,),
        "Margherita": (6,),
    }


def test_gamma_introduces_dependency(pizza_fact):
    """Example 5: sp depends on pizza after aggregating item, price."""
    result = ops.apply_aggregation(
        pizza_fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    tree = result.ftree
    assert tree.node("sp").depends_on(tree.node("pizza"))
    assert not tree.node("sp").depends_on(tree.node("customer"))
    assert tree.satisfies_path_constraint()


def test_gamma_root_level(pizza_fact):
    result = ops.apply_aggregation(
        pizza_fact, None, ["pizza"], [("sum", "price")], name="total"
    )
    assert list(result.iter_tuples()) == [((40,),)]


def test_gamma_multiple_subtrees(pizza_fact):
    # Aggregate both branches under pizza at once: count of the join
    # per pizza = dates×customers × items.
    result = ops.apply_aggregation(
        pizza_fact, "pizza", ["date", "item"], [("count", None)], name="n"
    )
    by_pizza = {e.value: e.children[0][0].value for e in result.roots[0]}
    assert by_pizza == {"Capricciosa": (6,), "Hawaii": (6,), "Margherita": (1,)}


def test_gamma_composite_functions(pizza_fact):
    result = ops.apply_aggregation(
        pizza_fact,
        "pizza",
        ["item"],
        [("sum", "price"), ("count", None), ("min", "price")],
        name="stats",
    )
    by_pizza = {e.value: e.children[1][0].value for e in result.roots[0]}
    assert by_pizza["Capricciosa"] == (8, 3, 1)
    assert by_pizza["Margherita"] == (6, 1, 6)


def test_gamma_example6_count_of_count(pizzeria_rels):
    """Example 6: count over a count partial multiplies correctly."""
    _, pizzas, _ = pizzeria_rels
    fact = factorise_path(pizzas, "Pizzas")  # pizza → item
    counted = ops.apply_aggregation(
        fact, "pizza", ["item"], [("count", None)], name="ci"
    )
    total = ops.apply_aggregation(
        counted, None, ["pizza"], [("count", None)], name="call"
    )
    assert list(total.iter_tuples()) == [((7,),)]


def test_gamma_requires_subtree(pizza_fact):
    with pytest.raises(ops.OperatorError):
        ops.apply_aggregation(pizza_fact, "pizza", [], [("count", None)])
    with pytest.raises(ops.OperatorError):
        ops.apply_aggregation(
            pizza_fact, "pizza", ["customer"], [("count", None)]
        )


def test_gamma_proposition2_composition(pizza_fact):
    """γ_F(U) ∘ γ_F(V) = γ_F(U) for V ⊆ U (Proposition 2)."""
    # Direct: one γ over the whole item subtree.
    direct = ops.apply_aggregation(
        pizza_fact, "pizza", ["item"], [("sum", "price")], name="s"
    )
    # Composed: first sum prices per item, then sum over the subtree.
    partial = ops.apply_aggregation(
        pizza_fact, "item", ["price"], [("sum", "price")], name="pp"
    )
    composed = ops.apply_aggregation(
        partial, "pizza", ["item"], [("sum", "price")], name="s"
    )
    assert direct.to_relation() == composed.to_relation()


def test_gamma_sum_over_count_partial(pizza_fact):
    """γ_sumA(U) ∘ γ_count(V) = γ_sumA(U) for A ∉ V (Proposition 2)."""
    direct = ops.apply_aggregation(
        pizza_fact, None, ["pizza"], [("sum", "price")], name="s"
    )
    partial = ops.apply_aggregation(
        pizza_fact, "pizza", ["date"], [("count", None)], name="cd"
    )
    composed = ops.apply_aggregation(
        partial, None, ["pizza"], [("sum", "price")], name="s"
    )
    assert list(direct.iter_tuples()) == list(composed.iter_tuples())
