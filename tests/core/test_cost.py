"""Unit tests for the fractional edge-cover cost model."""

import pytest

from repro.core.build import factorise
from repro.core.cost import Hypergraph, ftree_cost, node_exponents, s_parameter
from repro.core.ftree import build_ftree
from repro.data.workloads import section6_ftree
from repro.relational.operators import multiway_join


@pytest.fixture()
def pizza_hypergraph():
    return Hypergraph(
        {
            "Orders": ("customer", "date", "pizza"),
            "Pizzas": ("pizza", "item"),
            "Items": ("item", "price"),
        }
    )


def test_single_attribute_cover(pizza_hypergraph):
    assert pizza_hypergraph.fractional_edge_cover({"pizza"}) == pytest.approx(1.0)


def test_one_relation_covers_path(pizza_hypergraph):
    cover = pizza_hypergraph.fractional_edge_cover(
        {"customer", "date", "pizza"}
    )
    assert cover == pytest.approx(1.0)


def test_two_relations_needed(pizza_hypergraph):
    cover = pizza_hypergraph.fractional_edge_cover({"customer", "item"})
    assert cover == pytest.approx(2.0)


def test_fractional_cover_triangle():
    # The classic triangle query: ρ*(a, b, c) = 3/2.
    triangle = Hypergraph(
        {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "c")}
    )
    assert triangle.fractional_edge_cover({"a", "b", "c"}) == pytest.approx(1.5)


def test_uncovered_attributes_ignored(pizza_hypergraph):
    assert pizza_hypergraph.fractional_edge_cover({"alias"}) == 0.0
    assert pizza_hypergraph.fractional_edge_cover(set()) == 0.0


def test_cover_cache(pizza_hypergraph):
    first = pizza_hypergraph.fractional_edge_cover({"pizza", "item"})
    assert pizza_hypergraph._cover_cache  # populated
    assert pizza_hypergraph.fractional_edge_cover({"item", "pizza"}) == first


def test_node_exponents_t1(t1, pizza_hypergraph):
    exponents = node_exponents(t1, pizza_hypergraph)
    assert exponents["pizza"] == pytest.approx(1.0)
    assert exponents["customer"] == pytest.approx(1.0)  # path within Orders
    assert exponents["price"] == pytest.approx(2.0)  # needs Pizzas+Items? no:
    # path pizza→item→price: Items covers item+price, Pizzas covers
    # pizza+item → 2 relations... but fractionally Pizzas(1)+Items(1)=2.


def test_s_parameter_t1(t1, pizza_hypergraph):
    assert s_parameter(t1, pizza_hypergraph) == pytest.approx(2.0)


def test_ftree_cost_prefers_shallow_paths(pizza_hypergraph):
    # A single path through all five attributes costs strictly more than
    # the branching T1 (deep paths accumulate covers).
    path = build_ftree(
        [("pizza", [("date", [("customer", [("item", ["price"])])])])],
        keys={"pizza": {"x"}, "date": {"x"}, "customer": {"x"}, "item": {"x"}, "price": {"x"}},
    )
    t1 = build_ftree(
        [("pizza", [("date", ["customer"]), ("item", ["price"])])],
        keys={"pizza": {"x"}, "date": {"x"}, "customer": {"x"}, "item": {"x"}, "price": {"x"}},
    )
    assert ftree_cost(path, pizza_hypergraph) > ftree_cost(t1, pizza_hypergraph)


def test_with_equivalences_extends_coverage():
    graph = Hypergraph({"R": ("a",), "S": ("b",)})
    extended = graph.with_equivalences([("a", "b")])
    # After a=b, R covers b too: one edge suffices.
    assert extended.fractional_edge_cover({"a", "b"}) == pytest.approx(1.0)
    assert graph.fractional_edge_cover({"a", "b"}) == pytest.approx(2.0)


def test_bound_dominates_actual_size(pizzeria_rels, t1):
    """The size bound must dominate the real factorisation size."""
    joined = multiway_join(list(pizzeria_rels))
    fact = factorise(joined, t1)
    hypergraph = Hypergraph(
        {
            "Orders": ("customer", "date", "pizza"),
            "Pizzas": ("pizza", "item"),
            "Items": ("item", "price"),
        }
    )
    scale = max(len(rel) for rel in pizzeria_rels)
    bound = ftree_cost(t1, hypergraph, scale=scale)
    assert bound >= fact.size()


def test_bound_dominates_on_generated_data(tiny_workload_db):
    fact = tiny_workload_db.get_factorised("R1")
    hypergraph = Hypergraph(
        {
            "Orders": ("customer", "date", "package"),
            "Packages": ("package", "item"),
            "Items": ("item", "price"),
        }
    )
    scale = max(
        len(tiny_workload_db.flat(name))
        for name in ("Orders", "Packages", "Items")
    )
    bound = ftree_cost(section6_ftree(), hypergraph, scale=scale)
    assert bound >= fact.size()
