"""Tests for DAG compression (beyond f-trees, Section 8)."""

import pytest

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.compress import (
    dag_size,
    hash_cons,
    physical_singletons,
    sharing_report,
)
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation


@pytest.fixture()
def pizza_fact(pizzeria_rels, t1):
    return factorise(multiway_join(list(pizzeria_rels)), t1)


def test_hash_cons_preserves_relation(pizza_fact):
    compressed = hash_cons(pizza_fact)
    compressed.validate()
    assert compressed.to_relation() == pizza_fact.to_relation()
    assert compressed.size() == pizza_fact.size()  # tree size unchanged


def test_pizzeria_shares_topping_fragments(pizza_fact):
    # Capricciosa and Hawaii share the ⟨base⟩×⟨6⟩ and ⟨ham⟩×⟨1⟩ items:
    # the DAG representation is strictly smaller than the tree.
    report = sharing_report(pizza_fact)
    assert report.dag_singletons < report.tree_singletons
    assert report.ratio > 1.0
    assert report.shared_fragments >= 4


def test_hash_cons_realises_the_sharing(pizza_fact):
    before = physical_singletons(pizza_fact)
    compressed = hash_cons(pizza_fact)
    after = physical_singletons(compressed)
    assert after == dag_size(pizza_fact)
    assert after < before


def test_dag_size_on_product_structure():
    # {1..3} × {1..3}: values repeat across columns but fragments differ
    # per node; the two unions of three singletons are NOT shareable
    # (different parents), yet each is stored once already.
    relation = Relation(
        ("a", "b"), [(a, b) for a in (1, 2, 3) for b in (1, 2, 3)]
    )
    fact = factorise_path(relation, "R")
    # Under a, the three b-unions are identical: DAG shares them.
    assert dag_size(fact) < fact.size()


def test_no_sharing_when_all_fragments_differ():
    relation = Relation(("a", "b"), [(1, 10), (2, 20), (3, 30)])
    fact = factorise_path(relation, "R")
    report = sharing_report(fact)
    assert report.shared_fragments == 0
    assert report.ratio == 1.0


def test_compressed_factorisation_supports_operators(pizza_fact):
    compressed = hash_cons(pizza_fact)
    swapped = ops.swap(compressed, "date")
    swapped.validate()
    assert swapped.to_relation() == pizza_fact.to_relation()
    aggregated = ops.apply_aggregation(
        compressed, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    values = {e.value: e.children[1][0].value for e in aggregated.roots[0]}
    assert values["Hawaii"] == (9,)


def test_compressed_enumeration_matches(pizza_fact):
    from repro.core.enumerate import iter_tuples

    compressed = hash_cons(pizza_fact)
    assert list(iter_tuples(compressed, ["pizza", "date"])) == list(
        iter_tuples(pizza_fact, ["pizza", "date"])
    )


def test_sharing_grows_with_duplicate_structure(tiny_workload_db):
    fact = tiny_workload_db.get_factorised("R1")
    report = sharing_report(fact)
    # Many packages share price singletons for common items.
    assert report.dag_singletons <= report.tree_singletons


def test_empty_factorisation():
    fact = factorise_path(Relation(("a",), []), "R")
    assert dag_size(fact) == 0
    assert sharing_report(fact).ratio == 1.0
