"""Unit tests for f-plan steps and execution traces."""

import pytest

from repro.core.build import factorise
from repro.core.fplan import (
    AbsorbStep,
    AggregateStep,
    ExecutionTrace,
    FPlan,
    MergeStep,
    RemoveLeafStep,
    RenameStep,
    SelectStep,
    SwapStep,
)
from repro.query import Comparison
from repro.relational.operators import multiway_join


@pytest.fixture()
def pizza_fact(pizzeria_rels, t1):
    return factorise(multiway_join(list(pizzeria_rels)), t1)


def test_plan_simulate_matches_execute(pizza_fact):
    plan = FPlan(
        [
            AggregateStep("pizza", ("item",), (("sum", "price"),), "sp"),
            SwapStep("customer"),
            SwapStep("customer"),
        ]
    )
    trees = plan.simulate(pizza_fact.ftree)
    result = plan.execute(pizza_fact)
    assert trees[-1].attribute_names() == result.ftree.attribute_names()


def test_trace_records_sizes(pizza_fact):
    trace = ExecutionTrace()
    plan = FPlan(
        [AggregateStep("pizza", ("item",), (("sum", "price"),), "sp")]
    )
    plan.execute(pizza_fact, trace)
    assert len(trace.sizes) == 1
    assert trace.sizes[0] < pizza_fact.size()  # aggregation shrinks
    assert "γ" in trace.describe()


def test_select_step(pizza_fact):
    plan = FPlan([SelectStep(Comparison("price", "=", 6))])
    out = plan.execute(pizza_fact)
    values = {row[-1] for row in out.iter_tuples()}
    assert values == {6}
    # Tree shape is unchanged by constant selections.
    assert plan.simulate(pizza_fact.ftree)[-1] is pizza_fact.ftree


def test_rename_step(pizza_fact):
    plan = FPlan([RenameStep("price", "cost")])
    out = plan.execute(pizza_fact)
    assert "cost" in out.ftree
    tree = plan.simulate(pizza_fact.ftree)[-1]
    assert "cost" in tree and "price" not in tree


def test_remove_leaf_step(pizza_fact):
    plan = FPlan([RemoveLeafStep("price")])
    out = plan.execute(pizza_fact)
    assert "price" not in out.ftree


def test_merge_and_absorb_steps():
    from repro.core import operators as ops
    from repro.core.build import factorise_path
    from repro.relational.relation import Relation

    r = factorise_path(Relation(("a",), [(1,), (2,)]), "R")
    s = factorise_path(Relation(("b",), [(2,), (3,)]), "S")
    fact = ops.product(r, s)
    out = FPlan([MergeStep("a", "b")]).execute(fact)
    assert sorted(out.iter_tuples()) == [(2, 2)]

    t = factorise_path(Relation(("x", "y"), [(1, 1), (1, 2)]), "T")
    out = FPlan([AbsorbStep("x", "y")]).execute(t)
    assert sorted(out.iter_tuples()) == [(1, 1)]


def test_plan_str_and_len(pizza_fact):
    plan = FPlan([SwapStep("date"), SwapStep("pizza")])
    assert len(plan) == 2
    assert "χ↑date" in str(plan)
    assert str(FPlan([])) == "(no-op)"


def test_steps_are_value_objects():
    assert SwapStep("a") == SwapStep("a")
    assert MergeStep("a", "b") != MergeStep("a", "c")
    assert AggregateStep(None, ("a",), (("count", None),), "n") == AggregateStep(
        None, ("a",), (("count", None),), "n"
    )
