"""Unit tests for constant-delay (ordered/grouped) enumeration (Section 4)."""

import pytest

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.enumerate import (
    EnumerationError,
    iter_group_contexts,
    iter_tuples,
    restructure_for_grouping,
    restructure_for_order,
    supports_grouping,
    supports_order,
)
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation
from repro.relational.sort import SortKey, sort_rows


@pytest.fixture()
def pizza_fact(pizzeria_rels, t1):
    return factorise(multiway_join(list(pizzeria_rels)), t1)


# ---------------------------------------------------------------------------
# Theorem 2 characterisation (Example 9)
# ---------------------------------------------------------------------------
SUPPORTED_ORDERS = [
    ("pizza",),
    ("pizza", "date"),
    ("pizza", "date", "customer"),
    ("pizza", "item"),
    ("pizza", "item", "price"),
    ("pizza", "date", "item"),
]
UNSUPPORTED_ORDERS = [
    ("pizza", "customer", "date"),
    ("customer", "pizza"),
    ("date",),
    ("item", "pizza"),
]


@pytest.mark.parametrize("order", SUPPORTED_ORDERS)
def test_example9_supported(t1, order):
    assert supports_order(t1, list(order))


@pytest.mark.parametrize("order", UNSUPPORTED_ORDERS)
def test_example9_unsupported(t1, order):
    assert not supports_order(t1, list(order))


def test_supported_orders_allow_desc(t1):
    assert supports_order(t1, [("pizza", "desc"), "date"])


# ---------------------------------------------------------------------------
# Theorem 1 characterisation (Example 10)
# ---------------------------------------------------------------------------
def test_example10_grouping_allows_permutations(t1):
    # All orders of Example 9 and all their permutations group fine.
    assert supports_grouping(t1, ["date", "pizza"])
    assert supports_grouping(t1, ["customer", "date", "pizza"])
    assert supports_grouping(t1, ["item", "pizza"])
    assert supports_grouping(t1, ["pizza"])


def test_grouping_rejects_gaps(t1):
    # customer without date: its parent holds no group attribute.
    assert not supports_grouping(t1, ["pizza", "customer"])
    assert not supports_grouping(t1, ["price"])


# ---------------------------------------------------------------------------
# Ordered enumeration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("order", SUPPORTED_ORDERS)
def test_ordered_enumeration_matches_sort(pizza_fact, order):
    rows = list(iter_tuples(pizza_fact, list(order)))
    expected = sort_rows(rows, pizza_fact.schema(), list(order))
    assert rows == expected
    assert len(rows) == 13


def test_descending_enumeration(pizza_fact):
    rows = list(iter_tuples(pizza_fact, [("pizza", "desc"), "date"]))
    expected = sort_rows(
        rows, pizza_fact.schema(), [("pizza", "desc"), "date"]
    )
    assert rows == expected
    assert rows[0][pizza_fact.schema().index("pizza")] == "Margherita"


def test_mixed_direction_enumeration(pizza_fact):
    order = ["pizza", ("date", "desc"), "customer"]
    rows = list(iter_tuples(pizza_fact, order))
    assert rows == sort_rows(rows, pizza_fact.schema(), order)


def test_unsupported_order_raises(pizza_fact):
    with pytest.raises(EnumerationError):
        list(iter_tuples(pizza_fact, ["customer", "pizza"]))


def test_limit(pizza_fact):
    rows = list(iter_tuples(pizza_fact, ["pizza"], limit=3))
    assert len(rows) == 3


def test_unordered_enumeration_complete(pizza_fact, pizzeria_rels):
    joined = multiway_join(list(pizzeria_rels))
    rows = set(iter_tuples(pizza_fact))
    expected = set(
        joined.project(pizza_fact.schema(), dedup=False).rows
    )
    assert rows == expected


# ---------------------------------------------------------------------------
# Restructuring (Section 4.2)
# ---------------------------------------------------------------------------
def test_restructure_for_order_example2(pizza_fact):
    """Example 2: (customer, pizza, item, price) via pushing customer up."""
    order = ["customer", "pizza", "item", "price"]
    swaps = restructure_for_order(pizza_fact.ftree, order)
    assert swaps == ["customer", "customer"]
    current = pizza_fact
    for child in swaps:
        current = ops.swap(current, child)
    rows = list(iter_tuples(current, order))
    assert rows == sort_rows(rows, current.schema(), order)


def test_restructure_noop_when_supported(pizza_fact):
    assert restructure_for_order(pizza_fact.ftree, ["pizza", "date"]) == []


def test_restructure_for_grouping(pizza_fact):
    swaps = restructure_for_grouping(pizza_fact.ftree, ["customer"])
    current = pizza_fact
    for child in swaps:
        current = ops.swap(current, child)
    assert supports_grouping(current.ftree, ["customer"])


def test_q12_single_swap(tiny_workload_db):
    """Experiment 4: Q12's order needs exactly one swap on the view."""
    fact = tiny_workload_db.get_factorised("R2")
    swaps = restructure_for_order(fact.ftree, ["date", "package", "item"])
    assert swaps == ["date"]


def test_q11_no_restructuring(tiny_workload_db):
    """Experiment 4: the view supports Q11's order with no work at all."""
    fact = tiny_workload_db.get_factorised("R2")
    assert supports_order(fact.ftree, ["package", "item", "date"])


# ---------------------------------------------------------------------------
# Grouped enumeration with leftovers
# ---------------------------------------------------------------------------
def test_group_contexts_yield_assignments(pizza_fact):
    contexts = list(iter_group_contexts(pizza_fact, ["pizza"]))
    assert [c[0]["pizza"] for c in contexts] == [
        "Capricciosa",
        "Hawaii",
        "Margherita",
    ]
    # Leftovers per pizza: the date and item fragments.
    for _, leftovers in contexts:
        assert {node.name for node, _ in leftovers} == {"date", "item"}


def test_group_contexts_two_levels(pizza_fact):
    contexts = list(iter_group_contexts(pizza_fact, ["pizza", "date"]))
    assert len(contexts) == 4  # Capricciosa×2, Hawaii×1, Margherita×1
    for assignment, leftovers in contexts:
        assert set(assignment) == {"pizza", "date"}
        assert {node.name for node, _ in leftovers} == {"customer", "item"}


def test_group_contexts_ordering(pizza_fact):
    contexts = list(
        iter_group_contexts(pizza_fact, ["pizza"], [("pizza", "desc")])
    )
    assert [c[0]["pizza"] for c in contexts] == [
        "Margherita",
        "Hawaii",
        "Capricciosa",
    ]


def test_group_contexts_unsupported_group(pizza_fact):
    with pytest.raises(EnumerationError):
        list(iter_group_contexts(pizza_fact, ["customer"]))


def test_group_contexts_order_outside_group(pizza_fact):
    with pytest.raises(EnumerationError):
        list(iter_group_contexts(pizza_fact, ["pizza"], ["date"]))


def test_group_contexts_empty_group(pizza_fact):
    contexts = list(iter_group_contexts(pizza_fact, []))
    assert len(contexts) == 1
    assignment, leftovers = contexts[0]
    assert assignment == {}
    assert {node.name for node, _ in leftovers} == {"pizza"}


def test_constant_delay_prefix_cheap():
    """First tuples of a huge ordered result come out without a full scan."""
    relation = Relation(("a", "b"), [(i, i % 97) for i in range(30_000)])
    fact = factorise_path(relation, "R")
    import itertools
    import time

    start = time.perf_counter()
    first = list(itertools.islice(iter_tuples(fact, ["a"]), 10))
    elapsed = time.perf_counter() - start
    assert len(first) == 10
    assert elapsed < 0.1  # far below a full enumeration
