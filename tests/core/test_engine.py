"""Unit tests for the FDB engine facade."""

import pytest

from repro.core.engine import FactorisedResult, FDBEngine
from repro.database import Database
from repro.query import Comparison, Equality, Having, Query, QueryError, aggregate
from repro.relational.engine import RDBEngine
from repro.relational.relation import Relation

from tests.conftest import assert_same_relation


@pytest.fixture()
def engines():
    return FDBEngine(), FDBEngine(output="factorised"), RDBEngine()


def test_invalid_output_mode():
    with pytest.raises(ValueError):
        FDBEngine(output="bogus")


def test_aggregate_on_view_uses_factorisation(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
    )
    result, plan, _ = fdb.execute_traced(q, pizzeria)
    assert_same_relation(result, rdb.execute(q, pizzeria))
    # The plan must include at least one partial aggregation.
    assert any("γ" in str(s) for s in plan)


def test_flat_input_builds_factorisation(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(
        relations=("Orders", "Pizzas", "Items"),
        group_by=("pizza",),
        aggregates=(aggregate("count", None, "n"),),
    )
    assert_same_relation(fdb.execute(q, pizzeria), rdb.execute(q, pizzeria))


def test_star_query_on_multiple_relations(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(relations=("Orders", "Pizzas", "Items"))
    left = fdb.execute(q, pizzeria)
    right = rdb.execute(q, pizzeria)
    # natural-join semantics: each attribute once
    assert set(left.schema) == {"customer", "date", "pizza", "item", "price"}
    assert_same_relation(left, right)


def test_explicit_equality_selection(engines):
    fdb, _, rdb = engines
    db = Database(
        [
            Relation(("a", "x"), [(1, 5), (2, 6)], "R"),
            Relation(("b", "y"), [(1, 7), (3, 8)], "S"),
        ]
    )
    q = Query(relations=("R", "S"), equalities=(Equality("a", "b"),))
    assert_same_relation(fdb.execute(q, db), rdb.execute(q, db))


def test_constant_selection_before_planning(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(
        relations=("R",),
        comparisons=(Comparison("price", ">", 1),),
        group_by=("pizza",),
        aggregates=(aggregate("sum", "price", "s"),),
    )
    assert_same_relation(fdb.execute(q, pizzeria), rdb.execute(q, pizzeria))


def test_projection_query(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(relations=("R",), projection=("pizza", "price"))
    assert_same_relation(fdb.execute(q, pizzeria), rdb.execute(q, pizzeria))


def test_projection_of_internal_node(pizzeria, engines):
    fdb, _, rdb = engines
    # date is internal in T1; projecting it away forces sink-to-leaf.
    q = Query(relations=("R",), projection=("pizza", "customer"))
    assert_same_relation(fdb.execute(q, pizzeria), rdb.execute(q, pizzeria))


def test_order_by_group_attribute(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(
        relations=("R",),
        group_by=("pizza",),
        aggregates=(aggregate("sum", "price", "s"),),
    ).with_order([("pizza", "desc")])
    assert fdb.execute(q, pizzeria).rows == rdb.execute(q, pizzeria).rows


def test_order_by_alias(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    ).with_order([("rev", "desc"), "customer"])
    assert fdb.execute(q, pizzeria).rows == rdb.execute(q, pizzeria).rows


def test_limit_on_groups(pizzeria, engines):
    fdb, _, rdb = engines
    q = Query(
        relations=("R",),
        group_by=("pizza",),
        aggregates=(aggregate("sum", "price", "s"),),
        order_by=(),
    ).with_order(["pizza"]).with_limit(2)
    assert fdb.execute(q, pizzeria).rows == rdb.execute(q, pizzeria).rows


def test_having_flat_and_factorised(pizzeria, engines):
    fdb, fdbf, rdb = engines
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
        having=(Having("rev", ">", 10),),
    )
    expected = rdb.execute(q, pizzeria)
    assert_same_relation(fdb.execute(q, pizzeria), expected)
    assert_same_relation(fdbf.execute(q, pizzeria).to_relation(), expected)


def test_having_on_group_attribute(pizzeria, engines):
    fdb, fdbf, rdb = engines
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
        having=(Having("customer", "=", "Mario"),),
    )
    expected = rdb.execute(q, pizzeria)
    assert_same_relation(fdb.execute(q, pizzeria), expected)
    assert_same_relation(fdbf.execute(q, pizzeria).to_relation(), expected)


def test_factorised_result_properties(pizzeria):
    fdbf = FDBEngine(output="factorised")
    q = Query(
        relations=("R",),
        group_by=("customer", "pizza"),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    result = fdbf.execute(q, pizzeria)
    assert isinstance(result, FactorisedResult)
    assert result.output_schema == ("customer", "pizza", "rev")
    assert result.size() > 0
    rows = list(result.iter_tuples())
    assert all(len(row) == 3 for row in rows)


def test_factorised_result_avg(pizzeria):
    fdbf = FDBEngine(output="factorised")
    rdb = RDBEngine()
    q = Query(
        relations=("R",),
        group_by=("pizza",),
        aggregates=(aggregate("avg", "price", "m"), aggregate("count", None, "n")),
    )
    assert_same_relation(
        fdbf.execute(q, pizzeria).to_relation(), rdb.execute(q, pizzeria)
    )


def test_scalar_aggregate_factorised(pizzeria):
    fdbf = FDBEngine(output="factorised")
    q = Query(relations=("R",), aggregates=(aggregate("max", "price", "top"),))
    result = fdbf.execute(q, pizzeria)
    assert list(result.iter_tuples()) == [(6,)]


def test_group_by_independent_attributes_linearises():
    """Grouping attributes from independent relations forces nesting."""
    db = Database(
        [
            Relation(("a", "v"), [(1, 2), (1, 3), (2, 5)], "R"),
            Relation(("b",), [(7,), (8,)], "S"),
        ]
    )
    q = Query(
        relations=("R", "S"),
        group_by=("a", "b"),
        aggregates=(aggregate("sum", "v", "s"),),
    )
    fdbf = FDBEngine(output="factorised")
    rdb = RDBEngine()
    assert_same_relation(fdbf.execute(q, db).to_relation(), rdb.execute(q, db))


def test_order_by_alias_multi_aggregate_flat(pizzeria):
    fdb = FDBEngine()
    rdb = RDBEngine()
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(
            aggregate("sum", "price", "rev"),
            aggregate("count", None, "n"),
        ),
    ).with_order(["customer"])
    assert fdb.execute(q, pizzeria).rows == rdb.execute(q, pizzeria).rows


def test_unknown_attribute_rejected(pizzeria):
    q = Query(
        relations=("R",),
        group_by=("nonexistent",),
        aggregates=(aggregate("count", None, "n"),),
    )
    with pytest.raises(QueryError):
        FDBEngine().execute(q, pizzeria)


def test_trace_available_after_execution(pizzeria):
    fdb = FDBEngine()
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    _, plan, trace = fdb.execute_traced(q, pizzeria)
    assert trace is not None
    assert len(trace.sizes) == len(plan)


def test_exhaustive_optimizer_engine(pizzeria):
    fdb = FDBEngine(optimizer="exhaustive")
    rdb = RDBEngine()
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    assert_same_relation(fdb.execute(q, pizzeria), rdb.execute(q, pizzeria))
