"""Golden tests: every worked example of the paper, end to end.

Example 1 (three aggregation scenarios), Example 2 (order support after
restructuring), Example 3 (factorisation succinctness), Examples 4-5
(the γ operator and its dependencies), Example 6 (aggregate singletons
as pre-aggregated relations), Example 7 / Proposition 2 (composition),
Example 8 (the sum algorithm), Examples 9-10 (Theorems 1-2 on T1), and
Example 11 (the two alternative Q2 f-plans).
"""

import pytest

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.engine import FDBEngine
from repro.core.enumerate import iter_tuples, supports_grouping, supports_order
from repro.data.pizzeria import pizzeria_database, pizzeria_view
from repro.query import Query, aggregate
from repro.relational.engine import RDBEngine


@pytest.fixture()
def view():
    return pizzeria_view()


# ---------------------------------------------------------------------------
# Figure 1 / Example 1
# ---------------------------------------------------------------------------
def test_figure1_factorisation_structure(view):
    _, fact = view
    # Three pizzas at the root, sorted; Hawaii shares Lucia & Pietro.
    assert [e.value for e in fact.roots[0]] == [
        "Capricciosa",
        "Hawaii",
        "Margherita",
    ]
    hawaii = fact.roots[0][1]
    dates = hawaii.children[0]
    assert [e.value for e in dates] == ["Friday"]
    assert [c.value for c in dates[0].children[0]] == ["Lucia", "Pietro"]


def test_example1_scenario1_local_aggregation(view):
    """S = ϖ_{customer,date,pizza; sum(price)}(R): aggregation is local."""
    _, fact = view
    s = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    by_pizza = {e.value: e.children[1][0].value[0] for e in s.roots[0]}
    assert by_pizza == {"Capricciosa": 8, "Hawaii": 9, "Margherita": 6}


def test_example1_scenario2_restructure_and_partials(view):
    """P = ϖ_{customer; sum(price)}(R) via T2 → T3 → T4 → final."""
    _, fact = view
    s = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    t3 = ops.swap(ops.swap(s, "customer"), "customer")
    assert t3.ftree.attribute_names()[0] == "customer"
    t4 = ops.apply_aggregation(
        t3, "pizza", ["date"], [("count", None)], name="cd"
    )
    # T4 fragment of Mario/Capricciosa: count 2, sum 8 (paper's figures).
    mario = next(e for e in t4.roots[0] if e.value == "Mario")
    capricciosa = next(
        p for p in mario.children[0] if p.value == "Capricciosa"
    )
    values = sorted(
        child[0].value for child in capricciosa.children
    )
    assert values == [(2,), (8,)]
    final = ops.apply_aggregation(
        t4, "customer", ["pizza"], [("sum", "price")], name="revenue"
    )
    assert sorted(final.iter_tuples()) == [
        ("Lucia", (9,)),
        ("Mario", (22,)),
        ("Pietro", (9,)),
    ]


def test_example1_scenario3_on_the_fly(view):
    """Revenue per customer and pizza straight off the T4 factorisation."""
    db = pizzeria_database()
    q = Query(
        relations=("R",),
        group_by=("customer", "pizza"),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    result = FDBEngine().execute(q, db)
    expected = RDBEngine().execute(q, db)
    assert result == expected
    mario_capricciosa = next(
        r for r in result.as_dicts()
        if r["customer"] == "Mario" and r["pizza"] == "Capricciosa"
    )
    assert mario_capricciosa["rev"] == 16  # 2 dates × price 8


# ---------------------------------------------------------------------------
# Example 2: order support via partial restructuring
# ---------------------------------------------------------------------------
def test_example2_orders(view, t1):
    _, fact = view
    for order in [
        ("pizza",),
        ("pizza", "date"),
        ("pizza", "item"),
        ("pizza", "item", "date"),
        ("pizza", "date", "item"),
    ]:
        assert supports_order(t1, list(order)), order
    assert not supports_order(t1, ["customer", "pizza", "item", "price"])
    pushed = ops.swap(ops.swap(fact, "customer"), "customer")
    assert supports_order(pushed.ftree, ["customer", "pizza", "item", "price"])
    rows = list(iter_tuples(pushed, ["customer", "pizza", "item", "price"]))
    from repro.relational.sort import sort_rows

    assert rows == sort_rows(
        rows, pushed.schema(), ["customer", "pizza", "item", "price"]
    )


# ---------------------------------------------------------------------------
# Example 3: succinctness
# ---------------------------------------------------------------------------
def test_example3_sizes():
    from repro.core.ftree import build_ftree
    from repro.relational.relation import Relation

    relation = Relation(
        ("A", "B"), [(a, b) for a in ("d", "c") for b in (1, 2, 3)]
    )
    tree = build_ftree(["A", "B"], keys={"A": {"r1"}, "B": {"r2"}})
    e2 = factorise(relation, tree)
    assert e2.size() == 5  # (2 A-singletons) + (3 B-singletons)
    trivial = factorise_path(relation, "R")
    assert trivial.size() == 8  # 2 + 6 under the path A → B


# ---------------------------------------------------------------------------
# Examples 4-5 are covered in test_operators (γ structure, dependencies);
# Example 6 in test_operators (count-of-count); Example 8 in
# test_aggregates.  Example 7: composition equivalence.
# ---------------------------------------------------------------------------
def test_example7_composition_equivalence(view):
    """γ_sum(U) ∘ γ_count(date) ∘ γ_sum(item,price) = γ_sum(U)."""
    _, fact = view
    # Left side: the full staged pipeline of Example 1.
    staged = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    staged = ops.swap(ops.swap(staged, "customer"), "customer")
    staged = ops.apply_aggregation(
        staged, "pizza", ["date"], [("count", None)], name="cd"
    )
    staged = ops.apply_aggregation(
        staged, "customer", ["pizza"], [("sum", "price")], name="rev"
    )
    # Right side: restructure first, then one γ over the whole subtree.
    direct = ops.swap(ops.swap(fact, "customer"), "customer")
    direct = ops.apply_aggregation(
        direct, "customer", ["pizza"], [("sum", "price")], name="rev"
    )
    assert sorted(staged.iter_tuples()) == sorted(direct.iter_tuples())


# ---------------------------------------------------------------------------
# Examples 9-10 are covered in test_enumerate; Example 11: both plans.
# ---------------------------------------------------------------------------
def test_example11_alternative_plan(pizzeria_rels):
    """Example 11's alternative plan, under its independence assumption.

    The example assumes pizza ⊥ customer given date — "if the relation
    Orders was obtained as a join of the daily Menu(pizza, date) and
    Guests(date, customer)".  We build exactly that database and check
    both plans compute the same revenue per customer.
    """
    from repro.core.ftree import build_ftree
    from repro.relational.operators import multiway_join

    orders, pizzas, items = pizzeria_rels
    menu = orders.project(["pizza", "date"])
    menu.name = "Menu"
    guests = orders.project(["date", "customer"])
    guests.name = "Guests"
    joined = multiway_join([menu, guests, pizzas, items])
    t1_indep = build_ftree(
        [("pizza", [("date", ["customer"]), ("item", ["price"])])],
        keys={
            "pizza": {"Menu", "Pizzas"},
            "date": {"Menu", "Guests"},
            "customer": {"Guests"},
            "item": {"Pizzas", "Items"},
            "price": {"Items"},
        },
    )
    fact = factorise(joined, t1_indep, check=True)

    # Plan A (Example 1): partial sum, push customer up twice, finish.
    plan_a = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    plan_a = ops.swap(ops.swap(plan_a, "customer"), "customer")
    plan_a = ops.apply_aggregation(
        plan_a, "customer", ["pizza"], [("sum", "price")], name="revenue"
    )

    # Plan B (Example 11): partial sum, push *date* up — customer is
    # independent of pizza, so it moves up with date, giving the
    # example's tree date → (customer, pizza → sp).
    plan_b = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sp"
    )
    plan_b = ops.swap(plan_b, "date")
    date_children = {
        c.name for c in plan_b.ftree.node("date").children
    }
    assert "customer" in date_children  # the example's picture
    plan_b = ops.apply_aggregation(
        plan_b, "date", ["pizza"], [("sum", "price")], name="sp2"
    )
    plan_b = ops.swap(plan_b, "customer")
    plan_b = ops.apply_aggregation(
        plan_b, "customer", ["date"], [("sum", "price")], name="revenue"
    )
    assert sorted(plan_a.iter_tuples()) == sorted(plan_b.iter_tuples())


def test_final_ftree_of_example1(view):
    """The result's f-tree is customer → sum(...) as printed."""
    db = pizzeria_database()
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
    )
    result = FDBEngine(output="factorised").execute(q, db)
    tree = result.factorisation.ftree
    assert tree.roots[0].name == "customer"
    (child,) = tree.roots[0].children
    assert child.is_aggregate
