"""Tests for the f-tree view advisor."""

import pytest

from repro.core.advisor import (
    AdvisorError,
    advise,
    attribute_keys,
    best_ftree,
    enumerate_ftrees,
)
from repro.core.build import factorise
from repro.core.cost import Hypergraph
from repro.relational.operators import multiway_join

SECTION6 = Hypergraph(
    {
        "Orders": ("customer", "date", "package"),
        "Packages": ("package", "item"),
        "Items": ("item", "price"),
    }
)
ATTRS = ("customer", "date", "package", "item", "price")


def test_attribute_keys():
    keys = attribute_keys(SECTION6)
    assert keys["package"] == frozenset({"Orders", "Packages"})
    assert keys["price"] == frozenset({"Items"})


def test_enumeration_yields_valid_trees():
    trees = list(enumerate_ftrees(ATTRS, SECTION6, cap=5000))
    assert len(trees) > 50
    for tree in trees:
        assert tree.satisfies_path_constraint()
        assert sorted(tree.attribute_names()) == sorted(ATTRS)


def test_enumeration_no_duplicates():
    trees = list(enumerate_ftrees(ATTRS, SECTION6, cap=5000))
    signatures = set()
    for tree in trees:
        signature = tree.pretty()
        # pretty() is shape-faithful up to sibling order; use a sorted form
        signature = tuple(sorted(signature.splitlines()))
        signatures.add((signature, tree.pretty().count("\n")))
    # weaker check: the count of distinct pretty-prints matches trees
    assert len({tree.pretty() for tree in trees}) == len(trees)


def test_advisor_recovers_paper_ftree():
    """The Section 6 view tree is among the cheapest candidates."""
    ranked = advise(ATTRS, SECTION6, top=3)
    shapes = {candidate.ftree.pretty() for candidate in ranked}
    paper_tree = (
        "package\n  date\n    customer\n  item\n    price"
    )
    assert paper_tree in shapes
    # And every top tree reaches the optimal exponent.
    best_exponent = min(c.exponent for c in ranked)
    assert ranked[0].exponent == pytest.approx(best_exponent)


def test_best_tree_factorises_the_view(tiny_workload_db):
    tree = best_ftree(ATTRS, SECTION6)
    joined = multiway_join(
        [tiny_workload_db.flat(n) for n in ("Orders", "Packages", "Items")]
    )
    fact = factorise(joined, tree)
    fact.validate()
    assert fact.to_relation() == joined


def test_single_relation_paths_only():
    hypergraph = Hypergraph({"R": ("a", "b", "c")})
    trees = list(enumerate_ftrees(("a", "b", "c"), SECTION6_R := hypergraph))
    # All attributes mutually dependent: only the 3! = 6 paths are valid.
    assert len(trees) == 6
    for tree in trees:
        assert len(tree.roots) == 1
        node = tree.roots[0]
        while node.children:
            assert len(node.children) == 1
            node = node.children[0]


def test_independent_attributes_allow_forests():
    hypergraph = Hypergraph({"R": ("a",), "S": ("b",)})
    trees = list(enumerate_ftrees(("a", "b"), hypergraph))
    # a|b forest, a→b, b→a.
    assert len(trees) == 3


def test_cap_enforced():
    with pytest.raises(AdvisorError):
        list(enumerate_ftrees(ATTRS, SECTION6, cap=3))


def test_unknown_attribute_rejected():
    with pytest.raises(AdvisorError):
        list(enumerate_ftrees(("zzz",), SECTION6))
