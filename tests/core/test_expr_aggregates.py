"""Factorised evaluation of expression aggregates (Section 3.2).

The key claims: SUM over a product of attributes on *independent*
branches distributes as a product of partial sums (no flattening —
asserted via the execution trace's expression stats), and localised
flattening only occurs where an expression genuinely needs joint
values (min/max over arithmetic, opaque quotients).
"""

import pytest

from repro.core import aggregates as agg
from repro.core.engine import FDBEngine
from repro.database import Database
from repro.expr import col
from repro.query import Comparison, Query, QueryError, aggregate
from repro.relational.engine import RDBEngine
from repro.relational.relation import Relation


@pytest.fixture()
def branch_db():
    """price and qty live on independent branches below the join key."""
    return Database(
        [
            Relation(("k", "price"), [(1, 10), (1, 20), (2, 5)], "S"),
            Relation(("k", "qty"), [(1, 2), (1, 3), (2, 4)], "T"),
        ]
    )


def branch_query(**kwargs) -> Query:
    defaults = dict(
        relations=("S", "T"),
        group_by=("k",),
        aggregates=(aggregate("sum", col("price") * col("qty"), "rev"),),
    )
    defaults.update(kwargs)
    return Query(**defaults)


def test_sum_product_independent_branches_native(branch_db):
    engine = FDBEngine()
    result, _, trace = engine.execute_traced(branch_query(), branch_db)
    # k=1: (10+20)·(2+3) = 150; k=2: 5·4 = 20.
    assert sorted(result.rows) == [(1, 150), (2, 20)]
    stats = trace.expression_stats
    assert stats.flatten_events == 0
    assert stats.native_terms > 0


def test_sum_product_matches_flat_baseline(branch_db):
    query = branch_query()
    factorised, _, _ = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    assert sorted(factorised.rows) == sorted(flat.rows)


def test_factorised_output_mode_agrees(branch_db):
    query = branch_query()
    result, _, trace = FDBEngine(output="factorised").execute_traced(
        query, branch_db
    )
    assert sorted(result.iter_tuples()) == [(1, 150), (2, 20)]
    assert trace.expression_stats.flatten_events == 0


def test_avg_expression(branch_db):
    query = branch_query(
        aggregates=(aggregate("avg", col("price") * col("qty"), "m"),)
    )
    result, _, trace = FDBEngine().execute_traced(query, branch_db)
    assert sorted(result.rows) == [(1, 37.5), (2, 20.0)]
    assert trace.expression_stats.flatten_events == 0


def test_linear_expression_single_attribute(branch_db):
    query = branch_query(
        aggregates=(aggregate("sum", col("price") * 2 + 1, "adj"),)
    )
    result, _, trace = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    assert sorted(result.rows) == sorted(flat.rows)
    assert trace.expression_stats.flatten_events == 0


def test_squared_attribute_is_native(branch_db):
    # price² needs the joint distribution of price with itself, which
    # the atomic union supplies directly (entry.value squared).
    query = branch_query(
        aggregates=(aggregate("sum", col("price") * col("price"), "sq"),)
    )
    result, _, _ = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    assert sorted(result.rows) == sorted(flat.rows)


def test_min_max_expression_flattens_locally(branch_db):
    query = branch_query(
        aggregates=(aggregate("min", col("price") + col("qty"), "lo"),)
    )
    result, _, trace = FDBEngine().execute_traced(query, branch_db)
    assert sorted(result.rows) == [(1, 12), (2, 9)]
    assert trace.expression_stats.flatten_events > 0


def test_opaque_quotient_across_branches(branch_db):
    # price/qty does not distribute: the involved fragments flatten.
    query = branch_query(
        aggregates=(aggregate("sum", col("price") / col("qty"), "ratio"),)
    )
    result, _, trace = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    for (k1, v1), (k2, v2) in zip(sorted(result.rows), sorted(flat.rows)):
        assert k1 == k2 and v1 == pytest.approx(v2)
    assert trace.expression_stats.flatten_events > 0


def test_expression_over_group_attribute(branch_db):
    # SUM(k * price) GROUP BY k: the group value joins the forest as a
    # one-entry fragment.
    query = branch_query(
        aggregates=(aggregate("sum", col("k") * col("price"), "kp"),)
    )
    result, _, _ = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    assert sorted(result.rows) == sorted(flat.rows)


def test_expression_where_filters_input(branch_db):
    query = branch_query(
        comparisons=(Comparison(col("price") * 2, ">", 10),),
        aggregates=(aggregate("sum", "price", "s"),),
    )
    result, _, _ = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    assert sorted(result.rows) == sorted(flat.rows)
    assert sorted(result.rows) == [(1, 60)]  # k=2's price 5 filtered out


def test_expression_where_spanning_relations_rejected(branch_db):
    query = branch_query(
        comparisons=(Comparison(col("price") * col("qty"), ">", 0),),
    )
    with pytest.raises(QueryError, match="more than one input relation"):
        FDBEngine().execute_traced(query, branch_db)


def test_scalar_expression_aggregate_without_grouping(branch_db):
    query = branch_query(group_by=())
    result, _, trace = FDBEngine().execute_traced(query, branch_db)
    flat = RDBEngine().execute(query, branch_db)
    assert result.rows == flat.rows == [(170,)]
    assert trace.expression_stats.flatten_events == 0


def test_exhaustive_optimizer_handles_expressions(branch_db):
    query = branch_query()
    result, _, _ = FDBEngine(optimizer="exhaustive").execute_traced(
        query, branch_db
    )
    assert sorted(result.rows) == [(1, 150), (2, 20)]


@pytest.mark.parametrize("optimizer", ["greedy", "exhaustive", "cost"])
def test_ungrouped_product_aggregate_all_optimizers(branch_db, optimizer):
    """Regression: the searching strategies once folded qty beneath the
    node already carrying sum(price) partials — nesting both halves of
    a coupled term on one root-to-leaf path, which the final expression
    pass cannot recover (CompositionError).  Coupled attributes already
    aggregated on the ancestor path now count against the γ budget."""
    query = branch_query(group_by=())
    result, _, _ = FDBEngine(optimizer=optimizer).execute_traced(
        query, branch_db
    )
    assert result.rows == [(170,)]


def test_expression_stats_describe():
    stats = agg.ExpressionStats()
    stats.native_terms = 2
    assert "no flattening" in stats.describe()
    stats.record_flatten(7)
    assert "7 row(s)" in stats.describe()


def test_computed_columns_on_fdb(branch_db):
    from repro.query import ComputedColumn

    query = Query(
        relations=("S",),
        projection=("k",),
        computed=(ComputedColumn(col("price") * 2, "double"),),
    )
    result, _, _ = FDBEngine().execute_traced(query, branch_db)
    assert sorted(result.rows) == [(1, 20), (1, 40), (2, 10)]
    flat = RDBEngine().execute(query, branch_db)
    assert sorted(result.rows) == sorted(flat.rows)


def test_order_by_computed_alias(branch_db):
    from repro.query import ComputedColumn

    query = Query(
        relations=("S",),
        projection=("k",),
        computed=(ComputedColumn(col("price") * 2, "double"),),
    ).with_order([("double", "desc")])
    result, _, _ = FDBEngine().execute_traced(query, branch_db)
    assert result.rows == [(1, 40), (1, 20), (2, 10)]


def test_deep_expression_three_branches():
    db = Database(
        [
            Relation(("k", "a"), [(1, 2), (1, 3), (2, 1)], "A"),
            Relation(("k", "b"), [(1, 5), (2, 7)], "B"),
            Relation(("k", "c"), [(1, 11), (2, 13), (2, 17)], "C"),
        ]
    )
    query = Query(
        relations=("A", "B", "C"),
        group_by=("k",),
        aggregates=(
            aggregate("sum", col("a") * col("b") * col("c") + col("a"), "s"),
        ),
    )
    result, _, trace = FDBEngine().execute_traced(query, db)
    flat = RDBEngine().execute(query, db)
    assert sorted(result.rows) == sorted(flat.rows)
    assert trace.expression_stats.flatten_events == 0
