"""Data-driven cost estimates and the scipy-free covering-LP path.

The pure-Python vertex-enumeration solver must reproduce the scipy
``linprog`` optimum exactly on the classical hypergraphs (the LP's
optimal value is what :func:`fractional_edge_cover` pins elsewhere);
the estimation layer combines the AGM bound with distinct-count
products and falls back to the asymptotic ``scale`` without stats.
"""

from __future__ import annotations

import pytest

from repro.core.cost import (
    HAVE_SCIPY,
    Hypergraph,
    _greedy_cover,
    _pure_cover_solve,
    estimated_node_count,
    estimated_plan_cost,
    estimated_tree_size,
)
from repro.core.ftree import build_ftree
from repro.stats.model import AttributeStats, RelationStats


def _edges(mapping):
    return {name: frozenset(attrs) for name, attrs in mapping.items()}


TRIANGLE = _edges({"R": "ab", "S": "bc", "T": "ca"})
PATH3 = _edges({"R": "ab", "S": "bc"})
STAR = _edges({"R": "ax", "S": "bx", "T": "cx"})


@pytest.mark.parametrize(
    "edges,attrs,expected",
    [
        (TRIANGLE, "abc", 1.5),
        (PATH3, "abc", 2.0),
        (PATH3, "b", 1.0),
        (STAR, "abcx", 3.0),
    ],
)
def test_pure_cover_matches_known_optima(edges, attrs, expected):
    rho, weights = _pure_cover_solve(
        sorted(edges), sorted(attrs), edges
    )
    assert rho == pytest.approx(expected)
    # The weights must themselves be a fractional cover.
    for attribute in attrs:
        covering = sum(
            weight
            for name, weight in weights.items()
            if attribute in edges[name]
        )
        assert covering >= 1 - 1e-9


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")
@pytest.mark.parametrize("edges", [TRIANGLE, PATH3, STAR])
def test_pure_cover_agrees_with_scipy(edges):
    attrs = sorted(set().union(*edges.values()))
    hypergraph = Hypergraph(edges)
    rho, _ = _pure_cover_solve(sorted(edges), attrs, edges)
    assert rho == pytest.approx(hypergraph.fractional_edge_cover(attrs))


def test_greedy_cover_is_an_upper_bound():
    attrs = sorted(set().union(*TRIANGLE.values()))
    rho, weights = _greedy_cover(sorted(TRIANGLE), attrs, TRIANGLE)
    assert rho >= 1.5
    assert all(weight == 1.0 for weight in weights.values())


def test_cover_weights_expose_the_optimal_basis():
    hypergraph = Hypergraph(TRIANGLE)
    weights = hypergraph.cover_weights("abc")
    assert sum(weights.values()) == pytest.approx(1.5)
    assert all(w == pytest.approx(0.5) for w in weights.values())


# ---------------------------------------------------------------------------
# Estimation layer
# ---------------------------------------------------------------------------
def _stats(**relations):
    out = {}
    for name, (rows, distincts) in relations.items():
        out[name] = RelationStats(
            name=name,
            rows=rows,
            attributes={
                attribute: AttributeStats(distinct=distinct, total=rows)
                for attribute, distinct in distincts.items()
            },
        )
    return out


def test_estimated_node_count_prefers_tighter_bound():
    hypergraph = Hypergraph(PATH3)
    stats = _stats(R=(100, {"a": 100, "b": 4}), S=(100, {"b": 7, "c": 50}))
    # AGM for {b}: rows^weight = 100, distinct product: min(4, 7) = 4.
    assert estimated_node_count(hypergraph, ["b"], stats) == 4.0
    # AGM for {a, b}: one relation covers both — 100 < 100 × 4.
    assert estimated_node_count(hypergraph, ["a", "b"], stats) == 100.0


def test_estimated_node_count_falls_back_to_scale():
    hypergraph = Hypergraph(PATH3)
    assert (
        estimated_node_count(hypergraph, ["b"], {}, scale=64.0) == 64.0
    )
    assert estimated_node_count(hypergraph, [], {}) == 1.0


def test_estimated_tree_size_rewards_small_side_roots():
    edges = _edges({"V": "jxy"})
    hypergraph = Hypergraph(edges)
    stats = _stats(V=(1000, {"j": 10, "x": 500, "y": 5}))
    x_up = build_ftree([("x", [("j", ["y"])])])
    y_up = build_ftree([("y", [("j", ["x"])])])
    assert estimated_tree_size(
        x_up, hypergraph, stats
    ) > estimated_tree_size(y_up, hypergraph, stats)


def test_estimated_plan_cost_sums_trees():
    edges = _edges({"V": "jxy"})
    hypergraph = Hypergraph(edges)
    stats = _stats(V=(1000, {"j": 10, "x": 500, "y": 5}))
    tree = build_ftree([("j", ["x", "y"])])
    single = estimated_tree_size(tree, hypergraph, stats)
    assert estimated_plan_cost(
        [tree, tree], hypergraph, stats
    ) == pytest.approx(2 * single)
