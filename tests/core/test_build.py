"""Unit tests for the factorisation builder."""

import pytest

from repro.core.build import FactoriseError, factorise, factorise_path
from repro.core.ftree import build_ftree, path_ftree
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation


def test_factorise_pizzeria_matches_figure1(pizzeria_rels, t1):
    joined = multiway_join(list(pizzeria_rels))
    fact = factorise(joined, t1)
    fact.validate()
    # Figure 1's factorisation has 26 singletons for the 13-tuple join.
    assert fact.size() == 26
    assert fact.tuple_count() == 13
    assert fact.to_relation() == joined


def test_factorise_groups_by_root(pizzeria_rels, t1):
    joined = multiway_join(list(pizzeria_rels))
    fact = factorise(joined, t1)
    pizzas = [entry.value for entry in fact.roots[0]]
    assert pizzas == ["Capricciosa", "Hawaii", "Margherita"]  # sorted


def test_factorise_requires_matching_schema(t1):
    wrong = Relation(("x",), [(1,)])
    with pytest.raises(FactoriseError):
        factorise(wrong, t1)


def test_factorise_rejects_aggregate_nodes():
    from repro.core.ftree import AggregateAttribute, FNode, FTree

    agg_tree = FTree(
        [FNode(AggregateAttribute((("count", None),), frozenset(), "n"))]
    )
    with pytest.raises(FactoriseError):
        factorise(Relation(("n",), [(1,)]), agg_tree)


def test_factorise_check_detects_invalid_tree():
    # R is NOT a product of its projections: {(1,1),(2,2)} ≠ {1,2}×{1,2}.
    relation = Relation(("a", "b"), [(1, 1), (2, 2)])
    tree = build_ftree(["a", "b"], keys={"a": {"r"}, "b": {"s"}})
    with pytest.raises(FactoriseError):
        factorise(relation, tree, check=True)
    # Without the check the construction silently over-approximates.
    assert factorise(relation, tree).tuple_count() == 4


def test_factorise_path_identity_roundtrip():
    relation = Relation(("a", "b", "c"), [(1, 2, 3), (1, 2, 4), (2, 1, 1)])
    fact = factorise_path(relation, "R")
    fact.validate()
    assert fact.to_relation() == relation
    assert fact.ftree.satisfies_path_constraint()


def test_factorise_path_shares_prefixes():
    rows = [(1, i) for i in range(10)] + [(2, 0)]
    fact = factorise_path(Relation(("a", "b"), rows), "R")
    # 2 a-singletons + 11 b-singletons, versus 22 flat singletons.
    assert fact.size() == 13


def test_factorise_path_custom_order():
    relation = Relation(("a", "b"), [(1, 9), (2, 9)])
    fact = factorise_path(relation, "R", order=["b", "a"])
    assert fact.schema() == ["b", "a"]
    assert fact.size() == 3  # one b value shared over two a values


def test_equivalence_class_requires_equal_values():
    tree = build_ftree([(("a", "b"), [])], keys={"a": {"r"}})
    with pytest.raises(FactoriseError):
        factorise(Relation(("a", "b"), [(1, 2)]), tree)


def test_equivalence_class_build_ok():
    tree = build_ftree([(("a", "b"), ["c"])], keys={"a": {"r"}, "c": {"r"}})
    fact = factorise(Relation(("a", "b", "c"), [(1, 1, 5), (2, 2, 6)]), tree)
    assert sorted(fact.iter_tuples()) == [(1, 1, 5), (2, 2, 6)]


def test_forest_build_product_decomposition():
    # R = π_a(R) × π_b(R) holds here, so a two-root forest is valid.
    relation = Relation(("a", "b"), [(a, b) for a in (1, 2) for b in (5, 6)])
    tree = build_ftree(["a", "b"], keys={"a": {"r1"}, "b": {"r2"}})
    fact = factorise(relation, tree, check=True)
    assert fact.size() == 4


def test_join_dependency_factorisation():
    # R satisfies the join dependency (AB, BC): factorise over b → (a, c).
    r = Relation(("a", "b"), [(1, 1), (2, 1), (3, 2)], "R")
    s = Relation(("b", "c"), [(1, 8), (1, 9), (2, 7)], "S")
    joined = multiway_join([r, s])
    tree = build_ftree(
        [("b", ["a", "c"])],
        keys={"b": {"R", "S"}, "a": {"R"}, "c": {"S"}},
    )
    fact = factorise(joined, tree, check=True)
    assert fact.to_relation() == joined
    # b=1 context: 2 a's + 2 c's stored once each (4+1), b=2: 1+1+1.
    assert fact.size() == 2 + 2 + 2 + 1 + 1
