"""Corner cases of the operators: argument orders, class nodes, depth."""

import pytest

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.enumerate import iter_tuples
from repro.core.ftree import build_ftree
from repro.query import Comparison
from repro.relational.relation import Relation


def test_merge_roots_reversed_argument_order():
    r = Relation(("a",), [(1,), (2,), (3,)], "R")
    s = Relation(("b",), [(2,), (3,), (4,)], "S")
    fact = ops.product(factorise_path(r, "R"), factorise_path(s, "S"))
    merged = ops.merge_siblings(fact, "b", "a")  # B first
    merged.validate()
    assert sorted(merged.iter_tuples()) == [(2, 2), (3, 3)]


def test_merge_three_roots_positional_bookkeeping():
    rels = [
        Relation((name,), [(1,), (2,)], name.upper())
        for name in ("a", "b", "c")
    ]
    fact = ops.product(
        ops.product(factorise_path(rels[0], "A"), factorise_path(rels[1], "B")),
        factorise_path(rels[2], "C"),
    )
    merged = ops.merge_siblings(fact, "a", "c")  # non-adjacent roots
    merged.validate()
    assert sorted(merged.iter_tuples()) == [
        (1, 1, 1),
        (1, 1, 2),
        (2, 2, 1),
        (2, 2, 2),
    ]


def test_swap_node_with_equivalence_class():
    tree = build_ftree(
        [("p", [(("a", "b"), ["c"])])],
        keys={"p": {"r"}, "a": {"r"}, "c": {"r"}},
    )
    relation = Relation(
        ("p", "a", "b", "c"), [(1, 5, 5, 9), (1, 6, 6, 8), (2, 5, 5, 7)]
    )
    fact = factorise(relation, tree)
    swapped = ops.swap(fact, "a")  # the class node rises above p
    swapped.validate()
    assert swapped.to_relation() == relation
    root = swapped.ftree.roots[0]
    assert set(root.attributes) == {"a", "b"}


def test_ordered_enumeration_by_class_attribute():
    tree = build_ftree(
        [(("a", "b"), ["c"])],
        keys={"a": {"r"}, "c": {"r"}},
    )
    relation = Relation(("a", "b", "c"), [(2, 2, 9), (1, 1, 8), (3, 3, 7)])
    fact = factorise(relation, tree)
    rows = list(iter_tuples(fact, [("b", "desc")]))  # order by class member
    assert [row[1] for row in rows] == [3, 2, 1]


def test_select_constant_on_root(pizzeria):
    fact = pizzeria.get_factorised("R")
    selected = ops.select_constant(fact, Comparison("pizza", "!=", "Hawaii"))
    values = {e.value for e in selected.roots[0]}
    assert values == {"Capricciosa", "Margherita"}


def test_absorb_class_accumulates_attributes():
    relation = Relation(("a", "b", "c"), [(1, 1, 1), (2, 2, 3)])
    fact = factorise_path(relation, "R")
    once = ops.absorb(fact, "a", "b")  # class (a, b)
    twice = ops.absorb(once, "a", "c")  # class (a, b, c)
    twice.validate()
    assert sorted(twice.iter_tuples()) == [(1, 1, 1)]
    assert set(twice.ftree.roots[0].attributes) == {"a", "b", "c"}


def test_swap_aggregate_node_to_root(pizzeria):
    fact = pizzeria.get_factorised("R")
    aggregated = ops.apply_aggregation(
        fact, "pizza", ["date", "item"], [("count", None)], name="n"
    )
    # The aggregate node can be promoted like any other (Q7's mechanism).
    promoted = ops.swap(aggregated, "n")
    promoted.validate()
    assert promoted.ftree.roots[0].name == "n"
    counts = [e.value for e in promoted.roots[0]]
    assert counts == sorted(counts)  # sorted by component tuple


def test_deeply_nested_swap_chain():
    relation = Relation(
        ("a", "b", "c", "d"),
        [(i, i % 2, i % 3, i % 5) for i in range(12)],
    )
    fact = factorise_path(relation, "R")
    current = fact
    for name in ("d", "c", "b", "d", "a", "c"):
        node = current.ftree.node(name)
        if current.ftree.parent(node) is None:
            continue
        current = ops.swap(current, name)
        current.validate()
    assert current.to_relation() == relation


def test_nest_under_then_swap_back():
    """Nesting then restructuring keeps the relation stable."""
    r = Relation(("a", "v"), [(1, 5), (2, 6)], "R")
    s = Relation(("b",), [(8,), (9,)], "S")
    fact = ops.product(factorise_path(r, "R"), factorise_path(s, "S"))
    nested = ops.nest_root_under(fact, "b", "a")
    swapped = ops.swap(nested, "b")
    swapped.validate()
    assert swapped.schema() == ["b", "a", "v"]  # b promoted to the root
    expected = {(b, a, v) for (a, v) in r.rows for (b,) in s.rows}
    assert set(swapped.iter_tuples()) == expected
