"""Unit tests for the Section 3.2 recursive aggregation algorithms."""

import pytest

from repro.core import aggregates as agg
from repro.core.build import factorise, factorise_path
from repro.core.frep import FRNode
from repro.core.ftree import AggregateAttribute, FNode, build_ftree
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation


@pytest.fixture()
def pizza_fact(pizzeria_rels, t1):
    joined = multiway_join(list(pizzeria_rels))
    return factorise(joined, t1)


def items(fact):
    return list(zip(fact.ftree.roots, fact.roots))


# ---------------------------------------------------------------------------
# count
# ---------------------------------------------------------------------------
def test_count_linear_in_representation(pizza_fact):
    assert agg.count_forest(items(pizza_fact)) == 13


def test_count_union_products():
    # {1,2} × {5,6,7}: count = 2 * 3 even though only 5 singletons exist.
    relation = Relation(("a", "b"), [(a, b) for a in (1, 2) for b in (5, 6, 7)])
    tree = build_ftree(["a", "b"], keys={"a": {"r"}, "b": {"s"}})
    fact = factorise(relation, tree)
    assert agg.count_forest(items(fact)) == 6


def test_count_of_aggregate_singleton():
    # Example 6: ⟨count(item):3⟩ counts as 3 tuples, not 1.
    attr = AggregateAttribute((("count", None),), frozenset({"item"}), "c")
    node = FNode(attr, (), {"r"})
    assert agg.count_union(node, [FRNode((3,), ())]) == 3


def test_count_over_sum_only_aggregate_raises():
    attr = AggregateAttribute((("sum", "p"),), frozenset({"p"}), "s")
    node = FNode(attr, (), {"r"})
    with pytest.raises(agg.CompositionError):
        agg.count_union(node, [FRNode((9,), ())])


# ---------------------------------------------------------------------------
# sum
# ---------------------------------------------------------------------------
def test_sum_simple(pizza_fact):
    assert agg.sum_forest("price", items(pizza_fact)) == 40


def test_sum_multiplies_by_sibling_counts():
    # sum of b over {1,2} × {10,20}: each b counted twice.
    relation = Relation(("a", "b"), [(a, b) for a in (1, 2) for b in (10, 20)])
    tree = build_ftree(["a", "b"], keys={"a": {"r"}, "b": {"s"}})
    fact = factorise(relation, tree)
    assert agg.sum_forest("b", items(fact)) == 60


def test_sum_of_partial_sum_singleton():
    attr = AggregateAttribute((("sum", "p"),), frozenset({"p", "i"}), "s")
    node = FNode(attr, (), {"r"})
    assert agg.sum_union("p", node, [FRNode((9,), ()), FRNode((8,), ())]) == 17


def test_sum_example8_combination():
    """Example 8: v = 1·(1·2·8 + 1·1·6) = 22 for Mario."""
    count_attr = AggregateAttribute((("count", None),), frozenset({"date"}), "cd")
    sum_attr = AggregateAttribute(
        (("sum", "price"),), frozenset({"item", "price"}), "sp"
    )
    pizza = FNode(("pizza",), (FNode(count_attr), FNode(sum_attr)), {"o"})
    union = [
        FRNode("Capricciosa", ([FRNode((2,), ())], [FRNode((8,), ())])),
        FRNode("Margherita", ([FRNode((1,), ())], [FRNode((6,), ())])),
    ]
    assert agg.sum_union("price", pizza, union) == 22


def test_sum_over_count_only_aggregate_raises():
    attr = AggregateAttribute((("count", None),), frozenset({"p"}), "c")
    node = FNode(attr, (), {"r"})
    with pytest.raises(agg.CompositionError):
        agg.sum_union("p", node, [FRNode((3,), ())])


def test_sum_missing_attribute_raises(pizza_fact):
    with pytest.raises(agg.CompositionError):
        agg.sum_forest("nonexistent", items(pizza_fact))


# ---------------------------------------------------------------------------
# min / max
# ---------------------------------------------------------------------------
def test_extrema(pizza_fact):
    assert agg.extremum_forest("min", "price", items(pizza_fact)) == 1
    assert agg.extremum_forest("max", "price", items(pizza_fact)) == 6


def test_extrema_ignore_multiplicities():
    relation = Relation(("a", "b"), [(a, b) for a in (1, 2, 3) for b in (5, 9)])
    tree = build_ftree(["a", "b"], keys={"a": {"r"}, "b": {"s"}})
    fact = factorise(relation, tree)
    assert agg.extremum_forest("min", "b", items(fact)) == 5


def test_extremum_of_partial(pizza_fact):
    attr = AggregateAttribute((("min", "p"),), frozenset({"p"}), "m")
    node = FNode(attr, (), {"r"})
    assert agg.extremum_union("min", "p", node, [FRNode((4,), ()), FRNode((2,), ())]) == 2


def test_extremum_empty_raises():
    node = FNode(("a",), (), {"r"})
    with pytest.raises(agg.EmptyAggregateError):
        agg.extremum_union("min", "a", node, [])


# ---------------------------------------------------------------------------
# Composite evaluation (Section 3.2.4)
# ---------------------------------------------------------------------------
def test_evaluate_components(pizza_fact):
    values = agg.evaluate_components(
        [("sum", "price"), ("count", None), ("min", "price"), ("max", "price")],
        items(pizza_fact),
    )
    assert values == (40, 13, 1, 6)


def test_evaluate_components_unknown_function(pizza_fact):
    with pytest.raises(agg.CompositionError):
        agg.evaluate_components([("median", "price")], items(pizza_fact))


def test_cached_evaluator_matches_plain(pizza_fact):
    cached = agg.CachedEvaluator()
    values = cached.components(
        [("sum", "price"), ("count", None)], items(pizza_fact)
    )
    assert values == (40, 13)
    # A second call hits the cache and returns identical values.
    assert cached.components(
        [("sum", "price"), ("count", None)], items(pizza_fact)
    ) == (40, 13)


# ---------------------------------------------------------------------------
# Proposition 2: partial function selection and composability
# ---------------------------------------------------------------------------
def test_partial_functions_sum_inside():
    needed = agg.partial_functions_for([("sum", "price")], {"price", "item"})
    assert needed == (("sum", "price"),)


def test_partial_functions_sum_outside_becomes_count():
    needed = agg.partial_functions_for([("sum", "price")], {"date"})
    assert needed == (("count", None),)


def test_partial_functions_avg_keeps_shared_count():
    needed = agg.partial_functions_for(
        [("sum", "price"), ("count", None)], {"price"}
    )
    assert needed == (("sum", "price"), ("count", None))


def test_partial_functions_extremum_outside_is_empty():
    assert agg.partial_functions_for([("min", "price")], {"date"}) == ()


def test_composable_rules():
    count_partial = AggregateAttribute(
        (("count", None),), frozenset({"d"}), "c"
    )
    sum_partial = AggregateAttribute(
        (("sum", "p"),), frozenset({"p"}), "s"
    )
    assert agg.composable(("count", None), count_partial)
    assert not agg.composable(("count", None), sum_partial)
    assert agg.composable(("sum", "p"), sum_partial)
    assert agg.composable(("sum", "x"), count_partial)  # x outside: weight
    assert not agg.composable(("sum", "d"), count_partial)  # d was counted away
    assert agg.composable(("min", "p"), count_partial)  # extrema ignore counts
