"""Unit tests for factorised representations."""

import pytest

from repro.core.build import factorise, factorise_path
from repro.core.frep import (
    Factorisation,
    FactorisationError,
    FRNode,
    empty_like,
    singleton_union,
)
from repro.core.ftree import build_ftree, path_ftree
from repro.relational.relation import Relation


@pytest.fixture()
def example3():
    """Example 3: R = {◇,♣} × {1,2,3} factorised two ways."""
    relation = Relation(
        ("A", "B"),
        [(a, b) for a in ("c", "d") for b in (1, 2, 3)],
    )
    tree = build_ftree(["A", "B"], keys={"A": {"r1"}, "B": {"r2"}})
    return relation, factorise(relation, tree)


def test_example3_product_factorisation_size(example3):
    relation, fact = example3
    # E2 = (union of 2 singletons) × (union of 3) = 5 singletons,
    # versus 12 singletons in the trivial union-of-products form E1.
    assert fact.size() == 5
    assert fact.tuple_count() == 6
    assert len(relation) * len(relation.schema) == 12


def test_flatten_reproduces_relation(example3):
    relation, fact = example3
    assert fact.to_relation() == relation


def test_schema_preorder(example3):
    _, fact = example3
    assert fact.schema() == ["A", "B"]


def test_iter_tuples_no_order(example3):
    _, fact = example3
    assert sorted(fact.iter_tuples()) == sorted(
        (a, b) for a in ("c", "d") for b in (1, 2, 3)
    )


def test_empty_like():
    tree = path_ftree(("x", "y"), "R")
    fact = empty_like(tree)
    assert fact.is_empty()
    assert fact.size() == 0
    assert list(fact.iter_tuples()) == []


def test_root_count_must_match():
    tree = path_ftree(("x",), "R")
    with pytest.raises(FactorisationError):
        Factorisation(tree, [[], []])


def test_validate_sorted_ok():
    fact = factorise_path(Relation(("x",), [(2,), (1,), (3,)]), "R")
    fact.validate()  # does not raise


def test_validate_detects_unsorted():
    tree = path_ftree(("x",), "R")
    fact = Factorisation(tree, [[FRNode(2, ()), FRNode(1, ())]])
    with pytest.raises(FactorisationError):
        fact.validate()


def test_validate_detects_duplicates():
    tree = path_ftree(("x",), "R")
    fact = Factorisation(tree, [[FRNode(1, ()), FRNode(1, ())]])
    with pytest.raises(FactorisationError):
        fact.validate()


def test_validate_detects_misaligned_children():
    tree = path_ftree(("x", "y"), "R")
    fact = Factorisation(tree, [[FRNode(1, ())]])  # missing child fragment
    with pytest.raises(FactorisationError):
        fact.validate()


def test_equivalence_class_values_repeat():
    tree = build_ftree([(("a", "b"), [])], keys={"a": {"r"}})
    fact = Factorisation(tree, [singleton_union(7)])
    assert list(fact.iter_tuples()) == [(7, 7)]
    assert fact.schema() == ["a", "b"]


def test_tuple_count_multiplies_products():
    tree = build_ftree(["a", "b"], keys={"a": {"r"}, "b": {"s"}})
    fact = Factorisation(
        tree,
        [
            [FRNode(1, ()), FRNode(2, ())],
            [FRNode(1, ()), FRNode(2, ()), FRNode(3, ())],
        ],
    )
    assert fact.tuple_count() == 6
    assert fact.size() == 5


def test_pretty_limit():
    fact = factorise_path(Relation(("x",), [(i,) for i in range(100)]), "R")
    assert "..." in fact.pretty(limit=3)


def test_repr_mentions_size(example3):
    _, fact = example3
    assert "size=5" in repr(fact)
