"""Delta objects: immutable descriptions of mutations."""

import pytest

from repro.ivm.delta import Delta, DeltaError, Deletion, Insertion
from repro.query import Comparison, Equality


def test_insert_factory_freezes_rows():
    delta = Delta.insert("R", [["a", 1], ("b", 2)])
    (change,) = delta.changes
    assert isinstance(change, Insertion)
    assert change.rows == (("a", 1), ("b", 2))
    assert change.columns is None
    assert change.kind == "insert"


def test_insert_columns_arity_checked():
    with pytest.raises(DeltaError, match="arity"):
        Insertion("R", ((1, 2, 3),), columns=("a", "b"))


def test_delete_rows_or_predicate_not_both():
    with pytest.raises(DeltaError, match="not both"):
        Deletion("R", rows=((1,),), predicate=lambda b: True)


def test_delete_predicate_conditions():
    change = Deletion(
        "R",
        predicate=(
            Comparison("price", ">", 5),
            Equality("a", "b"),
        ),
    )
    assert change.matches({"price": 6, "a": 1, "b": 1})
    assert not change.matches({"price": 6, "a": 1, "b": 2})
    assert not change.matches({"price": 5, "a": 1, "b": 1})


def test_delete_expression_predicate():
    from repro.expr import col

    change = Deletion("R", predicate=(Comparison(col("x") * 2, ">=", 10),))
    assert change.matches({"x": 5})
    assert not change.matches({"x": 4})


def test_delete_without_selector_matches_everything():
    change = Deletion("R")
    assert change.matches({"anything": 1})


def test_composition_preserves_order():
    delta = (
        Delta.insert("A", [(1,)])
        + Delta.delete("B", rows=[(2,)])
        + Delta.insert("A", [(3,)])
    )
    assert [c.kind for c in delta] == ["insert", "delete", "insert"]
    assert delta.relations() == ("A", "B")
    assert len(delta) == 3 and bool(delta)


def test_delta_rejects_foreign_changes():
    with pytest.raises(DeltaError):
        Delta(("not a change",))


def test_str_forms():
    assert "«2 rows»" in str(Delta.insert("R", [(1,), (2,)]))
    assert "«all rows»" in str(Deletion("R"))
    assert "price > 5" in str(
        Deletion("R", predicate=(Comparison("price", ">", 5),))
    )
