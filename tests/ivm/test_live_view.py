"""LiveView: maintained aggregate results over the change log."""

import pytest

from repro import Delta, connect
from repro.data.pizzeria import pizzeria_database


@pytest.fixture
def session():
    return connect(pizzeria_database())


def _fresh(session, query):
    return sorted(session.execute(query, engine="rdb").rows)


def test_sum_updates_additively(session):
    query = (
        session.query("R").group_by("customer").sum("price", "revenue")
    )
    live = session.watch(query)
    session.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.incremental == 1
    assert live.stats.recomputes == 0
    assert live.stats.rebuilds == 0


def test_count_and_avg(session):
    query = (
        session.query("R")
        .group_by("pizza")
        .count("orders")
        .avg("price", "mean_price")
    )
    live = session.watch(query)
    session.delete("Orders", [("Pietro", "Friday", "Hawaii")])
    session.insert("Items", [("ham", 3)])
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.recomputes == 0


def test_group_disappears_when_support_drains(session):
    query = session.query("R").group_by("customer").sum("price", "rev")
    live = session.watch(query)
    session.delete("Orders", [("Pietro", "Friday", "Hawaii")])
    rows = live.result.rows
    assert all(row[0] != "Pietro" for row in rows)
    assert sorted(rows) == _fresh(session, query.to_query())


def test_min_max_recompute_affected_group_only(session):
    query = (
        session.query("R")
        .group_by("pizza")
        .min("price", "cheapest")
        .max("price", "dearest")
    )
    live = session.watch(query)
    live.result  # prime
    # Deleting the base price (6) moves every pizza's extrema.
    session.delete("Items", [("base", 6)])
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.recomputes == 0
    assert live.stats.groups_touched > 0


def test_having_order_limit_reapplied(session):
    query = (
        session.query("R")
        .group_by("customer")
        .sum("price", "revenue")
        .having("revenue", ">", 5)
        .order_by("revenue", desc=True)
        .limit(2)
    )
    live = session.watch(query)
    session.insert("Orders", [("Lucia", "Monday", "Capricciosa")])
    expected = session.execute(query.to_query(), engine="rdb").rows
    assert live.result.rows == expected


def test_expression_aggregate_maintained(session):
    from repro import col

    query = session.query("R").group_by("customer").sum(
        col("price") * 2, alias="double"
    )
    live = session.watch(query)
    session.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.recomputes == 0


def test_filtered_aggregate_maintained(session):
    query = (
        session.query("R")
        .where("price", ">", 1)
        .group_by("customer")
        .sum("price", "rev")
    )
    live = session.watch(query)
    session.insert("Orders", [("Lucia", "Friday", "Capricciosa")])
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.recomputes == 0


def test_unsupported_join_query_recomputes(session):
    query = (
        session.query("Orders", "Items")
        .group_by("customer")
        .count("n")
    )
    live = session.watch(query)
    before = sorted(live.result.rows)
    session.insert("Items", [("truffle", 9)])
    after = sorted(live.result.rows)
    assert live.stats.recomputes >= 1
    assert after == sorted(
        session.execute(query.to_query(), engine="rdb").rows
    )
    assert before != after  # the join grew


def test_factorisation_rebuild_does_not_break_live_view(session):
    database = session.database
    query = session.query("R").group_by("customer").sum("price", "rev")
    live = session.watch(query)
    live.result
    # A direct branch-violating insert rebuilds R's factorisation over
    # its path fallback tree — but the change's resolved base rows are
    # still an exact delta, so the live view stays incremental.
    schema = database.flat("R").schema
    row = dict(zip(schema, database.flat("R").rows[0]))
    row["date"], row["customer"] = "Sunday", "Zoe"
    row["item"], row["price"] = "caviar", 42
    session.insert("R", [tuple(row[a] for a in schema)])
    assert database.maintenance.rebuilds == 1
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.recomputes == 0


def test_rebuilt_routed_view_forces_recompute():
    # A projection view does not represent all of Orders' attributes,
    # so routed maintenance must rebuild it — and the live view over it
    # must fall back to recomputation for that change.
    from repro.core.build import factorise
    from repro.core.ftree import build_ftree
    from repro.data.pizzeria import pizzeria_database

    database = pizzeria_database()
    projection = database.flat("R").project(("pizza", "item", "price"))
    projection.name = "V"
    tree = build_ftree(
        [("pizza", [("item", ["price"])])],
        keys={
            "pizza": {"Orders", "Pizzas"},
            "item": {"Pizzas", "Items"},
            "price": {"Items"},
        },
    )
    database.add_relation(projection)
    database.add_factorised("V", factorise(projection, tree))
    session = connect(database)
    query = session.query("V").group_by("pizza").sum("price", "s")
    live = session.watch(query)
    live.result
    # Margherita's only order disappears: the projection loses its rows.
    session.delete("Orders", [("Mario", "Tuesday", "Margherita")])
    assert database.maintenance.rebuilds >= 1
    assert "not represented" in database.maintenance.rebuild_reasons[-1]
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert all(row[0] != "Margherita" for row in live.result.rows)
    assert live.stats.recomputes >= 1


def test_mutation_through_database_directly_is_observed(session):
    query = session.query("R").group_by("customer").sum("price", "rev")
    live = session.watch(query)
    live.result
    # Bypass the session entirely: the version stamp still propagates.
    session.database.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert sorted(live.result.rows) == _fresh(session, query.to_query())
    assert live.stats.recomputes == 0


def test_mutation_through_sql_is_observed(session):
    query = session.query("R").group_by("customer").sum("price", "rev")
    live = session.watch(query)
    live.result
    session.sql(
        "INSERT INTO Orders (customer, date, pizza) "
        "VALUES ('Lucia', 'Monday', 'Margherita')"
    )
    assert sorted(live.result.rows) == _fresh(session, query.to_query())


def test_explain_surfaces_maintenance_stats(session):
    live = session.watch(
        session.query("R").group_by("customer").sum("price", "rev")
    )
    session.apply(Delta.insert("Orders", [("Lucia", "Monday", "Margherita")]))
    text = live.result.explain()
    assert "maintenance:" in text
    assert "0 rebuilds" in text
    assert "incremental ratio 1.00" in text
    assert "live view" in text


def test_refresh_counts_as_recompute(session):
    live = session.watch(
        session.query("R").group_by("customer").sum("price", "rev")
    )
    live.refresh()
    assert live.stats.recomputes == 1
    assert live.stats.incremental_ratio < 1.0


def test_live_view_convenience_surface(session):
    live = session.watch(
        session.query("R").group_by("customer").sum("price", "rev")
    )
    assert len(live) == len(list(live)) == len(live.rows)
    assert "customer" in live.pretty()
    assert "LiveView" in repr(live)


def test_global_aggregate_over_drained_relation_matches_engines():
    from repro import connect as _connect
    from repro.relational.relation import Relation as _Relation

    session = _connect(_Relation(("a", "b"), [(1, 5), (2, 7)], "U"))
    live = session.watch(session.query("U").count("n").sum("b", "t"))
    session.delete("U")  # drain it completely
    assert live.result.rows == [(0, None)]
    assert live.result.rows == session.execute(
        session.query("U").count("n").sum("b", "t").to_query(), engine="fdb"
    ).rows


def test_live_stats_count_rows(session):
    live = session.watch(
        session.query("R").group_by("customer").sum("price", "rev")
    )
    session.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert live.result is not None
    assert live.stats.rows_inserted > 0
    assert "+0/-0" not in live.result.explain().splitlines()[-1]
