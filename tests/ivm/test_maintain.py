"""Incremental maintenance of factorised views under deltas.

The invariant throughout: after any mutation, every registered
factorisation represents exactly the view it would represent if rebuilt
from scratch — but the incremental path must get there by local
splicing (bounded nodes touched, zero rebuilds) whenever the f-tree's
independence assumptions allow it.
"""

import pytest

from repro.data.pizzeria import pizzeria_database
from repro.database import Database
from repro.ivm.delta import Delta, DeltaError
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation


def _expected_view(database: Database) -> set:
    """R recomputed from the base relations, as a set of tuples."""
    joined = multiway_join(
        [database.flat(n) for n in ("Orders", "Pizzas", "Items")]
    )
    schema = database.get_factorised("R").schema()
    return set(joined.project(schema, dedup=False).rows)


def _fact_rows(database: Database, name: str = "R") -> set:
    return set(database.get_factorised(name).iter_tuples())


def assert_view_consistent(database: Database) -> None:
    assert _fact_rows(database) == _expected_view(database)
    # The stale flat copy refreshes to the same content.
    flat = database.flat("R")
    fact = database.get_factorised("R")
    assert set(flat.project(fact.schema(), dedup=False).rows) == _fact_rows(
        database
    )


# ---------------------------------------------------------------------------
# Routed maintenance (base-relation deltas)
# ---------------------------------------------------------------------------
def test_orders_insert_splices_owned_branch():
    database = pizzeria_database()
    before = database.get_factorised("R").size()
    report = database.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert report.inserted == 1 and report.rebuilds == 0
    assert_view_consistent(database)
    assert database.maintenance.rebuilds == 0
    # Locality: far fewer nodes touched than the view holds.
    assert database.maintenance.nodes_touched < before


def test_orders_insert_for_package_without_orders_builds_fragment():
    database = pizzeria_database()
    # Margherita exists in Pizzas; give a brand-new pizza its first order.
    database.insert("Pizzas", [("Quattro", "base"), ("Quattro", "ham")])
    database.insert("Orders", [("Lucia", "Sunday", "Quattro")])
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    rows = _fact_rows(database)
    assert ("Quattro", "Sunday", "Lucia", "base", 6) in rows
    assert ("Quattro", "Sunday", "Lucia", "ham", 1) in rows


def test_orders_delete_prunes_and_propagates():
    database = pizzeria_database()
    # Pietro's only order: deleting it must erase Pietro entirely, and
    # Hawaii keeps Lucia's Friday order.
    database.delete("Orders", [("Pietro", "Friday", "Hawaii")])
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    assert all(row[2] != "Pietro" for row in _fact_rows(database))


def test_orders_delete_last_order_of_pizza_removes_entry():
    database = pizzeria_database()
    database.delete("Orders", [("Mario", "Tuesday", "Margherita")])
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    # Margherita had exactly one order: the whole entry is gone.
    assert all(row[0] != "Margherita" for row in _fact_rows(database))


def test_items_insert_new_price_reaches_every_pizza():
    database = pizzeria_database()
    database.insert("Items", [("ham", 2)])  # a second price for ham
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    rows = _fact_rows(database)
    assert ("Capricciosa", "Monday", "Mario", "ham", 2) in rows
    assert ("Hawaii", "Friday", "Lucia", "ham", 2) in rows


def test_items_delete_price_prunes_item_when_unpriced():
    database = pizzeria_database()
    database.delete("Items", [("ham", 1)])
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    assert all(row[3] != "ham" for row in _fact_rows(database))


def test_pizzas_delete_removes_pair_only():
    database = pizzeria_database()
    database.delete("Pizzas", [("Capricciosa", "ham")])
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    rows = _fact_rows(database)
    assert not any(
        row[0] == "Capricciosa" and row[3] == "ham" for row in rows
    )
    assert any(row[0] == "Hawaii" and row[3] == "ham" for row in rows)


def test_pizzas_insert_builds_price_subtree_from_items():
    database = pizzeria_database()
    database.insert("Pizzas", [("Margherita", "mushrooms")])
    assert database.maintenance.rebuilds == 0
    assert_view_consistent(database)
    assert ("Margherita", "Tuesday", "Mario", "mushrooms", 1) in _fact_rows(
        database
    )


def test_insert_that_joins_nothing_is_a_noop():
    database = pizzeria_database()
    before = _fact_rows(database)
    database.insert("Orders", [("Zoe", "Monday", "NoSuchPizza")])
    assert _fact_rows(database) == before
    assert database.maintenance.rebuilds == 0


def test_set_semantics_duplicate_insert_and_full_delete():
    database = pizzeria_database()
    report = database.insert("Orders", [("Mario", "Monday", "Capricciosa")])
    assert report.inserted == 0  # already present
    report = database.delete("Orders", [("Nobody", "Never", "Nothing")])
    assert report.deleted == 0
    assert_view_consistent(database)


def test_predicate_delete_resolves_rows():
    database = pizzeria_database()
    from repro.query import Comparison

    report = database.delete("Items", where=(Comparison("price", ">", 2),))
    assert report.deleted == 1  # only base costs 6
    assert_view_consistent(database)
    assert all(row[4] <= 2 for row in _fact_rows(database))


def test_batched_delta_is_applied_in_order():
    database = pizzeria_database()
    delta = Delta.insert("Items", [("truffle", 9)]) + Delta.insert(
        "Pizzas", [("Margherita", "truffle")]
    )
    report = database.apply(delta)
    assert report.inserted == 2
    assert_view_consistent(database)
    assert ("Margherita", "Tuesday", "Mario", "truffle", 9) in _fact_rows(
        database
    )


# ---------------------------------------------------------------------------
# Direct maintenance (deltas addressed to the view itself)
# ---------------------------------------------------------------------------
def test_direct_path_view_splices_exactly():
    database = Database()
    rel = Relation(("a", "b", "c"), [(1, 1, 1), (1, 2, 1), (2, 1, 1)], "P")
    from repro.core.build import factorise_path

    database.add_relation(rel)
    database.add_factorised("P", factorise_path(rel, key="P"))
    database.insert("P", [(1, 3, 9)])
    database.delete("P", [(2, 1, 1)])
    assert database.maintenance.rebuilds == 0
    assert _fact_rows(database, "P") == {(1, 1, 1), (1, 2, 1), (1, 3, 9)}
    assert set(database.flat("P").rows) == {(1, 1, 1), (1, 2, 1), (1, 3, 9)}


def test_direct_new_root_value_is_exact_even_when_branching():
    database = pizzeria_database()
    schema = database.flat("R").schema
    row = dict(zip(schema, database.flat("R").rows[0]))
    row["pizza"] = "Fresh"  # a new root value: the row factorises alone
    fresh = tuple(row[a] for a in schema)
    database.insert("R", [fresh])
    assert database.maintenance.rebuilds == 0
    positions = [schema.index(a) for a in database.get_factorised("R").schema()]
    assert tuple(fresh[p] for p in positions) in _fact_rows(database)


def test_direct_branch_violation_falls_back_to_path_tree():
    database = pizzeria_database()
    schema = database.flat("R").schema
    row = dict(zip(schema, database.flat("R").rows[0]))
    row["date"], row["customer"] = "Sunday", "Zoe"
    row["item"], row["price"] = "caviar", 42
    fresh = tuple(row[a] for a in schema)
    database.insert("R", [fresh])
    stats = database.maintenance
    assert stats.rebuilds == 1
    assert "independent branches" in stats.rebuild_reasons[-1]
    # The fallback path factorisation represents exactly the mutated
    # view — no cross-product contamination.
    fact = database.get_factorised("R")
    assert all(len(node.children) <= 1 for node in fact.ftree.nodes())
    flat = set(database.flat("R").project(fact.schema(), dedup=False).rows)
    assert set(fact.iter_tuples()) == flat
    # Dependency keys survive, so routed maintenance keeps working.
    database.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert database.maintenance.rebuilds == 1  # still just the one


def test_direct_delete_violation_falls_back():
    database = pizzeria_database()
    # Removing one (pizza, item) combination from a customer×item block
    # leaves a non-product remainder.
    doomed = ("Capricciosa", "Friday", "Mario", "ham", 1)
    schema = database.get_factorised("R").schema()
    flat_schema = database.flat("R").schema
    positions = [schema.index(a) for a in flat_schema]
    database.delete("R", [tuple(doomed[p] for p in positions)])
    stats = database.maintenance
    assert stats.rebuilds == 1
    fact = database.get_factorised("R")
    assert doomed not in set(fact.iter_tuples())
    flat = set(database.flat("R").project(fact.schema(), dedup=False).rows)
    assert set(fact.iter_tuples()) == flat


def test_insert_missing_column_rejected():
    database = pizzeria_database()
    with pytest.raises(DeltaError, match="misses columns"):
        database.insert("Orders", [("Mario",)], columns=("customer",))


def test_insert_unknown_column_rejected():
    database = pizzeria_database()
    with pytest.raises(DeltaError, match="unknown columns"):
        database.insert(
            "Orders",
            [("Mario", "Monday", "X", 1)],
            columns=("customer", "date", "pizza", "nope"),
        )


def test_unknown_relation_rejected():
    database = pizzeria_database()
    from repro.database import UnknownRelationError

    with pytest.raises(UnknownRelationError):
        database.insert("Ghost", [(1,)])


def test_column_reorder_on_insert():
    database = pizzeria_database()
    database.insert(
        "Orders",
        [("Margherita", "Lucia", "Monday")],
        columns=("pizza", "customer", "date"),
    )
    assert ("Lucia", "Monday", "Margherita") in database.flat("Orders").rows
    assert_view_consistent(database)


def test_version_and_log():
    database = pizzeria_database()
    version = database.version
    database.insert("Orders", [("Lucia", "Monday", "Margherita")])
    assert database.version == version + 1
    records = database.changes_since(version)
    assert len(records) == 1 and records[0].kind == "insert"
    (record,) = records
    assert record.rows == (("Lucia", "Monday", "Margherita"),)
    assert "R" in record.view_deltas
    delta = record.view_deltas["R"]
    assert not delta.rebuilt and len(delta.added) == 1
    assert database.changes_since(database.version) == []


def test_log_truncation_reports_none():
    from repro.database import MAX_LOG

    database = Database([Relation(("a",), [(0,)], "T")])
    start = database.version
    for i in range(MAX_LOG + 5):
        database.insert("T", [(i + 1,)])
    assert database.changes_since(start) is None
    assert database.changes_since(database.version - 3) is not None


def test_apply_validates_whole_delta_up_front():
    """A malformed later change must leave the database untouched."""
    from repro.database import UnknownRelationError

    database = pizzeria_database()
    version = database.version
    rows = list(database.flat("Items").rows)
    with pytest.raises(UnknownRelationError):
        database.apply(
            Delta.insert("Items", [("truffle", 9)])
            + Delta.insert("NoSuchRelation", [(1,)])
        )
    assert database.version == version
    assert database.flat("Items").rows == rows
    with pytest.raises(DeltaError, match="arity"):
        database.apply(
            Delta.insert("Items", [("truffle", 9)])
            + Delta.insert("Items", [("bad", 1, 2)])
        )
    assert database.flat("Items").rows == rows
