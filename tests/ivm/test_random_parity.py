"""Randomised parity: maintained results vs fresh runs on every engine.

Seeded sequences of random inserts and deletes are applied to the
pizzeria and generated workloads; at checkpoints the maintained
:class:`LiveView` result, a fresh FDB run, the RDB baseline, and the
(delta-forwarded) sqlite backend must all agree — and base-relation
deltas must never have forced a factorisation rebuild.

~200 operations run across the two suites, as the PR's acceptance
criteria require.
"""

import random

import pytest

from repro import connect
from repro.data.pizzeria import pizzeria_database
from repro.data.workloads import build_workload_database

ENGINES = ("fdb", "rdb", "sqlite")


def _check_parity(session, live_views):
    for live in live_views:
        maintained = sorted(live.result.rows)
        for engine in ENGINES:
            fresh = sorted(
                session.execute(live.query, engine=engine).rows
            )
            assert maintained == fresh, (
                f"{engine} disagrees with the maintained view for "
                f"{live.query}: {fresh[:3]} vs {maintained[:3]}"
            )


def _random_row(rng, relation, pools):
    return tuple(rng.choice(pools[attribute]) for attribute in relation.schema)


def _run_ops(session, rng, targets, pools, live_views, ops, check_every):
    database = session.database
    for step in range(ops):
        name = rng.choice(targets)
        flat = database.flat(name)
        if flat.rows and rng.random() < 0.45:
            victim = rng.choice(flat.rows)
            session.delete(name, [victim])
        else:
            session.insert(name, [_random_row(rng, flat, pools)])
        if (step + 1) % check_every == 0:
            _check_parity(session, live_views)
    _check_parity(session, live_views)


def test_random_parity_pizzeria():
    rng = random.Random("ivm-parity/pizzeria/2013")
    session = connect(pizzeria_database())
    pools = {
        "customer": ["Mario", "Pietro", "Lucia", "Zoe", "Ada"],
        "date": ["Monday", "Tuesday", "Friday", "Sunday"],
        "pizza": ["Margherita", "Capricciosa", "Hawaii", "Quattro"],
        "item": ["base", "ham", "mushrooms", "pineapple", "olives"],
        "price": [1, 2, 3, 6, 9],
    }
    live_views = [
        session.watch(
            session.query("R").group_by("customer").sum("price", "revenue")
        ),
        session.watch(
            session.query("R")
            .group_by("pizza")
            .count("orders")
            .avg("price", "mean_price")
        ),
        session.watch(
            session.query("R")
            .group_by("date")
            .min("price", "lo")
            .max("price", "hi")
        ),
    ]
    _run_ops(
        session,
        rng,
        targets=("Orders", "Pizzas", "Items"),
        pools=pools,
        live_views=live_views,
        ops=120,
        check_every=12,
    )
    # Base-relation deltas are always independence-preserving.
    assert session.database.maintenance.rebuilds == 0
    assert session.database.maintenance.incremental_ratio == 1.0
    for live in live_views:
        assert live.stats.recomputes == 0


@pytest.mark.parametrize("seed", ["a", "b"])
def test_random_parity_generated_workload(seed):
    rng = random.Random(f"ivm-parity/workload/{seed}")
    database = build_workload_database(scale=0.02)
    session = connect(database)
    customers = sorted(
        {row[0] for row in database.flat("Orders").rows}
    ) + ["cNEW"]
    dates = sorted({row[1] for row in database.flat("Orders").rows})[:12] + [
        "dNEW1",
        "dNEW2",
    ]
    packages = sorted(
        {row[0] for row in database.flat("Packages").rows}
    ) + ["pNEW"]
    items = sorted({row[0] for row in database.flat("Items").rows})[:10] + [
        "iNEW"
    ]
    pools = {
        "customer": customers,
        "date": dates,
        "package": packages,
        "item": items,
        "price": list(range(1, 21)),
    }
    live_views = [
        session.watch(
            session.query("R1").group_by("customer").sum("price", "revenue")
        ),
        session.watch(
            session.query("R1")
            .group_by("package")
            .count("n")
            .max("price", "dearest")
        ),
    ]
    _run_ops(
        session,
        rng,
        targets=("Orders", "Packages", "Items"),
        pools=pools,
        live_views=live_views,
        ops=40,
        check_every=10,
    )
    assert session.database.maintenance.rebuilds == 0
    for live in live_views:
        assert live.stats.recomputes == 0
        assert live.stats.incremental > 0
