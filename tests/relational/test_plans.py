"""Eager-aggregation plans must agree with lazy evaluation (Yan-Larson)."""

import random

import pytest

from repro.database import Database
from repro.query import Query, QueryError, aggregate
from repro.relational.engine import RDBEngine
from repro.relational.plans import eager_aggregation
from repro.relational.relation import Relation


@pytest.fixture()
def db(pizzeria_rels):
    return Database(pizzeria_rels)


PIZZA_JOIN = ("Orders", "Pizzas", "Items")


def run_both(query, db):
    lazy = RDBEngine("hash").execute(query, db)
    eager = eager_aggregation(query, db).execute(db)
    return lazy, eager


@pytest.mark.parametrize(
    "group,function,attribute",
    [
        (("customer",), "sum", "price"),
        (("customer",), "count", None),
        (("pizza",), "min", "price"),
        (("pizza",), "max", "price"),
        (("customer", "pizza"), "avg", "price"),
        ((), "sum", "price"),
        (("date",), "avg", "price"),
    ],
)
def test_eager_matches_lazy(db, group, function, attribute):
    query = Query(
        relations=PIZZA_JOIN,
        group_by=group,
        aggregates=(aggregate(function, attribute, "out"),),
    )
    lazy, eager = run_both(query, db)
    assert lazy == eager


def test_eager_multiple_aggregates(db):
    query = Query(
        relations=PIZZA_JOIN,
        group_by=("pizza",),
        aggregates=(
            aggregate("sum", "price", "s"),
            aggregate("count", None, "n"),
            aggregate("min", "price", "lo"),
            aggregate("avg", "price", "m"),
        ),
    )
    lazy, eager = run_both(query, db)
    assert lazy == eager


def test_eager_with_comparisons(db):
    from repro.query import Comparison

    query = Query(
        relations=PIZZA_JOIN,
        comparisons=(Comparison("price", "<=", 2),),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "s"),),
    )
    lazy, eager = run_both(query, db)
    assert lazy == eager


def test_eager_group_by_join_attribute(db):
    # Grouping by an attribute that is also a join attribute: it is
    # preserved through every pre-aggregation that owns it.
    query = Query(
        relations=PIZZA_JOIN,
        group_by=("item",),
        aggregates=(aggregate("sum", "price", "s"),),
    )
    lazy, eager = run_both(query, db)
    assert lazy == eager


def test_eager_aggregate_on_join_attribute(db):
    # Summing a join attribute exercises the "preserved column" path.
    numeric = Database(
        [
            Relation(("a", "b"), [(1, 2), (1, 3), (4, 2)], "X"),
            Relation(("b", "c"), [(2, 5), (3, 6)], "Y"),
        ]
    )
    query = Query(
        relations=("X", "Y"),
        group_by=("a",),
        aggregates=(aggregate("sum", "b", "s"), aggregate("avg", "b", "m")),
    )
    lazy = RDBEngine("hash").execute(query, numeric)
    eager = eager_aggregation(query, numeric).execute(numeric)
    assert lazy == eager


def test_eager_ordering_and_limit(db):
    query = Query(
        relations=PIZZA_JOIN,
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    ).with_order([("rev", "desc")]).with_limit(2)
    lazy, eager = run_both(query, db)
    assert lazy.rows == eager.rows


def test_eager_having(db):
    from repro.query import Having

    query = Query(
        relations=PIZZA_JOIN,
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
        having=(Having("rev", ">", 10),),
    )
    lazy, eager = run_both(query, db)
    assert lazy == eager


def test_eager_requires_aggregates(db):
    with pytest.raises(QueryError):
        eager_aggregation(Query(relations=PIZZA_JOIN), db)


def test_explain_mentions_preaggregations(db):
    query = Query(
        relations=PIZZA_JOIN,
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    text = eager_aggregation(query, db).explain()
    assert "pre:" in text and "Items" in text and "rev" in text


def test_eager_randomised_schemas():
    rng = random.Random(99)
    for trial in range(15):
        x = Relation(
            ("a", "b"),
            [(rng.randint(0, 3), rng.randint(0, 3)) for _ in range(12)],
            "X",
        )
        y = Relation(
            ("b", "c"),
            [(rng.randint(0, 3), rng.randint(0, 5)) for _ in range(10)],
            "Y",
        )
        db = Database([x.distinct(), y.distinct()])
        query = Query(
            relations=("X", "Y"),
            group_by=("a",),
            aggregates=(
                aggregate("sum", "c", "s"),
                aggregate("count", None, "n"),
            ),
        )
        lazy = RDBEngine("hash").execute(query, db)
        eager = eager_aggregation(query, db).execute(db)
        assert lazy == eager, f"trial {trial}"
