"""Tests for CSV loading/saving."""

import io

import pytest

from repro.relational.csvio import (
    CSVFormatError,
    load_database,
    load_relation,
    read_relation,
    save_relation,
    write_relation,
)
from repro.relational.relation import Relation


def test_read_with_type_inference():
    handle = io.StringIO("a,b,c\n1,2.5,x\n2,3.5,y\n")
    relation = read_relation(handle, "T")
    assert relation.schema == ("a", "b", "c")
    assert relation.rows == [(1, 2.5, "x"), (2, 3.5, "y")]
    assert isinstance(relation.rows[0][0], int)
    assert isinstance(relation.rows[0][1], float)


def test_mixed_column_falls_back_to_str():
    handle = io.StringIO("a\n1\nx\n")
    relation = read_relation(handle)
    assert relation.rows == [("1",), ("x",)]


def test_int_column_stays_int_not_float():
    handle = io.StringIO("a\n1\n2\n")
    assert read_relation(handle).rows == [(1,), (2,)]


def test_empty_file_rejected():
    with pytest.raises(CSVFormatError):
        read_relation(io.StringIO(""))


def test_ragged_row_rejected():
    with pytest.raises(CSVFormatError):
        read_relation(io.StringIO("a,b\n1\n"))


def test_blank_lines_tolerated():
    handle = io.StringIO("a\n1\n\n2\n")
    assert read_relation(handle).rows == [(1,), (2,)]


def test_header_whitespace_stripped():
    handle = io.StringIO(" a , b \n1,2\n")
    assert read_relation(handle).schema == ("a", "b")


def test_roundtrip(tmp_path):
    relation = Relation(("x", "y"), [(1, "a"), (2, "b")], "T")
    path = str(tmp_path / "t.csv")
    save_relation(relation, path)
    restored = load_relation(path)
    assert restored == relation
    assert restored.name == "t"  # stem becomes the name


def test_load_database(tmp_path, pizzeria_rels):
    for relation in pizzeria_rels:
        save_relation(relation, str(tmp_path / f"{relation.name}.csv"))
    database = load_database(str(tmp_path))
    assert set(database.names()) == {"Orders", "Pizzas", "Items"}
    assert database.flat("Items") == pizzeria_rels[2]


def test_load_database_empty_dir(tmp_path):
    with pytest.raises(CSVFormatError):
        load_database(str(tmp_path))


def test_loaded_database_queryable(tmp_path, pizzeria_rels):
    from repro.core.engine import FDBEngine
    from repro.sql import parse_query

    for relation in pizzeria_rels:
        save_relation(relation, str(tmp_path / f"{relation.name}.csv"))
    database = load_database(str(tmp_path))
    q = parse_query(
        "SELECT customer, SUM(price) AS r FROM Orders, Pizzas, Items "
        "GROUP BY customer ORDER BY customer"
    )
    assert FDBEngine().execute(q, database).rows == [
        ("Lucia", 9),
        ("Mario", 22),
        ("Pietro", 9),
    ]


def test_write_relation_to_buffer():
    buffer = io.StringIO()
    write_relation(Relation(("a",), [(1,)]), buffer)
    assert buffer.getvalue().splitlines() == ["a", "1"]
