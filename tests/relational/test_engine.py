"""Unit tests for the RDB engine pipeline."""

import pytest

from repro.database import Database, UnknownRelationError
from repro.query import Comparison, Equality, Having, Query, QueryError, aggregate
from repro.relational.engine import RDBEngine
from repro.relational.relation import Relation


@pytest.fixture()
def db():
    return Database(
        [
            Relation(("a", "b"), [(1, 10), (2, 20), (3, 20)], "R"),
            Relation(("b", "c"), [(10, "x"), (20, "y")], "S"),
        ]
    )


def test_single_relation_scan(db):
    out = RDBEngine().execute(Query(relations=("R",)), db)
    assert len(out) == 3


def test_natural_join(db):
    out = RDBEngine().execute(Query(relations=("R", "S")), db)
    assert sorted(out.rows) == [(1, 10, "x"), (2, 20, "y"), (3, 20, "y")]


def test_comparison_selection(db):
    q = Query(relations=("R",), comparisons=(Comparison("a", ">", 1),))
    out = RDBEngine().execute(q, db)
    assert sorted(out.rows) == [(2, 20), (3, 20)]


def test_equality_selection(db):
    db.add_relation(Relation(("x", "y"), [(1, 1), (2, 3)], "T"))
    q = Query(relations=("T",), equalities=(Equality("x", "y"),))
    out = RDBEngine().execute(q, db)
    assert out.rows == [(1, 1)]


def test_projection(db):
    q = Query(relations=("R",), projection=("b",))
    out = RDBEngine().execute(q, db)
    assert sorted(out.rows) == [(10,), (20,)]  # set semantics


def test_group_aggregate(db):
    q = Query(
        relations=("R",),
        group_by=("b",),
        aggregates=(aggregate("count", None, "n"),),
    )
    out = RDBEngine().execute(q, db)
    assert sorted(out.rows) == [(10, 1), (20, 2)]


def test_having(db):
    q = Query(
        relations=("R",),
        group_by=("b",),
        aggregates=(aggregate("count", None, "n"),),
        having=(Having("n", ">", 1),),
    )
    out = RDBEngine().execute(q, db)
    assert out.rows == [(20, 2)]


def test_order_and_limit(db):
    q = Query(relations=("R",), order_by=()).with_order([("a", "desc")]).with_limit(2)
    out = RDBEngine().execute(q, db)
    assert out.rows == [(3, 20), (2, 20)]


def test_order_validates_attribute(db):
    q = Query(relations=("R",)).with_order(["nope"])
    with pytest.raises(QueryError):
        RDBEngine().execute(q, db)


def test_distinct(db):
    db.add_relation(Relation(("a",), [(1,), (1,), (2,)], "D"))
    q = Query(relations=("D",), distinct=True)
    out = RDBEngine().execute(q, db)
    assert sorted(out.rows) == [(1,), (2,)]


def test_unknown_relation(db):
    with pytest.raises(UnknownRelationError):
        RDBEngine().execute(Query(relations=("missing",)), db)


def test_grouping_mode_validation():
    with pytest.raises(ValueError):
        RDBEngine(grouping="bogus")


def test_hash_and_sort_modes_agree(db):
    q = Query(
        relations=("R", "S"),
        group_by=("c",),
        aggregates=(aggregate("sum", "a", "s"), aggregate("avg", "a", "m")),
    )
    assert RDBEngine("sort").execute(q, db) == RDBEngine("hash").execute(q, db)


def test_order_by_aggregate_alias(db):
    q = Query(
        relations=("R",),
        group_by=("b",),
        aggregates=(aggregate("count", None, "n"),),
    ).with_order([("n", "desc")])
    out = RDBEngine().execute(q, db)
    assert out.rows == [(20, 2), (10, 1)]
