"""Unit tests for the relational operators (joins, product, union...)."""

import pytest

from repro.relational.operators import (
    difference,
    hash_join,
    multiway_join,
    natural_join,
    product,
    semijoin,
    sort_merge_join,
    union,
)
from repro.relational.relation import Relation, SchemaError


@pytest.fixture()
def left():
    return Relation(("a", "b"), [(1, 10), (2, 20), (2, 21)], "L")


@pytest.fixture()
def right():
    return Relation(("b", "c"), [(10, "x"), (20, "y"), (20, "z"), (99, "w")], "R")


def test_hash_join_basic(left, right):
    joined = hash_join(left, right)
    assert set(joined.schema) == {"a", "b", "c"}
    assert sorted(joined.rows) == sorted(
        [(1, 10, "x"), (2, 20, "y"), (2, 20, "z")]
    )


def test_sort_merge_join_agrees_with_hash(left, right):
    assert sorted(sort_merge_join(left, right).rows) == sorted(
        hash_join(left, right).rows
    )


def test_join_without_shared_attributes_is_product():
    l = Relation(("a",), [(1,), (2,)])
    r = Relation(("b",), [(3,)])
    assert sorted(natural_join(l, r).rows) == [(1, 3), (2, 3)]


def test_join_duplicate_keys_multiply():
    l = Relation(("k",), [(1,), (1,)])
    r = Relation(("k", "v"), [(1, "a"), (1, "b")])
    # set semantics on input: l has duplicate rows, join result is a bag
    assert len(hash_join(l, r)) == 4


def test_unknown_join_method(left, right):
    with pytest.raises(ValueError):
        natural_join(left, right, method="bogus")


def test_multiway_join_reorders_for_connectivity():
    a = Relation(("x",), [(1,)], "A")
    b = Relation(("y",), [(2,)], "B")
    c = Relation(("x", "y"), [(1, 2)], "C")
    # A and B share nothing; C connects them — the greedy order avoids
    # a blind Cartesian product but the result is the same either way.
    joined = multiway_join([a, b, c])
    assert sorted(joined.rows) == [(1, 2)]


def test_multiway_join_empty_input():
    with pytest.raises(ValueError):
        multiway_join([])


def test_product_disjoint():
    l = Relation(("a",), [(1,)])
    r = Relation(("b",), [(2,), (3,)])
    assert sorted(product(l, r).rows) == [(1, 2), (1, 3)]


def test_product_rejects_overlap(left):
    with pytest.raises(SchemaError):
        product(left, left)


def test_union_aligns_schemas():
    l = Relation(("a", "b"), [(1, 2)])
    r = Relation(("b", "a"), [(2, 1), (3, 4)])
    u = union(l, r)
    assert sorted(u.rows) == [(1, 2), (4, 3)]


def test_union_requires_same_attrs(left, right):
    with pytest.raises(SchemaError):
        union(left, right)


def test_difference():
    l = Relation(("a",), [(1,), (2,)])
    r = Relation(("a",), [(2,)])
    assert difference(l, r).rows == [(1,)]


def test_difference_requires_same_attrs(left, right):
    with pytest.raises(SchemaError):
        difference(left, right)


def test_semijoin(left, right):
    kept = semijoin(left, right)
    assert sorted(kept.rows) == [(1, 10), (2, 20)]


def test_semijoin_no_shared_attributes():
    l = Relation(("a",), [(1,)])
    r = Relation(("b",), [])
    assert len(semijoin(l, r)) == 0
    r2 = Relation(("b",), [(5,)])
    assert len(semijoin(l, r2)) == 1
