"""Unit tests for multi-key asc/desc sorting and limit."""

import pytest

from repro.relational.relation import Relation
from repro.relational.sort import (
    SortKey,
    is_sorted_by,
    limit_rows,
    normalise_order,
    sort_relation,
    sort_rows,
)


@pytest.fixture()
def r():
    return Relation(
        ("a", "b", "c"),
        [(2, "x", 1), (1, "y", 2), (1, "x", 3), (2, "y", 4)],
    )


def test_normalise_order_accepts_three_forms():
    keys = normalise_order(["a", ("b", "desc"), SortKey("c", True)])
    assert keys == [SortKey("a"), SortKey("b", True), SortKey("c", True)]


def test_normalise_order_direction_spellings():
    assert normalise_order([("a", "DESC")])[0].descending
    assert normalise_order([("a", "descending")])[0].descending
    assert not normalise_order([("a", "asc")])[0].descending


def test_sort_single_key(r):
    rows = sort_rows(r.rows, r.schema, ["a"])
    assert [row[0] for row in rows] == [1, 1, 2, 2]


def test_sort_lexicographic(r):
    rows = sort_rows(r.rows, r.schema, ["a", "b"])
    assert rows == [(1, "x", 3), (1, "y", 2), (2, "x", 1), (2, "y", 4)]


def test_sort_mixed_directions(r):
    rows = sort_rows(r.rows, r.schema, [("a", "desc"), "b"])
    assert rows == [(2, "x", 1), (2, "y", 4), (1, "x", 3), (1, "y", 2)]


def test_sort_descending_strings(r):
    rows = sort_rows(r.rows, r.schema, [("b", "desc"), ("a", "desc")])
    assert rows == [(2, "y", 4), (1, "y", 2), (2, "x", 1), (1, "x", 3)]


def test_sort_relation_validates_attrs(r):
    with pytest.raises(Exception):
        sort_relation(r, ["nope"])


def test_sort_relation_returns_copy(r):
    sorted_rel = sort_relation(r, ["a"])
    assert sorted_rel is not r
    assert r.rows[0] == (2, "x", 1)  # original untouched


def test_limit_rows():
    assert limit_rows(iter([1, 2, 3]), 2) == [1, 2]
    assert limit_rows([1], 5) == [1]
    assert limit_rows([1, 2], 0) == []


def test_limit_rejects_negative():
    with pytest.raises(ValueError):
        limit_rows([1], -1)


def test_is_sorted_by(r):
    sorted_rel = sort_relation(r, ["a", ("b", "desc")])
    assert is_sorted_by(sorted_rel, ["a", ("b", "desc")])
    assert not is_sorted_by(sorted_rel, ["b"])


def test_sort_key_str():
    assert str(SortKey("a")) == "a↑"
    assert str(SortKey("a", True)) == "a↓"


def test_sort_stability_beyond_keys(r):
    # Rows tied on the sort keys keep their input order (stable sorts).
    rows = sort_rows(r.rows, r.schema, ["a"])
    assert rows[0] == (1, "y", 2) and rows[1] == (1, "x", 3)
