"""Unit tests for the Relation container."""

import pytest

from repro.relational.relation import Relation, SchemaError


@pytest.fixture()
def r():
    return Relation(("a", "b"), [(1, "x"), (2, "y"), (1, "z")], name="R")


def test_len_and_iteration(r):
    assert len(r) == 3
    assert list(r) == [(1, "x"), (2, "y"), (1, "z")]


def test_contains(r):
    assert (1, "x") in r
    assert (9, "x") not in r


def test_duplicate_schema_rejected():
    with pytest.raises(SchemaError):
        Relation(("a", "a"), [])


def test_row_arity_checked():
    with pytest.raises(SchemaError):
        Relation(("a", "b"), [(1,)])


def test_extend_checks_arity(r):
    r.extend([(3, "w")])
    assert len(r) == 4
    with pytest.raises(SchemaError):
        r.extend([(3,)])


def test_position_and_positions(r):
    assert r.position("b") == 1
    assert r.positions(["b", "a"]) == [1, 0]
    with pytest.raises(SchemaError):
        r.position("zzz")


def test_column_and_distinct(r):
    assert r.column("a") == [1, 2, 1]
    assert r.distinct_values("a") == [1, 2]


def test_project_dedup():
    r = Relation(("a", "b"), [(1, 1), (1, 2)])
    assert r.project(["a"]).rows == [(1,)]
    assert r.project(["a"], dedup=False).rows == [(1,), (1,)]


def test_project_reorders_columns(r):
    projected = r.project(["b", "a"])
    assert projected.schema == ("b", "a")
    assert projected.rows[0] == ("x", 1)


def test_select_predicate(r):
    kept = r.select(lambda row: row["a"] == 1)
    assert kept.rows == [(1, "x"), (1, "z")]


def test_select_eq(r):
    assert r.select_eq("b", "y").rows == [(2, "y")]


def test_rename(r):
    renamed = r.rename({"a": "alpha"})
    assert renamed.schema == ("alpha", "b")
    assert renamed.rows == r.rows


def test_distinct():
    r = Relation(("a",), [(1,), (1,), (2,)])
    assert r.distinct().rows == [(1,), (2,)]


def test_equality_ignores_column_order():
    r1 = Relation(("a", "b"), [(1, "x")])
    r2 = Relation(("b", "a"), [("x", 1)])
    assert r1 == r2


def test_equality_detects_difference():
    r1 = Relation(("a",), [(1,)])
    r2 = Relation(("a",), [(2,)])
    assert r1 != r2


def test_relation_unhashable(r):
    with pytest.raises(TypeError):
        hash(r)


def test_as_dicts(r):
    assert r.as_dicts()[0] == {"a": 1, "b": "x"}


def test_pretty_contains_rows(r):
    text = r.pretty()
    assert "a" in text and "x" in text


def test_pretty_truncates():
    r = Relation(("a",), [(i,) for i in range(30)])
    assert "more rows" in r.pretty(limit=5)
