"""Unit tests for sort-based and hash-based grouping + aggregation."""

import pytest

from repro.query import AggregateSpec, QueryError, aggregate
from repro.relational.aggregate import (
    Accumulator,
    group_aggregate,
    group_aggregate_hash,
    group_aggregate_sort,
)
from repro.relational.relation import Relation


@pytest.fixture()
def r():
    return Relation(
        ("g", "v"),
        [("a", 1), ("a", 2), ("b", 5), ("a", 3), ("b", 7)],
    )


SPECS = (
    aggregate("sum", "v", "total"),
    aggregate("count", None, "n"),
    aggregate("min", "v", "lo"),
    aggregate("max", "v", "hi"),
    aggregate("avg", "v", "mean"),
)


def test_sort_grouping(r):
    out = group_aggregate_sort(r, ["g"], SPECS)
    assert out.schema == ("g", "total", "n", "lo", "hi", "mean")
    assert out.rows == [("a", 6, 3, 1, 3, 2.0), ("b", 12, 2, 5, 7, 6.0)]


def test_hash_grouping_matches_sort(r):
    assert group_aggregate_hash(r, ["g"], SPECS) == group_aggregate_sort(
        r, ["g"], SPECS
    )


def test_scalar_aggregates(r):
    out = group_aggregate_sort(r, [], SPECS)
    assert out.rows == [(18, 5, 1, 7, 3.6)]


def test_scalar_hash_delegates(r):
    assert group_aggregate_hash(r, [], SPECS).rows == [(18, 5, 1, 7, 3.6)]


def test_empty_input_count_only():
    empty = Relation(("g", "v"), [])
    out = group_aggregate_sort(empty, [], [aggregate("count", None, "n")])
    assert out.rows == [(0,)]


def test_empty_input_scalar_aggregates_are_null():
    empty = Relation(("g", "v"), [])
    out = group_aggregate_sort(
        empty,
        [],
        [
            aggregate("count", None, "n"),
            aggregate("sum", "v", "s"),
            aggregate("avg", "v", "a"),
            aggregate("min", "v", "lo"),
            aggregate("max", "v", "hi"),
        ],
    )
    assert out.rows == [(0, None, None, None, None)]


def test_empty_input_with_groups_is_empty():
    empty = Relation(("g", "v"), [])
    out = group_aggregate_sort(empty, ["g"], [aggregate("sum", "v", "s")])
    assert out.rows == []


def test_group_by_multiple_keys():
    r = Relation(("g", "h", "v"), [(1, 1, 10), (1, 2, 20), (1, 1, 30)])
    out = group_aggregate(r, ["g", "h"], [aggregate("sum", "v", "s")])
    assert out.rows == [(1, 1, 40), (1, 2, 20)]


def test_dispatch_unknown_method(r):
    with pytest.raises(ValueError):
        group_aggregate(r, ["g"], SPECS, method="bogus")


def test_accumulator_weighted_add():
    acc = Accumulator("sum")
    acc.add(5, weight=3)
    assert acc.result() == 15
    assert acc.count == 3


def test_accumulator_merge():
    a, b = Accumulator("min"), Accumulator("min")
    a.add(5)
    b.add(3)
    a.merge(b)
    assert a.result() == 3


def test_accumulator_merge_mismatch():
    a, b = Accumulator("min"), Accumulator("max")
    with pytest.raises(QueryError):
        a.merge(b)


def test_avg_of_empty_group_is_null():
    acc = Accumulator("avg")
    assert acc.result() is None


def test_count_with_attribute_equals_count_star(r):
    with_attr = group_aggregate(r, ["g"], [AggregateSpec("count", "v", "n")])
    star = group_aggregate(r, ["g"], [AggregateSpec("count", None, "n")])
    assert with_attr == star
