"""Shared fixtures: the pizzeria example and small generated databases."""

from __future__ import annotations

import pytest

from repro.data.pizzeria import pizzeria_database, pizzeria_relations, t1_ftree
from repro.data.workloads import build_workload_database
from repro.relational.relation import Relation


@pytest.fixture()
def pizzeria():
    """Figure 1's database with R registered flat and factorised."""
    return pizzeria_database()


@pytest.fixture()
def pizzeria_rels():
    """The three Figure 1 base relations (Orders, Pizzas, Items)."""
    return pizzeria_relations()


@pytest.fixture()
def t1():
    """The f-tree T1 of Figure 2."""
    return t1_ftree()


@pytest.fixture(scope="session")
def tiny_workload_db():
    """A small generated workload database shared across tests."""
    return build_workload_database(scale=0.1, seed=7)


def assert_same_relation(left, right) -> None:
    """Set-equality helper with a readable diff on failure."""
    left_rel = left if isinstance(left, Relation) else left.to_relation()
    right_rel = right if isinstance(right, Relation) else right.to_relation()
    assert set(left_rel.schema) == set(right_rel.schema), (
        f"schemas differ: {left_rel.schema} vs {right_rel.schema}"
    )
    aligned = right_rel.project(left_rel.schema, dedup=False)
    missing = set(aligned.rows) - set(left_rel.rows)
    extra = set(left_rel.rows) - set(aligned.rows)
    assert not missing and not extra, (
        f"relations differ; missing={sorted(missing)[:5]} "
        f"extra={sorted(extra)[:5]}"
    )
