"""Tests for the command-line interface and the explain facility."""

import pytest

from repro.__main__ import main
from repro.core.engine import FDBEngine
from repro.query import Query, aggregate
from repro.sql import parse_query


def test_cli_sizes(capsys):
    assert main(["sizes", "--scales", "0.1,0.2"]) == 0
    out = capsys.readouterr().out
    assert "factorised" in out and "exponents" in out


def test_cli_query(capsys):
    code = main(
        [
            "query",
            "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer",
            "--scale",
            "0.1",
            "--rows",
            "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "FDB" in out and "revenue" in out


def test_cli_explain(capsys):
    code = main(
        [
            "explain",
            "SELECT package, SUM(price) AS s FROM R1 GROUP BY package",
            "--scale",
            "0.1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "γ" in out and "bound" in out


def test_cli_advise(capsys):
    assert main(["advise", "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "s(T)" in out and "package" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_explain_spj_order(pizzeria):
    text = FDBEngine().explain(
        parse_query("SELECT * FROM R ORDER BY item DESC"), pizzeria
    )
    assert "ordered constant-delay enumeration" in text


def test_explain_mentions_selection(pizzeria):
    q = parse_query("SELECT customer, COUNT(*) FROM R WHERE price > 2 GROUP BY customer")
    text = FDBEngine().explain(q, pizzeria)
    assert "σ" in text and "price > 2" in text


def test_explain_factorised_mode(pizzeria):
    q = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "rev"),),
    )
    text = FDBEngine(output="factorised").explain(q, pizzeria)
    assert "finalise into a single aggregate attribute" in text


def test_cli_query_single_engine(capsys):
    code = main(
        [
            "query",
            "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer",
            "--scale",
            "0.1",
            "--engine",
            "fdb",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "FDB" in out and "revenue" in out
    assert "RDB" not in out and "SQLite" not in out


def test_cli_query_sqlite_engine(capsys):
    code = main(
        [
            "query",
            "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer",
            "--scale",
            "0.1",
            "--engine",
            "sqlite",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "SQLite" in out and "revenue" in out


def test_cli_explain_engine_choice(capsys):
    code = main(
        [
            "explain",
            "SELECT package, SUM(price) AS s FROM R1 GROUP BY package",
            "--scale",
            "0.1",
            "--engine",
            "rdb",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "RDB pipeline" in out


def test_cli_rejects_unknown_engine(capsys):
    code = main(["query", "SELECT * FROM R1", "--engine", "turbo"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown engine 'turbo'" in err and "registered engines" in err


def test_cli_explain_rejects_unknown_engine(capsys):
    code = main(["explain", "SELECT * FROM R1", "--engine", "nope"])
    assert code == 2
    assert "unknown engine" in capsys.readouterr().err


def test_cli_engine_names_are_case_insensitive(capsys):
    code = main(
        [
            "explain",
            "SELECT package, SUM(price) AS s FROM R1 GROUP BY package",
            "--scale",
            "0.1",
            "--engine",
            "FDB",
        ]
    )
    assert code == 0
    assert "γ" in capsys.readouterr().out
