"""Tests for the shared query AST."""

import pytest

from repro.query import (
    AggregateSpec,
    Comparison,
    Equality,
    Having,
    Query,
    QueryError,
    aggregate,
    natural_equalities,
)


def test_comparison_operators():
    assert Comparison("a", "=", 1).test(1)
    assert Comparison("a", "!=", 1).test(2)
    assert Comparison("a", "<", 5).test(4)
    assert Comparison("a", "<=", 5).test(5)
    assert Comparison("a", ">", 5).test(6)
    assert Comparison("a", ">=", 5).test(5)
    with pytest.raises(QueryError):
        Comparison("a", "~", 1)


def test_aggregate_spec_validation():
    with pytest.raises(QueryError):
        AggregateSpec("median", "a", "m")
    with pytest.raises(QueryError):
        AggregateSpec("sum", None, "s")
    with pytest.raises(QueryError):
        AggregateSpec("sum", "a", "")
    assert AggregateSpec("count", None, "n").attribute is None


def test_aggregate_helper_default_alias():
    assert aggregate("sum", "price").alias == "sum(price)"
    assert aggregate("count").alias == "count(*)"


def test_query_validation():
    with pytest.raises(QueryError):
        Query(relations=())
    with pytest.raises(QueryError):
        Query(relations=("R",), limit=-1)
    with pytest.raises(QueryError):
        Query(
            relations=("R",),
            aggregates=(aggregate("sum", "a", "x"), aggregate("count", None, "x")),
        )
    with pytest.raises(QueryError):
        Query(relations=("R",), having=(Having("x", ">", 1),))


def test_output_schema():
    q = Query(
        relations=("R",),
        group_by=("g",),
        aggregates=(aggregate("sum", "v", "s"),),
    )
    assert q.output_schema == ("g", "s")
    q2 = Query(relations=("R",), projection=("a", "b"))
    assert q2.output_schema == ("a", "b")


def test_referenced_attributes():
    q = Query(
        relations=("R",),
        equalities=(Equality("a", "b"),),
        comparisons=(Comparison("c", ">", 1),),
        group_by=("g",),
        aggregates=(aggregate("sum", "v", "s"),),
    ).with_order(["g", ("s", "desc")])
    attrs = q.referenced_attributes()
    assert attrs == {"a", "b", "c", "g", "v"}  # alias s excluded


def test_with_order_and_limit_copy():
    q = Query(relations=("R",))
    q2 = q.with_order([("a", "desc")]).with_limit(3)
    assert q.order_by == () and q.limit is None
    assert q2.order_by[0].descending and q2.limit == 3


def test_str_rendering():
    q = Query(
        relations=("R", "S"),
        equalities=(Equality("a", "b"),),
        group_by=("g",),
        aggregates=(aggregate("sum", "v", "s"),),
        limit=5,
    )
    text = str(q)
    assert "R, S" in text and "a = b" in text and "λ5" in text


def test_natural_equalities():
    schemas = {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "a")}
    renames, equalities = natural_equalities(schemas, ("R", "S", "T"))
    assert renames["R"] == {}
    assert renames["S"] == {"b": "b#2"}
    assert renames["T"] == {"c": "c#2", "a": "a#2"}
    assert Equality("b", "b#2") in equalities
    assert Equality("a", "a#2") in equalities
    assert len(equalities) == 3
