"""Unit tests for the scalar-expression AST (repro.expr)."""

import pytest

from repro.expr import (
    Attr,
    BinOp,
    Const,
    Expr,
    ExprError,
    Neg,
    Term,
    as_expr,
    col,
    linearise,
    lit,
    simplify,
)


# ---------------------------------------------------------------------------
# Construction and operator overloading
# ---------------------------------------------------------------------------
def test_col_builds_attr():
    e = col("price")
    assert isinstance(e, Attr)
    assert e.name == "price"
    assert e.is_attribute


def test_operator_overloading_builds_trees():
    e = col("a") * col("b") + 2
    assert isinstance(e, BinOp) and e.op == "+"
    assert isinstance(e.left, BinOp) and e.left.op == "*"
    assert e.right == Const(2)


def test_reflected_operators():
    assert (2 + col("a")) == BinOp("+", Const(2), Attr("a"))
    assert (2 - col("a")) == BinOp("-", Const(2), Attr("a"))
    assert (2 * col("a")) == BinOp("*", Const(2), Attr("a"))
    assert (2 / col("a")) == BinOp("/", Const(2), Attr("a"))


def test_negation_and_pos():
    assert -col("a") == Neg(Attr("a"))
    assert +col("a") == Attr("a")


def test_expressions_are_hashable_and_equal_by_value():
    assert hash(col("a") * 2) == hash(col("a") * 2)
    assert col("a") * 2 == col("a") * 2
    assert col("a") * 2 != col("a") * 3


def test_invalid_constructions_rejected():
    with pytest.raises(ExprError):
        Const("text")
    with pytest.raises(ExprError):
        Const(True)
    with pytest.raises(ExprError):
        BinOp("%", Attr("a"), Const(1))
    with pytest.raises(ExprError):
        as_expr(object())


def test_as_expr_promotions():
    assert as_expr("a") == Attr("a")
    assert as_expr(3) == Const(3)
    assert as_expr(2.5) == Const(2.5)
    e = col("a") + 1
    assert as_expr(e) is e


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------
def test_evaluate_arithmetic():
    e = (col("a") + col("b")) * 2 - col("c") / 4
    assert e.evaluate({"a": 1, "b": 2, "c": 8}) == 4.0


def test_evaluate_true_division():
    assert (col("a") / col("b")).evaluate({"a": 3, "b": 2}) == 1.5


def test_evaluate_missing_attribute():
    with pytest.raises(ExprError, match="no value for attribute"):
        col("missing").evaluate({"a": 1})


def test_attributes_unique_in_order():
    e = col("b") * col("a") + col("b")
    assert e.attributes() == ("b", "a")


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def test_str_uses_precedence_parens():
    assert str((col("a") + col("b")) * col("c")) == "(a + b) * c"
    assert str(col("a") + col("b") * col("c")) == "a + b * c"
    assert str(col("a") - (col("b") - col("c"))) == "a - (b - c)"
    assert str(-(col("a") + 1)) == "-(a + 1)"


def test_sql_division_true_semantics():
    assert (col("a") / col("b")).sql() == "1.0 * a / b"
    assert ((col("a") + 1) / 2).sql() == "1.0 * (a + 1) / 2"


# ---------------------------------------------------------------------------
# Linearisation
# ---------------------------------------------------------------------------
def test_linearise_products_expand():
    terms = linearise((col("a") + 1) * col("b"))
    assert terms == (
        Term(1, (Attr("a"), Attr("b"))),
        Term(1, (Attr("b"),)),
    )


def test_linearise_constant_division_scales():
    (term,) = linearise(col("a") / 4)
    assert term.coefficient == 0.25
    assert term.factors == (Attr("a"),)


def test_linearise_opaque_quotient():
    (term,) = linearise(col("a") / col("b"))
    assert term.coefficient == 1
    assert len(term.factors) == 1
    assert term.factors[0] == BinOp("/", Attr("a"), Attr("b"))


def test_linearise_negation_folds_into_coefficients():
    terms = linearise(-(col("a") - 2))
    assert terms == (Term(-1, (Attr("a"),)), Term(2, ()))


def test_linearise_division_by_zero_rejected():
    with pytest.raises(ExprError, match="division by zero"):
        linearise(col("a") / 0)


def test_term_evaluate():
    (term,) = linearise(col("a") * col("b") * 3)
    assert term.evaluate({"a": 2, "b": 5}) == 30


# ---------------------------------------------------------------------------
# Simplification (generated-SQL normalisation)
# ---------------------------------------------------------------------------
def test_simplify_strips_unit_factor():
    assert simplify(BinOp("/", BinOp("*", Const(1.0), Attr("a")), Attr("b"))) == (
        BinOp("/", Attr("a"), Attr("b"))
    )


def test_simplify_folds_negated_constants():
    assert simplify(Neg(Const(2))) == Const(-2)


def test_lit_helper():
    assert lit(7) == Const(7)
    assert isinstance(lit(7), Expr)
