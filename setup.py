"""Setup shim enabling offline editable installs.

The evaluation environment is offline and lacks the `wheel` package,
which pip's editable-install machinery needs.  When the real package is
missing we fall back to the vendored shim in ``vendor/wheel`` (see its
docstring) and register its ``bdist_wheel`` command explicitly, since a
path-injected package has no entry-point metadata.
"""

import os
import sys

from setuptools import setup

try:
    from wheel.bdist_wheel import bdist_wheel
except ImportError:  # offline environment: use the vendored shim
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "vendor"))
    from wheel.bdist_wheel import bdist_wheel

setup(cmdclass={"bdist_wheel": bdist_wheel})
