"""Designing and persisting a factorised materialised view.

Given a join query's hypergraph, the view advisor enumerates every
f-tree that satisfies the path constraint and ranks them with the
fractional-edge-cover size bounds of Section 2.1 — recovering the
f-tree the paper chose for its Section 6 view.  The chosen view is then
materialised, persisted to disk, reloaded, and queried.

Run:  python examples/view_design.py
"""

import os
import tempfile

from repro import FDBEngine, Query, aggregate
from repro.core.advisor import advise
from repro.core.build import factorise
from repro.core.cost import Hypergraph
from repro.core.io import load_view, save_view
from repro.data.generator import generate_database
from repro.database import Database
from repro.relational.operators import multiway_join


def main() -> None:
    hypergraph = Hypergraph(
        {
            "Orders": ("customer", "date", "package"),
            "Packages": ("package", "item"),
            "Items": ("item", "price"),
        }
    )
    attributes = ("customer", "date", "package", "item", "price")

    print("Ranking f-trees for Orders ⋈ Packages ⋈ Items ...")
    ranked = advise(attributes, hypergraph, top=3)
    for index, candidate in enumerate(ranked, 1):
        print(f"\n#{index}  {candidate.describe()}")

    best = ranked[0].ftree
    print("\nMaterialising the view over the winning f-tree ...")
    data = generate_database(scale=0.25)
    joined = multiway_join(list(data.relations()))
    fact = factorise(joined, best)
    flat_singletons = len(joined) * len(joined.schema)
    print(
        f"view: {len(joined)} tuples; {flat_singletons} singletons flat "
        f"vs {fact.size()} factorised ({flat_singletons / fact.size():.1f}× smaller)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "r1.fdb.json")
        save_view(fact, path)
        print(f"persisted to {path} ({os.path.getsize(path)} bytes)")
        restored = load_view(path)

    db = Database(list(data.relations()))
    db.add_factorised("R1", restored)
    query = Query(
        relations=("R1",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
    ).with_order([("revenue", "desc")]).with_limit(3)
    print("\nTop 3 customers by revenue, from the reloaded view:")
    for customer, revenue in FDBEngine().execute(query, db).rows:
        print(f"  {customer}: {revenue}")


if __name__ == "__main__":
    main()
