"""Server mode: snapshot-isolated clients over one shared database.

Boots the asyncio HTTP front-end on an ephemeral port, then walks
through the concurrency story with two clients:

1. an analyst connection whose reads are pinned to one committed
   version — repeatable reads while writes land around it;
2. a writer connection committing inserts through the single writer
   lock;
3. the analyst opting into the newer version with ``refresh()``;
4. a live view polled over HTTP, maintained incrementally server-side.

Run:  python examples/server_demo.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.pizzeria import pizzeria_database
from repro.server import Client, Server

REVENUE = (
    "SELECT customer, SUM(price) AS revenue FROM Orders, Pizzas, Items "
    "WHERE Orders.pizza = Pizzas.pizza AND Pizzas.item = Items.item "
    "GROUP BY customer"
)


def main() -> None:
    database = pizzeria_database()

    # port=0 binds an ephemeral port; in production you would call
    # repro.server.serve(database, port=8128) or `python -m repro serve`.
    with Server(database, port=0, pool_size=4) as server:
        print(f"server listening on {server.url}\n")

        with Client(port=server.port) as analyst, \
                Client(port=server.port) as writer:
            print("=== 1. The analyst pins a snapshot ===")
            first = analyst.query(REVENUE)
            print(f"revenue at v{first['version']}: {first['rows']}")

            print("\n=== 2. A writer commits around the pinned reader ===")
            report = writer.insert(
                "Orders", [("Nina", "Saturday", "Capricciosa")]
            )
            print(f"writer committed v{report['version']}")

            again = analyst.query(REVENUE)
            assert again["rows"] == first["rows"]
            print(
                f"analyst still reads v{again['version']}: same rows — "
                "snapshot isolation"
            )

            print("\n=== 3. refresh() opts into the newest version ===")
            fresh_version = analyst.refresh()
            fresh = analyst.query(REVENUE)
            print(f"after refresh to v{fresh_version}: {fresh['rows']}")

            print("\n=== 4. A live view polled over HTTP ===")
            watch = analyst.watch(
                "SELECT COUNT(*) AS orders FROM Orders"
            )
            print(f"watch {watch['id']} starts at {watch['rows']}")
            writer.insert("Orders", [("Olga", "Sunday", "Hawaii")])
            polled = analyst.poll(watch["id"])
            print(f"after another commit, poll sees {polled['rows']}")

            stats = analyst.stats()
            print(
                f"\npool: {stats['leases']} leases over {stats['size']} "
                f"slots; server handled {stats['requests']} requests"
            )


if __name__ == "__main__":
    main()
