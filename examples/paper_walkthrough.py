"""A guided tour through every numbered example of the paper.

Runs Examples 1-11 in order against the library, printing what the
paper prints.  Useful as executable documentation: each block cites the
example it reproduces.

Run:  python examples/paper_walkthrough.py
"""

from repro.core import operators as ops
from repro.core.build import factorise, factorise_path
from repro.core.enumerate import supports_grouping, supports_order
from repro.core.ftree import build_ftree
from repro.data.pizzeria import pizzeria_relations, pizzeria_view, t1_ftree
from repro.relational.relation import Relation


def banner(title: str) -> None:
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def main() -> None:
    orders, pizzas, items = pizzeria_relations()
    joined, fact = pizzeria_view()

    banner("Figure 1 / Example 1 — the factorised view over T1")
    print(fact.ftree.pretty())
    print()
    print(fact.pretty())

    banner("Example 1.1 — S = ϖ_{customer,date,pizza; sum(price)}(R)")
    s = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sum(price)"
    )
    print("f-tree is now T2:")
    print(s.ftree.pretty())
    print(s.pretty())

    banner("Example 1.2 — P = ϖ_{customer; sum(price)}(R), staged")
    t3 = ops.swap(ops.swap(s, "customer"), "customer")
    print("after two swaps (T3):")
    print(t3.ftree.pretty())
    t4 = ops.apply_aggregation(
        t3, "pizza", ["date"], [("count", None)], name="count(date)"
    )
    print("\nafter γ_count(date) (T4):")
    print(t4.pretty())
    final = ops.apply_aggregation(
        t4, "customer", ["pizza"], [("sum", "price")], name="revenue"
    )
    print("\nfinal factorisation:")
    print(final.pretty())

    banner("Example 2 — orders supported by T1, and a restructuring")
    t1 = t1_ftree()
    for order in [
        ("pizza",),
        ("pizza", "date"),
        ("pizza", "item"),
        ("pizza", "item", "date"),
        ("customer", "pizza", "item", "price"),
    ]:
        print(f"  supports {order}: {supports_order(t1, list(order))}")
    pushed = ops.swap(ops.swap(fact, "customer"), "customer")
    print(
        "  after pushing customer up twice: "
        f"{supports_order(pushed.ftree, ['customer', 'pizza', 'item', 'price'])}"
    )

    banner("Example 3 — succinctness of ({◇,♣} × {1,2,3})")
    spades = Relation(
        ("A", "B"), [(a, b) for a in ("♢", "♣") for b in (1, 2, 3)]
    )
    tree = build_ftree(["A", "B"], keys={"A": {"r1"}, "B": {"r2"}})
    e2 = factorise(spades, tree)
    e1 = factorise_path(spades, "R")
    print(f"  E1-style (path) singletons: {e1.size()}")
    print(f"  E2 (product) singletons:    {e2.size()}")

    banner("Examples 4-5 — γ and the dependencies it introduces")
    t2 = ops.apply_aggregation(
        fact, "pizza", ["item"], [("sum", "price")], name="sumprice"
    )
    tree = t2.ftree
    print(f"  sumprice depends on pizza: "
          f"{tree.node('sumprice').depends_on(tree.node('pizza'))}")
    print(f"  sumprice depends on customer: "
          f"{tree.node('sumprice').depends_on(tree.node('customer'))}")

    banner("Example 6 — aggregate singletons are pre-aggregated relations")
    pizzas_fact = factorise_path(pizzas, "Pizzas")
    counted = ops.apply_aggregation(
        pizzas_fact, "pizza", ["item"], [("count", None)], name="count(item)"
    )
    print(counted.pretty())
    total = ops.apply_aggregation(
        counted, None, ["pizza"], [("count", None)], name="count(pizza,item)"
    )
    print(f"  count(pizza, item) = {next(iter(total.iter_tuples()))[0][0]} "
          "(not 3: the partial counts weigh in)")

    banner("Example 8 — the sum algorithm on the T4 factorisation")
    mario = next(e for e in t4.roots[0] if e.value == "Mario")
    from repro.core.aggregates import sum_union

    pizza_node = t4.ftree.node("pizza")
    value = sum_union("price", pizza_node, mario.children[0])
    print(f"  sum_price over Mario's subtree = {value}  (1·2·8 + 1·1·6)")

    banner("Examples 9-10 — Theorem 2 vs Theorem 1 on T1")
    print(f"  order (pizza, customer, date) supported: "
          f"{supports_order(t1, ['pizza', 'customer', 'date'])}")
    print(f"  grouping by {{pizza, customer, date}} supported: "
          f"{supports_grouping(t1, ['pizza', 'customer', 'date'])}")

    banner("Example 11 — two equivalent f-plans for the revenue query")
    print("  (see tests/core/test_examples_paper.py for the full check")
    print("   under the example's independence assumption)")
    print("\nDone — every printed value matches the paper.")


if __name__ == "__main__":
    main()
