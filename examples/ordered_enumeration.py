"""Ordering and top-k on factorised views: the Experiment 4 story.

A factorisation can serve *several* sort orders at once, and switching
to an unsupported order needs only partial restructuring (a swap or
two) instead of a full re-sort.  This example walks through Q10-Q13 on
the sorted views R2 and R3 and shows constant-delay top-k enumeration.

Run:  python examples/ordered_enumeration.py [scale]
"""

import sys
import time

from repro import FDBEngine
from repro.core import operators as ops
from repro.core.enumerate import (
    iter_tuples,
    restructure_for_order,
    supports_order,
)
from repro.data.workloads import WORKLOAD, build_workload_database


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    db = build_workload_database(scale=scale)
    fact = db.get_factorised("R2")
    print("R2's factorisation tree:")
    print(fact.ftree.pretty())
    print()

    for order in [
        ("package", "date", "item"),  # Q10: the stored order
        ("package", "item", "date"),  # Q11: also supported, for free
        ("date", "package", "item"),  # Q12: needs one swap
    ]:
        supported = supports_order(fact.ftree, list(order))
        swaps = restructure_for_order(fact.ftree, list(order))
        print(
            f"order {order}: supported={supported}, "
            f"swaps needed={swaps if swaps else 'none'}"
        )
    print()

    print("Top-3 tuples in the Q12 order (restructure + constant delay):")
    q12 = WORKLOAD["Q12"].query.with_limit(3)
    fdb = FDBEngine()
    start = time.perf_counter()
    rows = fdb.execute(q12, db).rows
    elapsed = time.perf_counter() - start
    for row in rows:
        print(f"  {row}")
    print(f"  ({elapsed * 1000:.1f} ms including the swap)\n")

    print("Q13: re-sorting Orders by (customer, date, package)")
    r3 = db.get_factorised("R3")
    print("stored as the path", " → ".join(r3.schema()))
    start = time.perf_counter()
    swapped = ops.swap(r3, "customer")  # the single swap of the paper
    elapsed = time.perf_counter() - start
    print(f"one swap restructures it in {elapsed * 1000:.1f} ms;")
    first = next(iter_tuples(swapped, ["customer", "date", "package"]))
    print(f"first tuple in the new order: {first}")
    print(
        "package lists under each (date, customer) pair were reused, "
        "not re-sorted (Experiment 4)."
    )


if __name__ == "__main__":
    main()
