"""One SQL string, three engines: FDB, RDB and the real sqlite3.

The SQL front-end compiles the paper's query class into the shared
query AST; the generator renders it back to SQL for sqlite3, so every
engine answers the same question — here: daily revenue per package with
a HAVING filter, ordered by revenue.

Run:  python examples/sql_frontend.py
"""

import sqlite3

from repro import FDBEngine, RDBEngine
from repro.data.workloads import build_workload_database
from repro.sql import parse_query, query_to_sql

SQL = """
    SELECT package, SUM(price) AS revenue, COUNT(*) AS items
    FROM R1
    GROUP BY package
    HAVING items > 10
    ORDER BY revenue DESC, package
    LIMIT 5
"""


def main() -> None:
    db = build_workload_database(scale=0.25)
    query = parse_query(SQL, name="daily-revenue")
    print("parsed:", query, "\n")

    print("FDB (factorised view):")
    fdb_rows = FDBEngine().execute(query, db).rows
    for row in fdb_rows:
        print("  ", row)

    print("\nRDB (flat view):")
    rdb_rows = RDBEngine().execute(query, db).rows
    for row in rdb_rows:
        print("  ", row)

    print("\nsqlite3, from the generated SQL:")
    print("  ", query_to_sql(query))
    con = sqlite3.connect(":memory:")
    r1 = db.flat("R1")
    con.execute(f"CREATE TABLE R1 ({', '.join(r1.schema)})")
    con.executemany(
        f"INSERT INTO R1 VALUES ({','.join('?' * len(r1.schema))})", r1.rows
    )
    sqlite_rows = [tuple(r) for r in con.execute(query_to_sql(query))]
    for row in sqlite_rows:
        print("  ", row)

    assert fdb_rows == rdb_rows == sqlite_rows, "engines disagree!"
    print("\nall three engines agree ✓")


if __name__ == "__main__":
    main()
