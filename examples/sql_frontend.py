"""One SQL string, three engines, one session.

The SQL front-end compiles the paper's query class into the shared
query AST; ``Session.sql`` runs it on any registered engine — FDB, the
flat RDB baseline, or the real sqlite3 fed generated SQL — so every
engine answers the same question: daily revenue per package with a
HAVING filter, ordered by revenue.

Run:  python examples/sql_frontend.py
"""

from repro import connect
from repro.data.workloads import build_workload_database
from repro.sql import parse_query, query_to_sql

SQL = """
    SELECT package, SUM(price) AS revenue, COUNT(*) AS items
    FROM R1
    GROUP BY package
    HAVING items > 10
    ORDER BY revenue DESC, package
    LIMIT 5
"""


def main() -> None:
    session = connect(build_workload_database(scale=0.25))
    print("parsed:", parse_query(SQL, name="daily-revenue"), "\n")

    results = {}
    for engine in ("fdb", "rdb", "sqlite"):
        result = session.sql(SQL, engine=engine, name="daily-revenue")
        results[engine] = result
        print(f"{result.engine} ({result.stats.seconds * 1000:.1f} ms):")
        for row in result.rows:
            print("  ", row)
        print()

    print("sqlite ran the generated SQL:")
    print("  ", query_to_sql(parse_query(SQL)))

    # Row-list equality: same tuples in the same ORDER BY order.
    assert (
        results["fdb"].rows == results["rdb"].rows == results["sqlite"].rows
    ), "engines disagree!"
    print("\nall three engines agree ✓")
    print("FDB f-plan:", results["fdb"].plan)


if __name__ == "__main__":
    main()
