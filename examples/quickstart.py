"""Quickstart: the paper's pizzeria example through the session API.

Opens a session over the Figure 1 database with ``connect``, shows the
factorised materialised view, and runs the three aggregation scenarios
of Example 1 — local aggregation, partial aggregation with
restructuring, and on-the-fly combination — with the fluent query
builder.  Each run returns a ``Result`` carrying the rows *and* the
f-plan that produced them.

Run:  python examples/quickstart.py
"""

from repro import connect
from repro.data.pizzeria import pizzeria_database


def main() -> None:
    session = connect(pizzeria_database())

    print("=== The factorised materialised view R (Figure 1) ===")
    fact = session.database.get_factorised("R")
    print(fact.ftree.pretty())
    print()
    print(fact.pretty())
    flat = session.database.flat("R")
    flat_singletons = len(flat) * len(flat.schema)
    print(
        f"\n{fact.size()} singletons factorised vs "
        f"{flat_singletons} singletons flat\n"
    )

    print("=== Scenario 1: price of each ordered pizza (local γ) ===")
    s = (
        session.query("R")
        .group_by("customer", "date", "pizza")
        .sum("price", "price")
        .named("S")
        .run()
    )
    print(s.pretty())
    print("f-plan:", s.plan, "\n")

    print("=== Scenario 2: revenue per customer (partial γ + swaps) ===")
    p = (
        session.query("R")
        .group_by("customer")
        .sum("price", "revenue")
        .named("P")
    )
    result = p.run()
    print(result.pretty())
    print("f-plan:", result.plan)
    assert result == p.run(engine="rdb"), "engines disagree!"
    print("(verified against the relational engine)\n")

    print("=== Scenario 3: revenue per customer and pizza (on the fly) ===")
    q = (
        session.query("R")
        .group_by("customer", "pizza")
        .sum("price", "revenue")
        .order_by("customer", "pizza")
    )
    print(q.run().pretty())
    print()

    print("=== Factorised output (FDB f/o) for scenario 2 ===")
    f_out = p.run(engine="fdb-factorised").factorised
    print(f_out.factorisation.ftree.pretty())
    print(f_out.factorisation.pretty())
    print(f"result held in {f_out.size()} singletons")


if __name__ == "__main__":
    main()
