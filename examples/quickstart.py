"""Quickstart: the paper's pizzeria example, end to end.

Builds the Figure 1 database, shows the factorised materialised view,
and runs the three aggregation scenarios of Example 1 — local
aggregation, partial aggregation with restructuring, and on-the-fly
combination — through the FDB engine.

Run:  python examples/quickstart.py
"""

from repro import FDBEngine, Query, RDBEngine, aggregate
from repro.data.pizzeria import pizzeria_database


def main() -> None:
    db = pizzeria_database()

    print("=== The factorised materialised view R (Figure 1) ===")
    fact = db.get_factorised("R")
    print(fact.ftree.pretty())
    print()
    print(fact.pretty())
    flat_singletons = len(db.flat("R")) * len(db.flat("R").schema)
    print(
        f"\n{fact.size()} singletons factorised vs "
        f"{flat_singletons} singletons flat\n"
    )

    fdb = FDBEngine()
    rdb = RDBEngine()

    print("=== Scenario 1: price of each ordered pizza (local γ) ===")
    s = Query(
        relations=("R",),
        group_by=("customer", "date", "pizza"),
        aggregates=(aggregate("sum", "price", "price"),),
        name="S",
    )
    print(fdb.execute(s, db).pretty())
    print("f-plan:", fdb.last_plan, "\n")

    print("=== Scenario 2: revenue per customer (partial γ + swaps) ===")
    p = Query(
        relations=("R",),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
        name="P",
    )
    result = fdb.execute(p, db)
    print(result.pretty())
    print("f-plan:", fdb.last_plan)
    assert result == rdb.execute(p, db), "engines disagree!"
    print("(verified against the relational engine)\n")

    print("=== Scenario 3: revenue per customer and pizza (on the fly) ===")
    q = Query(
        relations=("R",),
        group_by=("customer", "pizza"),
        aggregates=(aggregate("sum", "price", "revenue"),),
    ).with_order(["customer", "pizza"])
    print(fdb.execute(q, db).pretty())
    print()

    print("=== Factorised output (FDB f/o) for scenario 2 ===")
    f_out = FDBEngine(output="factorised").execute(p, db)
    print(f_out.factorisation.ftree.pretty())
    print(f_out.factorisation.pretty())
    print(f"result held in {f_out.size()} singletons")


if __name__ == "__main__":
    main()
