"""Retail analytics on the Section 6 workload: aggregates at scale.

Generates the synthetic Orders/Packages/Items dataset, materialises the
join view R1 as a factorisation, and answers the AGG workload questions
the paper's introduction motivates (revenue per customer, per package,
per day), comparing FDB against the flat engines and showing how the
succinctness gap translates into work saved.

Run:  python examples/retail_analytics.py [scale]
"""

import sys
import time

from repro import FDBEngine, RDBEngine
from repro.data.workloads import WORKLOAD, build_workload_database


def timed(label: str, call):
    start = time.perf_counter()
    result = call()
    elapsed = time.perf_counter() - start
    print(f"  {label:<28} {elapsed * 1000:8.1f} ms")
    return result


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"Generating workload database at scale {scale} ...")
    db = build_workload_database(scale=scale)
    r1 = db.flat("R1")
    fact = db.get_factorised("R1")
    print(
        f"R1: {len(r1)} tuples "
        f"({len(r1) * len(r1.schema)} singletons flat, "
        f"{fact.size()} factorised — "
        f"gap {len(r1) * len(r1.schema) / fact.size():.1f}×)\n"
    )

    fdb = FDBEngine()
    rdb_sort = RDBEngine(grouping="sort")
    rdb_hash = RDBEngine(grouping="hash")

    for name in ("Q2", "Q3", "Q4"):
        workload = WORKLOAD[name]
        print(f"{workload.name}: {workload.query}")
        fdb_result = timed("FDB (factorised view)", lambda: fdb.execute(workload.query, db))
        timed("RDB sort-grouping", lambda: rdb_sort.execute(workload.query, db))
        timed("RDB hash-grouping", lambda: rdb_hash.execute(workload.query, db))
        print(f"  -> {len(fdb_result)} result rows; plan: {fdb.last_plan}\n")

    print("Top 5 customers by revenue (Q7 with LIMIT):")
    q7 = WORKLOAD["Q7"].query.with_order([("revenue", "desc")]).with_limit(5)
    for customer, revenue in fdb.execute(q7, db).rows:
        print(f"  {customer}: {revenue}")


if __name__ == "__main__":
    main()
