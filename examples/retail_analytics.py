"""Retail analytics on the Section 6 workload: aggregates at scale.

Generates the synthetic Orders/Packages/Items dataset, materialises the
join view R1 as a factorisation, and answers the AGG workload questions
the paper's introduction motivates (revenue per customer, per package,
per day), comparing FDB against the flat engines and showing how the
succinctness gap translates into work saved.

Run:  python examples/retail_analytics.py [scale]
"""

import sys

from repro import connect
from repro.data.workloads import WORKLOAD, build_workload_database


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"Generating workload database at scale {scale} ...")
    session = connect(build_workload_database(scale=scale))
    r1 = session.database.flat("R1")
    fact = session.database.get_factorised("R1")
    print(
        f"R1: {len(r1)} tuples "
        f"({len(r1) * len(r1.schema)} singletons flat, "
        f"{fact.size()} factorised — "
        f"gap {len(r1) * len(r1.schema) / fact.size():.1f}×)\n"
    )

    for name in ("Q2", "Q3", "Q4"):
        workload = WORKLOAD[name]
        print(f"{workload.name}: {workload.query}")
        results = {
            engine: session.execute(workload.query, engine=engine)
            for engine in ("fdb", "rdb", "rdb-hash")
        }
        for result in results.values():
            stats = result.stats
            print(f"  {stats.engine:<28} {stats.seconds * 1000:8.1f} ms")
        fdb_result = results["fdb"]
        print(f"  -> {len(fdb_result)} result rows; plan: {fdb_result.plan}\n")

    print("Top 5 customers by revenue (Q7 with LIMIT):")
    q7 = WORKLOAD["Q7"].query.with_order([("revenue", "desc")]).with_limit(5)
    for customer, revenue in session.execute(q7).rows:
        print(f"  {customer}: {revenue}")


if __name__ == "__main__":
    main()
