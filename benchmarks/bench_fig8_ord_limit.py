"""Figure 8 — ORD queries Q10-Q13 with and without LIMIT 10.

The paper's findings regenerated here: Q10 needs no restructuring
(the view already supports the order); Q11 is also free for FDB — the
same factorisation supports several orders simultaneously — while flat
engines must re-sort; Q12 needs a single swap; Q13 re-sorts a relation
by partial restructuring.  The LIMIT variants isolate restructuring
cost from enumeration (constant-delay: the first 10 tuples are nearly
free for FDB).
"""

from __future__ import annotations

import pytest

from repro.bench.engines import FDBAdapter, RDBAdapter, SQLiteAdapter
from repro.data.workloads import ORD_QUERIES, WORKLOAD

ENGINES = {
    "FDB": lambda: FDBAdapter(output="flat"),
    "SQLite": SQLiteAdapter,
    "RDB-sort": lambda: RDBAdapter(grouping="sort"),
}


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("query_name", ORD_QUERIES)
@pytest.mark.parametrize("limited", [False, True], ids=["full", "lim10"])
def test_fig8(benchmark, workload_db, engine_name, query_name, limited):
    adapter = ENGINES[engine_name]()
    adapter.prepare(workload_db)
    query = WORKLOAD[query_name].query
    if limited:
        query = query.with_limit(10)
    benchmark.extra_info.update(
        {
            "figure": 8,
            "engine": engine_name,
            "query": query_name,
            "limit": limited,
        }
    )
    rows = benchmark.pedantic(adapter.run, args=(query,), rounds=3, iterations=1)
    assert rows > 0
