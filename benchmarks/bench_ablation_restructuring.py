"""Ablation — partial restructuring vs re-sorting (Section 6, optim. 2).

The Q13 scenario: a relation sorted by (date, customer, package) must
be re-sorted by (customer, date, package).  FDB swaps two adjacent
attributes of the factorisation — the package lists stay sorted — while
the alternatives pay for a full sort or a full rebuild.
"""

from __future__ import annotations

import pytest

from repro.core import operators as ops
from repro.core.build import factorise_path
from repro.core.enumerate import iter_tuples
from repro.relational.sort import sort_rows

TARGET = ["customer", "date", "package"]


@pytest.mark.parametrize(
    "variant", ["partial-restructure", "flatten-sort", "rebuild"]
)
def test_ablation_restructuring(benchmark, workload_db, variant):
    fact = workload_db.get_factorised("R3")
    flat = workload_db.flat("R3")
    benchmark.extra_info.update({"variant": variant})

    if variant == "partial-restructure":

        def run() -> int:
            current = ops.swap(fact, "customer")
            return sum(1 for _ in iter_tuples(current))

    elif variant == "flatten-sort":

        def run() -> int:
            rows = list(iter_tuples(fact))
            return len(sort_rows(rows, fact.schema(), TARGET))

    else:

        def run() -> int:
            rebuilt = factorise_path(flat, key="Orders", order=TARGET)
            return sum(1 for _ in iter_tuples(rebuilt))

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == len(flat)
