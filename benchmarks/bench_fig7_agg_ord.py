"""Figure 7 — AGG+ORD queries Q6-Q9 on the factorised view R1.

The paper's finding: ordering adds only marginal overhead to the
aggregate queries — Q6's order is already satisfied by Q2's result,
Q7 re-orders by the (small) aggregate output, Q8/Q9 apply the two
orders to Q3's result.
"""

from __future__ import annotations

import pytest

from repro.bench.engines import FDBAdapter, RDBAdapter, SQLiteAdapter
from repro.data.workloads import AGG_ORD_QUERIES, WORKLOAD

ENGINES = {
    "FDB": lambda: FDBAdapter(output="flat"),
    "SQLite": SQLiteAdapter,
    "RDB-sort": lambda: RDBAdapter(grouping="sort"),
    "RDB-hash": lambda: RDBAdapter(grouping="hash"),
}

QUERIES = ("Q2", "Q3") + AGG_ORD_QUERIES  # unordered baselines included


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("query_name", QUERIES)
def test_fig7(benchmark, workload_db, engine_name, query_name):
    adapter = ENGINES[engine_name]()
    adapter.prepare(workload_db)
    query = WORKLOAD[query_name].query
    benchmark.extra_info.update(
        {"figure": 7, "engine": engine_name, "query": query_name}
    )
    rows = benchmark.pedantic(adapter.run, args=(query,), rounds=3, iterations=1)
    assert rows > 0
