"""Server-mode throughput and latency under concurrent clients.

Boots the asyncio HTTP front-end (:mod:`repro.server`) over the
generated workload database and hammers it with 1, 4, and 16
concurrent clients — each a separate *process*, so client-side work
never shares the server's interpreter and the measurement reflects how
far the server pipeline actually scales when requests overlap.  Each
concurrency level runs twice: reads only, and reads with a concurrent
mutation load (a writer client inserting throughout), which exercises
snapshot pinning, version-validated caches, and the single writer lock
under pressure.

Reported per cell: aggregate requests/second and p50/p99 per-request
latency.  Writes ``BENCH_PR6.json``.  The default (full) run checks
the PR's acceptance criterion: ≥ 2× aggregate read throughput at 16
clients vs 1 on a multi-core host.

Usage::

    python benchmarks/bench_server.py             # full measurement
    python benchmarks/bench_server.py --quick     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The read mix: a cached aggregate, a parameterised point lookup, and
#: a grouped aggregate over a second view — rotated per request.
READ_SQLS = (
    "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer",
    "SELECT COUNT(*) AS n FROM Orders",
    "SELECT item, SUM(price) AS total FROM R2 GROUP BY item",
)


def _client_worker(port: int, requests: int) -> list[float]:
    """One client process: run ``requests`` reads, return latencies."""
    from repro.server import Client

    latencies = []
    with Client(port=port, timeout=60.0) as client:
        for index in range(requests):
            sql = READ_SQLS[index % len(READ_SQLS)]
            started = time.perf_counter()
            client.query(sql)
            latencies.append(time.perf_counter() - started)
            if index % 10 == 9:
                client.refresh()  # pick up concurrent commits
    return latencies


def _measure(
    port: int, clients: int, requests: int, context
) -> dict:
    """Aggregate throughput + latency for ``clients`` processes.

    Worker processes are spawned and warmed (interpreter + import +
    first request) *before* the clock starts, so the cell measures the
    server under load, not process startup.
    """
    if clients == 1:
        _client_worker(port, 3)  # warm the connection path
        started = time.perf_counter()
        batches = [_client_worker(port, requests)]
        elapsed = time.perf_counter() - started
    else:
        with context.Pool(processes=clients) as pool:
            pool.starmap(_client_worker, [(port, 3)] * clients)
            started = time.perf_counter()
            batches = pool.starmap(
                _client_worker, [(port, requests)] * clients
            )
            elapsed = time.perf_counter() - started
    latencies = sorted(lat for batch in batches for lat in batch)
    total = len(latencies)
    return {
        "clients": clients,
        "requests": total,
        "seconds": elapsed,
        "throughput_rps": total / elapsed,
        "p50_ms": latencies[total // 2] * 1000,
        "p99_ms": latencies[min(total - 1, int(total * 0.99))] * 1000,
    }


class _MutationLoad:
    """A writer hammering inserts for the duration of a measurement."""

    def __init__(self, port: int) -> None:
        self.port = port
        self.writes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        from repro.server import Client

        with Client(port=self.port, timeout=60.0) as client:
            while not self._stop.is_set():
                client.insert(
                    "Items", [(f"bench-{self.writes}", self.writes % 97)]
                )
                self.writes += 1
                time.sleep(0.002)

    def __enter__(self) -> "_MutationLoad":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: small scale"
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR6.json"),
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 0.25)
    requests = args.requests if args.requests is not None else (
        30 if args.quick else 150
    )
    levels = (1, 4) if args.quick else (1, 4, 16)

    from repro.data.workloads import build_workload_database
    from repro.server import Server

    print(f"building workload database (scale={scale}) ...")
    database = build_workload_database(scale=scale)
    context = multiprocessing.get_context("spawn")

    cells = []
    with Server(
        database, port=0, pool_size=max(levels) + 2, workers=max(levels) + 2
    ) as server:
        print(f"server on {server.url}, pool={server.pool.size}\n")
        header = (
            f"{'clients':>8} {'mutations':>10} {'req/s':>10} "
            f"{'p50 ms':>8} {'p99 ms':>8}"
        )
        print(header)
        print("-" * len(header))
        for clients in levels:
            for mutate in (False, True):
                per_client = max(10, requests // clients) if clients > 1 else requests
                if mutate:
                    with _MutationLoad(server.port) as load:
                        cell = _measure(server.port, clients, per_client, context)
                    cell["writes"] = load.writes
                else:
                    cell = _measure(server.port, clients, per_client, context)
                cell["mutation_load"] = mutate
                cells.append(cell)
                print(
                    f"{cell['clients']:>8} {str(mutate):>10} "
                    f"{cell['throughput_rps']:>10.1f} "
                    f"{cell['p50_ms']:>8.2f} {cell['p99_ms']:>8.2f}"
                )
        stats = server.pool.stats()

    read_cells = {
        c["clients"]: c for c in cells if not c["mutation_load"]
    }
    scaling = (
        read_cells[max(levels)]["throughput_rps"]
        / read_cells[1]["throughput_rps"]
    )
    print(
        f"\nread throughput scaling x{scaling:.2f} "
        f"({max(levels)} clients vs 1, {os.cpu_count()} cores)"
    )

    payload = {
        "benchmark": "server",
        "scale": scale,
        "requests_per_level": requests,
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "levels": cells,
        "read_scaling": scaling,
        "pool_stats": stats,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    if not args.quick and (os.cpu_count() or 1) > 1 and scaling < 2.0:
        print(
            f"FAIL: aggregate read throughput at {max(levels)} clients "
            f"only x{scaling:.2f} over 1 client (needed >= 2.0)"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
