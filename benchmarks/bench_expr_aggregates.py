"""Expression aggregates — factorised vs flat vs SQLite on SUM(A*B).

The paper's Section 3.2 evaluates aggregates over arithmetic
expressions directly on the factorisation; with A and B on independent
branches, Σ A·B per group is the product of the branch sums — no
flattening.  This benchmark joins Measure(k, a) with Weight(k, b) and
times ``SELECT k, SUM(a * b) GROUP BY k`` across scales on:

- ``FDB``      — factorised evaluation (native distribution),
- ``RDB-sort`` — the flat baseline (row-wise expression evaluation),
- ``SQLite``   — the real ``sqlite3`` fed generated SQL.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.engines import FDBAdapter, RDBAdapter, SQLiteAdapter
from repro.database import Database
from repro.expr import col
from repro.query import Query, aggregate
from repro.relational.relation import Relation

SCALES = (0.25, 0.5, 1.0)

ENGINES = {
    "FDB": lambda: FDBAdapter(output="flat"),
    "RDB-sort": lambda: RDBAdapter(grouping="sort"),
    "SQLite": SQLiteAdapter,
}


def _expr_database(scale: float, seed: int = 2013) -> Database:
    """Two relations sharing a key: a and b land on independent branches."""
    rng = random.Random(f"expr/{seed}/{scale!r}")
    keys = max(1, round(200 * scale))
    per_key = max(1, round(20 * scale))
    measures = [
        (k, rng.randint(1, 50))
        for k in range(keys)
        for _ in range(rng.randint(1, per_key))
    ]
    weights = [
        (k, rng.randint(1, 9))
        for k in range(keys)
        for _ in range(rng.randint(1, per_key))
    ]
    return Database(
        [
            Relation(("k", "a"), measures, name="Measure"),
            Relation(("k", "b"), weights, name="Weight"),
        ]
    )


def _query() -> Query:
    return Query(
        relations=("Measure", "Weight"),
        group_by=("k",),
        aggregates=(aggregate("sum", col("a") * col("b"), "weighted"),),
        name="sum_a_times_b",
    )


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("scale", SCALES)
def test_expr_aggregate_engines(benchmark, engine_name, scale):
    engine = ENGINES[engine_name]()
    engine.prepare(_expr_database(scale))
    query = _query()
    benchmark.extra_info.update(
        {"engine": engine_name, "scale": scale, "query": "SUM(a*b)"}
    )
    rows = benchmark.pedantic(
        engine.run, args=(query,), rounds=3, iterations=1
    )
    assert rows > 0
    if engine_name == "FDB":
        # Independent branches: the factorised path must stay native.
        stats = engine.last_expression_stats
        assert stats is not None and stats.flatten_events == 0
