"""Shared fixtures for the figure-regeneration benchmarks.

The default scale keeps a full ``pytest benchmarks/ --benchmark-only``
run in the minutes range; raise ``REPRO_BENCH_SCALE`` (and
``REPRO_BENCH_SCALES``) for a fuller reproduction.
"""

from __future__ import annotations

import os

import pytest

from repro.data.workloads import build_workload_database

DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def workload_db():
    """The scaled database with materialised views R1, R2, R3."""
    return build_workload_database(scale=DEFAULT_SCALE)


@pytest.fixture(scope="session")
def flat_db():
    """Base relations only (Experiment 2 input)."""
    return build_workload_database(scale=DEFAULT_SCALE, materialise_views=False)
