"""Figure 4 — effect of dataset scale on performance (Q2, Q3).

One benchmark per (engine, query, scale) cell; the paper's finding is
that FDB's advantage over the flat engines *widens* with scale on the
factorised materialised view.
"""

from __future__ import annotations

import pytest

from repro.bench.engines import FDBAdapter, RDBAdapter, SQLiteAdapter
from repro.bench.harness import env_scales
from repro.data.workloads import WORKLOAD, build_workload_database

SCALES = env_scales()
ENGINES = {
    "FDB": lambda: FDBAdapter(output="flat"),
    "SQLite": SQLiteAdapter,
    "RDB-sort": lambda: RDBAdapter(grouping="sort"),
    "RDB-hash": lambda: RDBAdapter(grouping="hash"),
}

_DB_CACHE: dict[float, object] = {}


def _database(scale: float):
    if scale not in _DB_CACHE:
        _DB_CACHE[scale] = build_workload_database(scale=scale)
    return _DB_CACHE[scale]


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("query_name", ["Q2", "Q3"])
def test_fig4(benchmark, scale, engine_name, query_name):
    adapter = ENGINES[engine_name]()
    adapter.prepare(_database(scale))
    query = WORKLOAD[query_name].query
    benchmark.extra_info.update(
        {"figure": 4, "engine": engine_name, "query": query_name, "scale": scale}
    )
    rows = benchmark.pedantic(adapter.run, args=(query,), rounds=3, iterations=1)
    assert rows > 0
