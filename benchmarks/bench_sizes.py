"""Representation-size study (Section 6 text).

Regenerates the paper's succinctness claim: the flat join grows
polynomially faster than its factorisation (paper: s^4 vs s^3 on their
parameters; see EXPERIMENTS.md for the measured exponents under the
generator as described in the text).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import env_scales, fit_loglog_slope
from repro.core.build import factorise
from repro.data.generator import GeneratorConfig, generate
from repro.data.workloads import section6_ftree
from repro.relational.operators import multiway_join

SCALES = env_scales()


@pytest.mark.parametrize("scale", SCALES)
def test_factorise_r1(benchmark, scale):
    """Time to build the factorised view (excluded from query timings)."""
    data = generate(GeneratorConfig(scale=scale))
    joined = multiway_join(list(data.relations()))
    fact = benchmark.pedantic(
        factorise, args=(joined, section6_ftree()), rounds=1, iterations=1
    )
    flat_singletons = len(joined) * len(joined.schema)
    benchmark.extra_info["flat_singletons"] = flat_singletons
    benchmark.extra_info["fact_singletons"] = fact.size()
    benchmark.extra_info["gap"] = flat_singletons / fact.size()
    assert fact.size() < flat_singletons


def test_growth_exponents():
    """The flat representation must grow strictly faster (shape check)."""
    flat_points, fact_points = [], []
    for scale in SCALES:
        data = generate(GeneratorConfig(scale=scale))
        joined = multiway_join(list(data.relations()))
        flat_points.append((scale, len(joined) * len(joined.schema)))
        fact_points.append((scale, factorise(joined, section6_ftree()).size()))
    flat_slope = fit_loglog_slope(flat_points)
    fact_slope = fit_loglog_slope(fact_points)
    assert flat_slope > fact_slope + 0.2, (
        f"expected a polynomial succinctness gap; measured exponents "
        f"flat={flat_slope:.2f} fact={fact_slope:.2f}"
    )
