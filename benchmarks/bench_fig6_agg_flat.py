"""Figure 6 — AGG queries on flat input, with manually optimised plans.

The queries are rewritten over the base relations (Orders ⋈ Packages ⋈
Items); the "man" variants use the Yan–Larson eager-aggregation rewrite
that the paper hand-crafted for SQLite and PostgreSQL.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.engines import (
    FDBAdapter,
    RDBAdapter,
    RDBEagerAdapter,
    SQLiteAdapter,
    SQLiteEagerAdapter,
)
from repro.data.workloads import AGG_QUERIES, WORKLOAD

ENGINES = {
    "FDB-fo": lambda: FDBAdapter(output="factorised"),
    "FDB": lambda: FDBAdapter(output="flat"),
    "SQLite": SQLiteAdapter,
    "SQLite-man": SQLiteEagerAdapter,
    "RDB-hash": lambda: RDBAdapter(grouping="hash"),
    "RDB-hash-man": lambda: RDBEagerAdapter(grouping="hash"),
}


def _flat_query(name: str):
    return replace(
        WORKLOAD[name].query, relations=("Orders", "Packages", "Items")
    )


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("query_name", AGG_QUERIES)
def test_fig6(benchmark, flat_db, engine_name, query_name):
    adapter = ENGINES[engine_name]()
    adapter.prepare(flat_db)
    query = _flat_query(query_name)
    benchmark.extra_info.update(
        {"figure": 6, "engine": engine_name, "query": query_name}
    )
    rows = benchmark.pedantic(adapter.run, args=(query,), rounds=3, iterations=1)
    assert rows > 0
