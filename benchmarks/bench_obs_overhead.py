"""Observability overhead: instrumented vs disabled on the fig4 workload.

Runs every fig4 workload query through the session API twice per mode —
``REPRO_OBS`` disabled (the single-attribute-check no-op fast path) and
enabled (metrics + span trees recorded) — and reports median latencies
side by side.  The PR's acceptance criterion is that the *disabled*
mode keeps the fig4 latencies where the seed had them (< 2% regression,
checked by the driver against the recorded medians) and that enabling
full instrumentation stays cheap.

Caches are disabled so every run measures real evaluation, not a
result-cache hit; the span tree and metric counts are sanity-checked in
each mode (disabled runs must record nothing).

Writes ``BENCH_PR8.json``.

Usage::

    python benchmarks/bench_obs_overhead.py            # fig4 scale (1.0)
    python benchmarks/bench_obs_overhead.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import connect  # noqa: E402
from repro.data.workloads import WORKLOAD, build_workload_database  # noqa: E402
from repro.obs import configure, metrics  # noqa: E402

QUERIES = ("Q1", "Q2", "Q5", "Q6", "Q7", "Q10")


def _sample(database, query, repeats):
    """Median-of-N wall-clock seconds through a cache-free session."""
    session = connect(database, cache=False)
    session.execute(query)  # warm the backend (store registration)
    samples = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.execute(query)
        samples.append(time.perf_counter() - start)
    return samples, result


def _count(snapshot, name):
    return sum(
        sample for _, sample in snapshot.get(name, {}).get("samples", [])
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and few repeats (CI smoke; relaxes the gate)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR8.json"),
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 1.0)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 9)

    database = build_workload_database(scale=scale, seed=args.seed)
    results = []
    overheads = []
    for name in QUERIES:
        query = WORKLOAD[name].query

        configure(enabled=False)
        before = metrics().snapshot()
        disabled_samples, disabled_result = _sample(database, query, repeats)
        assert disabled_result.span is None, "disabled run recorded a span"
        recorded = _count(metrics().snapshot(), "repro_queries_total")
        assert recorded == _count(before, "repro_queries_total"), (
            "disabled run incremented repro_queries_total"
        )

        configure(enabled=True)
        enabled_samples, enabled_result = _sample(database, query, repeats)
        assert enabled_result.span is not None, "enabled run lost its span"

        disabled_ms = statistics.median(disabled_samples) * 1000.0
        enabled_ms = statistics.median(enabled_samples) * 1000.0
        overhead_pct = (
            (enabled_ms - disabled_ms) / disabled_ms * 100.0
            if disabled_ms
            else 0.0
        )
        overheads.append(overhead_pct)
        results.append(
            {
                "query": name,
                "disabled_median_ms": disabled_ms,
                "enabled_median_ms": enabled_ms,
                "overhead_pct": overhead_pct,
                "disabled_samples_ms": [s * 1000.0 for s in disabled_samples],
                "enabled_samples_ms": [s * 1000.0 for s in enabled_samples],
            }
        )
        print(
            f"{name:<4} disabled {disabled_ms:8.2f} ms  "
            f"enabled {enabled_ms:8.2f} ms  ({overhead_pct:+.1f}%)"
        )

    median_overhead = statistics.median(overheads)
    print(f"\nmedian instrumentation overhead: {median_overhead:+.1f}%")

    payload = {
        "benchmark": "bench_obs_overhead",
        "config": {
            "scale": scale,
            "repeats": repeats,
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": results,
        "median_overhead_pct": median_overhead,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick and median_overhead > 10.0:
        print(
            f"FAIL: enabling observability costs {median_overhead:.1f}% "
            "median latency on the fig4 workload (> 10%)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
