"""Ablation — partial aggregation on/off (Section 6, optimisation 1).

Compares the greedy plan (partial γ before restructuring) against a
lazy variant that restructures the unaggregated factorisation first.
The paper credits partial aggregation with keeping intermediate
factorisations small; the lazy variant pays for swapping full-size
fragments.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import _lazy_factorised_aggregate
from repro.core.engine import FDBEngine
from repro.data.workloads import WORKLOAD


@pytest.mark.parametrize("query_name", ["Q2", "Q3", "Q4"])
@pytest.mark.parametrize("variant", ["partial", "lazy"])
def test_ablation_partial_agg(benchmark, workload_db, query_name, variant):
    query = WORKLOAD[query_name].query
    benchmark.extra_info.update({"query": query_name, "variant": variant})
    if variant == "partial":
        engine = FDBEngine()
        result = benchmark.pedantic(
            engine.execute, args=(query, workload_db), rounds=3, iterations=1
        )
        assert len(result) > 0
    else:
        fact = workload_db.get_factorised("R1")
        rows = benchmark.pedantic(
            _lazy_factorised_aggregate, args=(fact, query), rounds=3, iterations=1
        )
        assert rows > 0
