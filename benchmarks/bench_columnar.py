"""Columnar kernel speedup: fdb-columnar vs fdb-legacy vs sqlite.

Measures the fig4 aggregate queries Q2/Q3 end to end through
``FDBEngine.execute_traced`` (compile + f-plan + output, the same path
the adapters in :mod:`repro.bench.engines` measure) for both union
layouts, alongside sqlite as the flat baseline, plus per-kernel
microbenchmarks (union merge, product, γ fold) that time one operator
application on identical inputs in each layout.

The PR's acceptance criterion is that the columnar layout's Q2 median
at scale 1.0 beats the legacy layout by at least 3× on the pure-Python
path (no numpy).

Writes ``BENCH_PR9.json``.

Usage::

    python benchmarks/bench_columnar.py            # scales 0.1 and 1.0
    python benchmarks/bench_columnar.py --quick    # CI smoke (0.1 only)
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.engines import SQLiteAdapter  # noqa: E402
from repro.core import operators as ops  # noqa: E402
from repro.core.build import factorise_path  # noqa: E402
from repro.core.engine import FDBEngine  # noqa: E402
from repro.data.workloads import WORKLOAD, build_workload_database  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402

QUERIES = ("Q2", "Q3")


def _median_ms(samples) -> float:
    return statistics.median(samples) * 1000.0


def _bench_fdb(database, query, layout, repeats) -> list[float]:
    engine = FDBEngine(output="flat", layout=layout)
    engine.execute_traced(query, database)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute_traced(query, database)
        samples.append(time.perf_counter() - start)
    return samples


def _bench_sqlite(database, query, repeats) -> list[float]:
    adapter = SQLiteAdapter()
    adapter.prepare(database)
    adapter.run(query)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        adapter.run(query)
        samples.append(time.perf_counter() - start)
    return samples


# ---------------------------------------------------------------------------
# Per-kernel microbenchmarks: one operator application per layout
# ---------------------------------------------------------------------------
def _micro_inputs(rows, layout, schema=("a", "b", "c")):
    """A path factorisation over ``rows`` in the given layout."""
    relation = Relation(schema, rows)
    return factorise_path(relation, key="M", layout=layout)


def _micro_rows(n):
    groups = max(n // 4, 1)
    return [
        (i % groups, (i * 7) % 101, float(i % 13))
        for i in range(n)
    ]


def _time_operator(apply, repeats) -> list[float]:
    apply()  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        apply()
        samples.append(time.perf_counter() - start)
    return samples


def _microbench(layout, n, repeats) -> dict:
    fact = _micro_inputs(_micro_rows(n), layout)
    other = _micro_inputs(
        [(i % max(n // 5, 1), i % 11, float(i % 7)) for i in range(n)],
        layout,
        schema=("a2", "b2", "c2"),
    )

    # union merge: the sibling-merge selection σ_{A=B} intersects two
    # sorted unions entry by entry (legacy) or array by array (columnar).
    paired = ops.product(fact, other)
    samples = {}
    samples["union_merge"] = _median_ms(
        _time_operator(
            lambda: ops.merge_siblings(paired, "a", "a2"), repeats
        )
    )
    samples["product"] = _median_ms(
        _time_operator(lambda: ops.product(fact, other), repeats)
    )
    samples["gamma_fold"] = _median_ms(
        _time_operator(
            lambda: ops.apply_aggregation(
                fact, "a", ("b",), (("count", None), ("sum", "c"))
            ),
            repeats,
        )
    )
    return samples


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scale 0.1 only and few repeats (CI smoke; relaxes the gate)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR9.json"),
    )
    args = parser.parse_args(argv)

    scales = (0.1,) if args.quick else (0.1, 1.0)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 21)

    results = []
    gate_ratio = None
    for scale in scales:
        database = build_workload_database(scale=scale, seed=args.seed)
        for name in QUERIES:
            query = WORKLOAD[name].query
            columnar = _median_ms(
                _bench_fdb(database, query, "columnar", repeats)
            )
            legacy = _median_ms(_bench_fdb(database, query, "legacy", repeats))
            flat = _median_ms(_bench_sqlite(database, query, repeats))
            ratio = legacy / columnar if columnar else 0.0
            if name == "Q2" and scale == 1.0:
                gate_ratio = ratio
            results.append(
                {
                    "query": name,
                    "scale": scale,
                    "fdb_columnar_median_ms": columnar,
                    "fdb_legacy_median_ms": legacy,
                    "sqlite_median_ms": flat,
                    "legacy_over_columnar": ratio,
                }
            )
            print(
                f"{name:<4} scale {scale:<4} columnar {columnar:8.2f} ms  "
                f"legacy {legacy:8.2f} ms  sqlite {flat:8.2f} ms  "
                f"({ratio:.2f}x)"
            )

    micro_n = 2_000 if args.quick else 20_000
    micro = {}
    for layout in ("columnar", "legacy"):
        micro[layout] = _microbench(layout, micro_n, max(repeats, 5))
    for kernel in sorted(micro["columnar"]):
        c, l = micro["columnar"][kernel], micro["legacy"][kernel]
        print(
            f"kernel {kernel:<12} columnar {c:8.3f} ms  legacy {l:8.3f} ms  "
            f"({l / c if c else 0.0:.2f}x)"
        )

    payload = {
        "benchmark": "bench_columnar",
        "config": {
            "scales": list(scales),
            "repeats": repeats,
            "seed": args.seed,
            "quick": args.quick,
            "micro_rows": micro_n,
        },
        "results": results,
        "microbenchmarks": micro,
        "q2_scale1_legacy_over_columnar": gate_ratio,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick and (gate_ratio is None or gate_ratio < 3.0):
        print(
            f"FAIL: columnar beats legacy by {gate_ratio:.2f}x on Q2 at "
            "scale 1.0 (< 3x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
