"""Prepared-query lifecycle: cold plan+run vs prepared re-run vs cache hit.

Times three ways of serving the same query on the fig4-scale workload:

- ``cold``     — a fresh cache-free session per execution: every run
  pays canonicalisation, optimisation (the LP-guided f-plan search of
  Section 5.1) and evaluation;
- ``prepared`` — one ``session.prepare(query)`` handle re-run with the
  result cache disabled: evaluation still happens, optimisation is
  skipped (the retained f-plan replays);
- ``cached``   — re-executing the identical query on a caching session:
  the factorisation/result cache serves the answer after validating
  the database version against the IVM change log.

Queries run under both optimisers; the exhaustive search (the paper's
Section 5.1 plan enumeration) is where preparation pays most, since
its full cost is paid once and amortised over every re-run.

Writes ``BENCH_PR5.json``.  The default (full) run checks the PR's
acceptance criterion: the prepared re-run is measurably faster than
cold execution (≥ 1.3× median under the exhaustive optimiser) and the
cached hit is ≥ 20× faster than cold.

Usage::

    python benchmarks/bench_prepare.py             # fig4 scale (1.0)
    python benchmarks/bench_prepare.py --quick     # CI smoke: small scale
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Query, aggregate, connect  # noqa: E402
from repro.data.workloads import WORKLOAD, build_workload_database  # noqa: E402


def _queries():
    """fig4 workload queries plus the heavier base-join form of Q2."""
    join_q2 = Query(
        relations=("Orders", "Packages", "Items"),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
        name="Q2-bases",
    )
    return (
        ("Q1", WORKLOAD["Q1"].query),
        ("Q2", WORKLOAD["Q2"].query),
        ("Q7", WORKLOAD["Q7"].query),
        ("Q2-bases", join_q2),
    )


def _median_ms(samples):
    return statistics.median(samples) * 1000.0


def bench_query(database, query, optimizer, repeats):
    """(cold, prepared, cached) samples for one query/optimiser pair."""
    options = {"optimizer": optimizer}

    cold = []
    for _ in range(repeats):
        session = connect(database, cache=False, **options)
        start = time.perf_counter()
        session.execute(query)
        cold.append(time.perf_counter() - start)

    # Prepared re-run: plan retained, result cache off so evaluation
    # is really measured.
    session = connect(database, result_cache_size=0, **options)
    prepared_handle = session.prepare(query)
    prepared_handle.run()  # warm (also proves the plan executes)
    prepared = []
    for _ in range(repeats):
        start = time.perf_counter()
        prepared_handle.run()
        prepared.append(time.perf_counter() - start)

    # Cached factorisation/result hit: identical re-execution.
    caching = connect(database, **options)
    caching.execute(query)
    cached = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = caching.execute(query)
        cached.append(time.perf_counter() - start)
    assert result.lifecycle.result_cache == "hit"
    return cold, prepared, cached


def rebinding_proof(database):
    """Explain evidence: a re-bound prepared query hits the plan cache."""
    session = connect(database)
    prepared = session.prepare(
        "SELECT customer, SUM(price) AS revenue FROM R1 "
        "WHERE price > :floor GROUP BY customer"
    )
    prepared.run(floor=0)
    rebound = prepared.run(floor=10)
    return rebound.explain().splitlines()[-2:]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and few repeats (CI smoke; relaxes the checks)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR5.json"),
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 1.0)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 9)

    database = build_workload_database(scale=scale, seed=args.seed)
    results = []
    exhaustive_ratios = []
    cached_ratios = []
    for optimizer in ("greedy", "exhaustive"):
        for name, query in _queries():
            cold, prepared, cached = bench_query(
                database, query, optimizer, repeats
            )
            cold_ms, prep_ms, hit_ms = (
                _median_ms(cold),
                _median_ms(prepared),
                _median_ms(cached),
            )
            ratio = cold_ms / prep_ms if prep_ms else float("inf")
            hit_ratio = cold_ms / hit_ms if hit_ms else float("inf")
            if optimizer == "exhaustive":
                exhaustive_ratios.append(ratio)
            cached_ratios.append(hit_ratio)
            for approach, median, samples in (
                ("cold", cold_ms, cold),
                ("prepared", prep_ms, prepared),
                ("cached", hit_ms, cached),
            ):
                results.append(
                    {
                        "query": name,
                        "optimizer": optimizer,
                        "approach": approach,
                        "median_ms": median,
                        "samples_ms": [s * 1000.0 for s in samples],
                    }
                )
            print(
                f"{optimizer:>10} {name:<9} cold {cold_ms:8.2f} ms  "
                f"prepared {prep_ms:8.2f} ms  cached {hit_ms:7.3f} ms  "
                f"(cold/prepared = {ratio:.2f}x, cold/cached = {hit_ratio:.0f}x)"
            )

    proof = rebinding_proof(database)
    print("\nre-bound prepared query explain() proof:")
    print("\n".join(f"  {line}" for line in proof))

    best_prepared = max(exhaustive_ratios)
    best_cached = max(cached_ratios)
    payload = {
        "benchmark": "bench_prepare",
        "config": {
            "scale": scale,
            "repeats": repeats,
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": results,
        "best_exhaustive_cold_over_prepared": best_prepared,
        "best_cold_over_cached": best_cached,
        "rebinding_explain": proof,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if not any("plan cache hit" in line for line in proof):
        print("FAIL: re-bound prepared query did not report a plan cache hit")
        return 1
    if not args.quick:
        if best_prepared < 1.3:
            print(
                f"FAIL: prepared re-run only {best_prepared:.2f}x faster "
                "than cold execute under the exhaustive optimiser (< 1.3x)"
            )
            return 1
        if best_cached < 20.0:
            print(
                f"FAIL: cached hit only {best_cached:.1f}x faster than "
                "cold execute (< 20x)"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
