"""Figure 5 — AGG queries Q1-Q5 on the factorised materialised view R1.

Engine line-up as in the paper: FDB f/o (factorised output), FDB (flat
output), SQLite, and the RDB baselines (RDB-sort models SQLite's
grouping, RDB-hash models PostgreSQL's — Experiment 5 found RDB tracks
SQLite closely, which these cells re-verify in the same runtime).
"""

from __future__ import annotations

import pytest

from repro.bench.engines import FDBAdapter, RDBAdapter, SQLiteAdapter
from repro.data.workloads import AGG_QUERIES, WORKLOAD

ENGINES = {
    "FDB-fo": lambda: FDBAdapter(output="factorised"),
    "FDB": lambda: FDBAdapter(output="flat"),
    "SQLite": SQLiteAdapter,
    "RDB-sort": lambda: RDBAdapter(grouping="sort"),
    "RDB-hash": lambda: RDBAdapter(grouping="hash"),
}


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("query_name", AGG_QUERIES)
def test_fig5(benchmark, workload_db, engine_name, query_name):
    adapter = ENGINES[engine_name]()
    adapter.prepare(workload_db)
    query = WORKLOAD[query_name].query
    benchmark.extra_info.update(
        {"figure": 5, "engine": engine_name, "query": query_name}
    )
    rows = benchmark.pedantic(adapter.run, args=(query,), rounds=3, iterations=1)
    assert rows > 0
