"""Optimiser study — greedy vs exhaustive plan search (Section 5).

The paper reports that the greedy heuristic finds optimal f-plans under
the asymptotic size-bound metric for the whole workload; these benches
time both optimisers and assert the greedy plans reach the optimal
dominant exponent.
"""

from __future__ import annotations

import pytest

from repro.core.cost import Hypergraph, s_parameter
from repro.core.engine import expand_functions
from repro.core.optimizer import ExhaustiveOptimizer, GreedyOptimizer, PlanContext
from repro.data.workloads import AGG_ORD_QUERIES, AGG_QUERIES, WORKLOAD, section6_ftree

HYPERGRAPH = Hypergraph(
    {
        "Orders": ("customer", "date", "package"),
        "Packages": ("package", "item"),
        "Items": ("item", "price"),
    }
)


def _context(name: str) -> PlanContext:
    query = WORKLOAD[name].query
    aliases = {s.alias for s in query.aggregates}
    return PlanContext(
        hypergraph=HYPERGRAPH,
        kept=frozenset(query.group_by),
        functions=expand_functions(query.aggregates),
        order=tuple(k for k in query.order_by if k.attribute not in aliases),
    )


@pytest.mark.parametrize("query_name", AGG_QUERIES + AGG_ORD_QUERIES)
@pytest.mark.parametrize("strategy", ["greedy", "exhaustive"])
def test_optimizer(benchmark, query_name, strategy):
    ftree = section6_ftree()
    ctx = _context(query_name)
    optimizer = GreedyOptimizer() if strategy == "greedy" else ExhaustiveOptimizer()
    benchmark.extra_info.update({"query": query_name, "strategy": strategy})
    plan = benchmark.pedantic(
        optimizer.plan, args=(ftree, ctx), rounds=3, iterations=1
    )
    trees = plan.simulate(ftree)[1:]
    exponent = max((s_parameter(t, HYPERGRAPH) for t in trees), default=0.0)
    benchmark.extra_info["dominant_exponent"] = exponent


@pytest.mark.parametrize("query_name", AGG_QUERIES + AGG_ORD_QUERIES)
def test_greedy_matches_exhaustive_exponent(query_name):
    """The paper: greedy plans are optimal under the asymptotic metric."""
    ftree = section6_ftree()
    ctx = _context(query_name)
    greedy = GreedyOptimizer().plan(ftree, ctx)
    exhaustive = ExhaustiveOptimizer().plan(ftree, ctx)
    greedy_exp = max(
        (s_parameter(t, HYPERGRAPH) for t in greedy.simulate(ftree)[1:]),
        default=0.0,
    )
    exhaustive_exp = max(
        (s_parameter(t, HYPERGRAPH) for t in exhaustive.simulate(ftree)[1:]),
        default=0.0,
    )
    assert greedy_exp <= exhaustive_exp + 1e-9
