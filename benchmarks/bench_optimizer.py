"""Optimiser study — cost-based vs greedy vs exhaustive plan search.

Two workloads, three strategies:

- the fig4 named queries end to end through
  ``FDBEngine.execute_planned`` — the steady-state session path, where
  the plan cache has retained the compiled plan and every run replays
  it against fresh inputs — plus the one-off optimisation time per
  strategy (``FDBEngine.compile`` after a warm statistics cache), and
- a skewed synthetic workload (a selection between a high-distinct and
  a low-distinct branch where the asymptotic metric ties), where plan
  quality is the peak intermediate singleton count from the execution
  trace.

The PR's acceptance gate (non-quick runs): the cost-based strategy is
never more than 10% slower end-to-end than the best static strategy on
any fig4 query (compared at the per-strategy noise floor, the minimum
interleaved sample), and it picks a measurably smaller plan than
greedy on the skewed workload.

Writes ``BENCH_PR10.json``.

Usage::

    python benchmarks/bench_optimizer.py            # full study + gate
    python benchmarks/bench_optimizer.py --quick    # CI smoke, no gate
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.build import factorise  # noqa: E402
from repro.core.engine import FDBEngine  # noqa: E402
from repro.core.ftree import build_ftree  # noqa: E402
from repro.data.workloads import WORKLOAD, build_workload_database  # noqa: E402
from repro.database import Database  # noqa: E402
from repro.query import Equality, Query  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.stats import stats_cache  # noqa: E402

STRATEGIES = ("greedy", "exhaustive", "cost")


def _median_ms(samples) -> float:
    return statistics.median(samples) * 1000.0


def _time(fn, repeats) -> list[float]:
    fn()  # warm-up (also warms the statistics cache for "cost")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def _bench_query(database, query, repeats):
    """Per-strategy medians and minima with interleaved sampling.

    One sample per strategy per round (rather than one block per
    strategy) so slow machine drift hits every strategy equally.  The
    medians are the headline numbers; the gate compares per-strategy
    *minimum* samples — the classic noise-floor estimate (cf. timeit's
    guidance) — because a worst-of-13 median statistic on a shared
    machine trips on scheduling spikes, not on plan quality.
    """
    engines = {
        strategy: FDBEngine(output="flat", optimizer=strategy)
        for strategy in STRATEGIES
    }
    compiled = {
        strategy: engine.compile(query, database)
        for strategy, engine in engines.items()
    }
    samples = {strategy: [] for strategy in STRATEGIES}
    optimise_samples = {strategy: [] for strategy in STRATEGIES}
    for strategy, engine in engines.items():  # warm-up
        engine.execute_planned(compiled[strategy], query, database)
    for _ in range(repeats):
        for strategy, engine in engines.items():
            start = time.perf_counter()
            engine.execute_planned(compiled[strategy], query, database)
            samples[strategy].append(time.perf_counter() - start)
            start = time.perf_counter()
            engine.compile(query, database)
            optimise_samples[strategy].append(time.perf_counter() - start)
    return (
        {strategy: _median_ms(samples[strategy]) for strategy in STRATEGIES},
        {
            strategy: min(samples[strategy]) * 1000.0
            for strategy in STRATEGIES
        },
        {
            strategy: _median_ms(optimise_samples[strategy])
            for strategy in STRATEGIES
        },
    )


# ---------------------------------------------------------------------------
# Skewed synthetic workload: asymptotic tie, data-dependent winner
# ---------------------------------------------------------------------------
def _block(j, a_vals, xs, c_vals, ys):
    left = [(a, x) for a in a_vals for x in xs]
    right = [(c, y) for c in c_vals for y in ys]
    return [(j, a, x, c, y) for (a, x) in left for (c, y) in right]


def _skew_database(heavy: int) -> Database:
    """V(j, a, x, c, y) over j → (a → x, c → y): ``x`` has ``heavy``
    fresh distinct values per j while ``y`` keeps a 6-value domain, so
    resolving ``x = y`` from the small side is strictly cheaper — a
    difference the asymptotic size bound cannot see (every node has
    ρ* = 1)."""
    rows = []
    for j in range(4):
        rows += _block(
            j,
            [f"a{j}_{i}" for i in range(2)],
            [1000 * j + k for k in range(heavy)],
            [f"c{j}_{i}" for i in range(2)],
            list(range(6)),
        )
    relation = Relation(("j", "a", "x", "c", "y"), rows, name="V")
    tree = build_ftree([("j", [("a", ["x"]), ("c", ["y"])])])
    database = Database([relation])
    database.add_factorised("V", factorise(relation, tree).to_columnar())
    return database


SKEW_QUERY = Query(relations=("V",), equalities=(Equality("x", "y"),))


def _bench_skew(heavy, repeats) -> dict:
    database = _skew_database(heavy)
    out = {"rows": len(database.flat("V").rows), "heavy_distincts": heavy}
    for strategy in STRATEGIES:
        engine = FDBEngine(output="flat", optimizer=strategy)
        compiled = engine.compile(SKEW_QUERY, database)
        _, _, trace = engine.execute_planned(compiled, SKEW_QUERY, database)
        total = _median_ms(
            _time(
                lambda: engine.execute_planned(
                    compiled, SKEW_QUERY, database
                ),
                repeats,
            )
        )
        out[strategy] = {
            "median_ms": total,
            "peak_singletons": max(trace.sizes),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and few repeats (CI smoke; skips the gate)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_PR10.json"
        ),
    )
    args = parser.parse_args(argv)

    scale = 0.1 if args.quick else 1.0
    repeats = (
        args.repeats if args.repeats is not None else (3 if args.quick else 11)
    )
    names = ("Q2", "Q10") if args.quick else tuple(sorted(WORKLOAD))

    stats_cache().clear()
    database = build_workload_database(scale=scale, seed=args.seed)
    results = []
    worst_ratio = 0.0
    for name in names:
        query = WORKLOAD[name].query
        row = {"query": name, "scale": scale}
        totals, floors, optimise = _bench_query(database, query, repeats)
        for strategy in STRATEGIES:
            row[f"{strategy}_median_ms"] = totals[strategy]
            row[f"{strategy}_min_ms"] = floors[strategy]
            row[f"{strategy}_optimise_ms"] = optimise[strategy]
        best_static = min(row["greedy_min_ms"], row["exhaustive_min_ms"])
        ratio = row["cost_min_ms"] / best_static if best_static else 0.0
        row["cost_over_best_static"] = ratio
        worst_ratio = max(worst_ratio, ratio)
        results.append(row)
        print(
            f"{name:<4} greedy {row['greedy_median_ms']:8.2f} ms  "
            f"exhaustive {row['exhaustive_median_ms']:8.2f} ms  "
            f"cost {row['cost_median_ms']:8.2f} ms  ({ratio:.2f}x best "
            f"floor, optimise {row['cost_optimise_ms']:.3f} ms)"
        )

    skew = _bench_skew(heavy=8 if args.quick else 40, repeats=repeats)
    for strategy in STRATEGIES:
        entry = skew[strategy]
        print(
            f"skew {strategy:<10} {entry['median_ms']:8.2f} ms  "
            f"peak {entry['peak_singletons']} singletons"
        )

    payload = {
        "benchmark": "bench_optimizer",
        "config": {
            "scale": scale,
            "repeats": repeats,
            "seed": args.seed,
            "quick": args.quick,
            "queries": list(names),
        },
        "results": results,
        "skewed": skew,
        "worst_cost_over_best_static": worst_ratio,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick:
        failed = False
        if worst_ratio > 1.10:
            print(
                f"FAIL: cost-based is {worst_ratio:.2f}x the best static "
                "strategy's noise floor on some query (> 1.10x)"
            )
            failed = True
        cost_peak = skew["cost"]["peak_singletons"]
        greedy_peak = skew["greedy"]["peak_singletons"]
        if cost_peak >= greedy_peak:
            print(
                f"FAIL: cost-based peak {cost_peak} singletons is not below "
                f"greedy's {greedy_peak} on the skewed workload"
            )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
