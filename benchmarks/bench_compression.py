"""Beyond f-trees (Section 8): tree vs DAG representation sizes.

The paper's conclusion proposes more succinct representations such as
decision diagrams as future work; hash-consing equal fragments is the
first step.  These benches measure the compression pass and record the
tree-vs-DAG singleton counts on the workload view.
"""

from __future__ import annotations

import pytest

from repro.core.compress import dag_size, hash_cons, sharing_report


@pytest.fixture(scope="module")
def view(workload_db):
    return workload_db.get_factorised("R1")


def test_hash_cons_cost(benchmark, view):
    compressed = benchmark.pedantic(hash_cons, args=(view,), rounds=3, iterations=1)
    report = sharing_report(view)
    benchmark.extra_info["tree_singletons"] = report.tree_singletons
    benchmark.extra_info["dag_singletons"] = report.dag_singletons
    benchmark.extra_info["compression_ratio"] = round(report.ratio, 3)
    assert compressed.size() == view.size()


def test_dag_size_cost(benchmark, view):
    size = benchmark.pedantic(dag_size, args=(view,), rounds=3, iterations=1)
    assert size <= view.size()
