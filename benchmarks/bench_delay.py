"""Constant-delay enumeration verification (Section 4.1).

The theoretical core of the ordering results: tuples of a factorised
result can be enumerated with delay *constant in the data size*.  These
benches measure the maximum inter-tuple delay while enumerating views
of different sizes and check it does not grow with scale (the total
time of course does — linearly).
"""

from __future__ import annotations

import time

import pytest

from repro.core.enumerate import iter_tuples
from repro.data.workloads import build_workload_database

SCALES = [0.25, 0.5, 1.0]


def _max_delay(iterator, warmup: int = 5) -> float:
    """Largest gap between consecutive tuples (ignoring warm-up)."""
    gaps = []
    last = time.perf_counter()
    for index, _ in enumerate(iterator):
        now = time.perf_counter()
        if index >= warmup:
            gaps.append(now - last)
        last = now
    return max(gaps) if gaps else 0.0


@pytest.mark.parametrize("scale", SCALES)
def test_enumeration_delay(benchmark, scale):
    database = build_workload_database(scale=scale)
    fact = database.get_factorised("R1")

    def run() -> float:
        return _max_delay(iter_tuples(fact, ["package", "date", "item"]))

    max_delay = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["tuples"] = len(database.flat("R1"))
    benchmark.extra_info["max_delay_us"] = round(max_delay * 1e6, 1)
    # Constant delay: even at the largest scale a single step stays far
    # below any data-size-dependent bound (generous margin for noise).
    assert max_delay < 0.01


def test_delay_does_not_grow_with_scale():
    """The paper's claim, checked across a 4× scale range."""
    delays = []
    for scale in (0.25, 1.0):
        database = build_workload_database(scale=scale)
        fact = database.get_factorised("R1")
        # Take the median of three runs to damp scheduler noise.
        runs = sorted(
            _max_delay(iter_tuples(fact, ["package", "date", "item"]))
            for _ in range(3)
        )
        delays.append(runs[1])
    # 4× the data must not mean 4× the per-tuple delay; allow noise.
    assert delays[1] < delays[0] * 4 + 0.005
