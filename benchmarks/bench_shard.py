"""Sharded parallel execution vs the single-partition FDB baseline.

Runs the fig4-scale aggregate workload (Q1–Q5, Q7) plus a top-k
ordered enumeration (Q10 with LIMIT) through:

- ``fdb``          — the unsharded baseline on the registered views;
- ``fdb-parallel`` — 1, 2, 4 and 8 shards (1 shard exercises the
  deterministic sequential path; larger counts use a forked process
  pool with ``min(shards, cpu_count)`` workers).

Shard-store preparation (partitioning + per-shard factorisations) is
excluded from query timings, like the paper excludes data import.
Every sharded result is checked row-identical (as a set; ordered
queries also key-identical) against the fdb baseline before timing
counts.

Writes ``BENCH_PR4.json``.  The full run checks the PR's acceptance
criterion — a ≥ 1.5× median wall-clock speedup over the 1-shard
baseline on at least one aggregate query with 4+ shards — whenever the
machine can express it (the check needs ≥ 2 usable cores: shard
evaluation is pure-Python CPU work, so on a single core the parallel
engine can only tie the sequential one; the JSON records ``cpu_count``
so readers can interpret the numbers).

Usage::

    python benchmarks/bench_shard.py             # fig4 scale (1.0)
    python benchmarks/bench_shard.py --quick     # CI smoke: small scale
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import connect  # noqa: E402
from repro.data.workloads import (  # noqa: E402
    WORKLOAD,
    build_workload_database,
)
from repro.relational.sort import sort_rows  # noqa: E402

AGG_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q7")
SHARD_COUNTS = (1, 2, 4, 8)
TOPK_LIMIT = 25


def _queries(quick: bool):
    names = AGG_QUERIES[:3] if quick else AGG_QUERIES
    queries = [(name, WORKLOAD[name].query, True) for name in names]
    queries.append(
        ("Q10topk", WORKLOAD["Q10"].query.with_limit(TOPK_LIMIT), False)
    )
    return queries


def _median_ms(samples):
    return statistics.median(samples) * 1000.0


def _check_parity(name, query, expected, actual) -> None:
    if sorted(map(repr, actual.rows)) != sorted(map(repr, expected.rows)):
        if query.limit is None:
            raise SystemExit(f"FAIL: {name} rows differ from the fdb baseline")
    if query.order_by:
        keys = [k.attribute for k in query.order_by]
        positions = [actual.schema.index(k) for k in keys]
        projected = [tuple(r[p] for p in positions) for r in actual.rows]
        if projected != sort_rows(projected, keys, query.order_by):
            raise SystemExit(f"FAIL: {name} violates its ORDER BY")


def _time_engine(session, queries, baseline_rows, repeats):
    results = []
    for name, query, is_aggregate in queries:
        result = session.execute(query)  # warm-up + parity check
        if baseline_rows is not None:
            _check_parity(name, query, baseline_rows[name], result)
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            session.execute(query)
            samples.append(time.perf_counter() - start)
        results.append((name, is_aggregate, samples))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and few repeats (CI smoke; skips the 1.5x check)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
        ),
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 1.0)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 9)
    cpu_count = os.cpu_count() or 1
    queries = _queries(args.quick)

    print(f"scale={scale} repeats={repeats} cpu_count={cpu_count}")
    database = build_workload_database(scale=scale, seed=args.seed)

    results = []
    medians: dict[tuple[str, str], float] = {}

    baseline = connect(database, engine="fdb")
    baseline_rows = {
        name: baseline.execute(query) for name, query, _ in queries
    }
    for name, _, samples in _time_engine(baseline, queries, None, repeats):
        medians[("fdb", name)] = _median_ms(samples)
        results.append(
            {
                "engine": "fdb",
                "query": name,
                "median_ms": _median_ms(samples),
                "samples_ms": [s * 1000.0 for s in samples],
            }
        )

    prepare_seconds = {}
    for shards in SHARD_COUNTS:
        workers = min(shards, cpu_count)
        session = connect(
            database, engine="fdb-parallel", shards=shards, workers=workers
        )
        start = time.perf_counter()
        session._resolve(None)  # build the shard store (prepare)
        prepare_seconds[shards] = time.perf_counter() - start
        label = f"fdb-parallel-{shards}"
        for name, _, samples in _time_engine(
            session, queries, baseline_rows, repeats
        ):
            medians[(label, name)] = _median_ms(samples)
            results.append(
                {
                    "engine": label,
                    "query": name,
                    "shards": shards,
                    "workers": workers,
                    "median_ms": _median_ms(samples),
                    "samples_ms": [s * 1000.0 for s in samples],
                }
            )
        session.close()
        row = "  ".join(
            f"{name} {medians[(label, name)]:7.2f}ms" for name, _, _ in queries
        )
        print(f"shards={shards} (workers={workers}, prepare "
              f"{prepare_seconds[shards] * 1000.0:.0f}ms)  {row}")

    speedups: dict[str, dict[str, float]] = {}
    best_aggregate_speedup = 0.0
    for name, _, is_aggregate in queries:
        one = medians[("fdb-parallel-1", name)]
        speedups[name] = {}
        for shards in SHARD_COUNTS:
            median = medians[(f"fdb-parallel-{shards}", name)]
            ratio = one / median if median else float("inf")
            speedups[name][str(shards)] = ratio
            if is_aggregate and shards >= 4:
                best_aggregate_speedup = max(best_aggregate_speedup, ratio)
    print(
        "best aggregate speedup over the 1-shard baseline at 4+ shards: "
        f"{best_aggregate_speedup:.2f}x"
    )

    payload = {
        "benchmark": "bench_shard",
        "config": {
            "scale": scale,
            "repeats": repeats,
            "seed": args.seed,
            "quick": args.quick,
            "cpu_count": cpu_count,
            "shard_counts": list(SHARD_COUNTS),
            "topk_limit": TOPK_LIMIT,
        },
        "results": results,
        "prepare_ms": {
            str(shards): seconds * 1000.0
            for shards, seconds in prepare_seconds.items()
        },
        "speedup_over_1_shard": speedups,
        "best_aggregate_speedup_4plus_shards": best_aggregate_speedup,
        "parallelism_expressible": cpu_count >= 2,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.quick and cpu_count >= 2 and best_aggregate_speedup < 1.5:
        print(
            f"FAIL: best aggregate speedup {best_aggregate_speedup:.2f}x "
            "< 1.5x over the 1-shard baseline with 4+ shards"
        )
        return 1
    if cpu_count < 2:
        print(
            "NOTE: single usable core — shard evaluation is CPU-bound "
            "python, so parallel speedup cannot exceed 1x here; the 1.5x "
            "criterion applies on multi-core hosts (see cpu_count in the "
            "JSON)."
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
