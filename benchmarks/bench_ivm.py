"""Incremental maintenance vs full recompute vs sqlite re-query.

Applies batches of Orders deltas to the fig4-scale workload and times
three ways of keeping derived state fresh:

- ``incremental`` — ``Database.apply``: the delta subsystem splices the
  three registered factorisations (R1, R2, R3) locally;
- ``rebuild``     — re-derive the three views from scratch (join +
  factorise), the cost every query would otherwise pay;
- ``sqlite``      — forward the base change to a prepared sqlite
  connection and re-run the Q2 aggregation over the base join.

Writes ``BENCH_PR3.json``.  The default (full) run checks the PR's
acceptance criterion: incremental maintenance beats the factorisation
rebuild by ≥ 5× median wall-clock for single-row deltas, with zero
rebuilds recorded (the independence-preserving path ran throughout).

Usage::

    python benchmarks/bench_ivm.py             # fig4 scale (1.0)
    python benchmarks/bench_ivm.py --quick     # CI smoke: small scale
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Delta, Query, aggregate, connect  # noqa: E402
from repro.core.build import factorise, factorise_path  # noqa: E402
from repro.data.workloads import (  # noqa: E402
    WORKLOAD,
    build_workload_database,
    section6_ftree,
)
from repro.relational.operators import multiway_join  # noqa: E402
from repro.relational.sort import sort_relation  # noqa: E402


def _make_deltas(database, rng, delta_rows, count):
    """``count`` alternating insert/delete Orders deltas of ``delta_rows``."""
    orders = list(database.flat("Orders").rows)
    customers = sorted({row[0] for row in orders})
    packages = sorted({row[2] for row in orders})
    deltas = []
    serial = 0
    for index in range(count):
        if index % 2 == 0:
            rows = []
            for _ in range(delta_rows):
                serial += 1
                rows.append(
                    (
                        rng.choice(customers),
                        f"dNEW{serial:06d}",
                        rng.choice(packages),
                    )
                )
            deltas.append(Delta.insert("Orders", rows))
        else:
            victims = rng.sample(orders, min(delta_rows, len(orders)))
            for victim in victims:
                orders.remove(victim)
            deltas.append(Delta.delete("Orders", victims))
    return deltas


def _rebuild_views(database):
    """Re-derive R1/R2/R3 the way build_workload_database does."""
    joined = multiway_join(
        [database.flat(n) for n in ("Orders", "Packages", "Items")]
    )
    r1 = sort_relation(joined, ["package", "date", "item"])
    fact1 = factorise(r1, section6_ftree())
    fact2 = factorise(r1, section6_ftree())
    fact3 = factorise_path(
        database.flat("Orders"),
        key="Orders",
        order=["date", "customer", "package"],
    )
    return fact1, fact2, fact3


def _median_ms(samples):
    return statistics.median(samples) * 1000.0


def bench_incremental(scale, seed, delta_rows, count):
    database = build_workload_database(scale=scale, seed=seed)
    deltas = _make_deltas(database, random.Random(f"ivm/{seed}/inc"), delta_rows, count)
    samples = []
    for delta in deltas:
        start = time.perf_counter()
        database.apply(delta)
        samples.append(time.perf_counter() - start)
    return samples, database.maintenance


def bench_rebuild(scale, seed, delta_rows, count):
    # No registered factorisations: apply only touches the flat rows,
    # and the timed work is the full view re-derivation.
    database = build_workload_database(
        scale=scale, seed=seed, materialise_views=False
    )
    deltas = _make_deltas(database, random.Random(f"ivm/{seed}/inc"), delta_rows, count)
    samples = []
    for delta in deltas:
        database.apply(delta)
        start = time.perf_counter()
        _rebuild_views(database)
        samples.append(time.perf_counter() - start)
    return samples


def bench_sqlite(scale, seed, delta_rows, count):
    database = build_workload_database(
        scale=scale, seed=seed, materialise_views=False
    )
    session = connect(database, engine="sqlite")
    query = Query(
        relations=("Orders", "Packages", "Items"),
        group_by=("customer",),
        aggregates=(aggregate("sum", "price", "revenue"),),
        name="Q2-over-bases",
    )
    session.execute(query)  # load the connection once, like prepare()
    deltas = _make_deltas(database, random.Random(f"ivm/{seed}/inc"), delta_rows, count)
    samples = []
    for delta in deltas:
        start = time.perf_counter()
        database.apply(delta)
        session.execute(query)  # forward + re-query
        samples.append(time.perf_counter() - start)
    return samples


def live_view_proof(scale, seed):
    """Run a watched Q2 through one delta and return the explain text."""
    database = build_workload_database(scale=scale, seed=seed)
    session = connect(database)
    live = session.watch(WORKLOAD["Q2"].query)
    live.result
    session.apply(
        Delta.insert("Orders", [("c000", "dPROOF01", "p00000")])
    )
    text = live.result.explain()
    return text, database.maintenance


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and few repeats (CI smoke; skips the 5x check)",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument(
        "--output", default=str(Path(__file__).resolve().parent.parent / "BENCH_PR3.json")
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 1.0)
    repeats = args.repeats if args.repeats is not None else (6 if args.quick else 20)
    delta_sizes = (1, 8) if args.quick else (1, 8, 64)

    results = []
    single_row_ratio = None
    maintenance_text = ""
    for delta_rows in delta_sizes:
        inc_samples, maintenance = bench_incremental(
            scale, args.seed, delta_rows, repeats
        )
        maintenance_text = maintenance.describe()
        if maintenance.rebuilds:
            print(
                f"WARNING: {maintenance.rebuilds} rebuilds during "
                f"incremental maintenance: {maintenance.rebuild_reasons}"
            )
        reb_samples = bench_rebuild(scale, args.seed, delta_rows, repeats)
        sql_samples = bench_sqlite(scale, args.seed, delta_rows, repeats)
        inc, reb, sql = (
            _median_ms(inc_samples),
            _median_ms(reb_samples),
            _median_ms(sql_samples),
        )
        ratio = reb / inc if inc else float("inf")
        if delta_rows == 1:
            single_row_ratio = ratio
        for approach, median, samples in (
            ("incremental", inc, inc_samples),
            ("rebuild", reb, reb_samples),
            ("sqlite", sql, sql_samples),
        ):
            results.append(
                {
                    "delta_rows": delta_rows,
                    "approach": approach,
                    "median_ms": median,
                    "samples_ms": [s * 1000.0 for s in samples],
                }
            )
        print(
            f"delta_rows={delta_rows:>3}  incremental {inc:8.3f} ms  "
            f"rebuild {reb:8.3f} ms  sqlite {sql:8.3f} ms  "
            f"(rebuild/incremental = {ratio:.1f}x)"
        )

    proof, proof_stats = live_view_proof(scale, args.seed)
    print("\nLiveView explain() proof:")
    print("\n".join(f"  {line}" for line in proof.splitlines()[-2:]))

    payload = {
        "benchmark": "bench_ivm",
        "config": {
            "scale": scale,
            "repeats": repeats,
            "delta_sizes": list(delta_sizes),
            "seed": args.seed,
            "quick": args.quick,
        },
        "results": results,
        "single_row_rebuild_over_incremental": single_row_ratio,
        "maintenance": maintenance_text,
        "factorisation_rebuilds": proof_stats.rebuilds,
        "live_view_explain": proof,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if proof_stats.rebuilds:
        print("FAIL: independence-preserving deltas caused rebuilds")
        return 1
    if not args.quick and (single_row_ratio or 0) < 5.0:
        print(
            f"FAIL: single-row incremental speedup {single_row_ratio:.1f}x "
            "< 5x over full rebuild"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
