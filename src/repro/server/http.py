"""The asyncio HTTP/JSON front-end over a :class:`SessionPool`.

``repro.server.serve(database)`` turns the library into a query server:
a small HTTP/1.1 endpoint built on stdlib :mod:`asyncio` streams only.
Each client connection leases one snapshot-pinned session from the pool
(lazily, on its first session-needing request) and keeps it for the
connection's lifetime, so every request on a connection observes one
consistent database version until the client refreshes — snapshot
isolation over the wire.  Engine work never runs on the event loop:
every handler executes in a thread-pool executor, so slow queries do
not stall other connections' request parsing or responses.

Endpoints (JSON request and response bodies):

====================  =====================================================
``GET  /health``      liveness + the current committed version
``GET  /stats``       pool/cache/server counters
``GET  /metrics``     Prometheus text exposition of the process registry
``GET  /debug/slow``  the N slowest recent queries with their span trees
``POST /query``       ``{"sql": ...}`` — SELECT returns rows, INSERT/
                      DELETE statements apply and return a change report
``POST /prepare``     ``{"sql": ...}`` → ``{"id", "parameters"}``
``POST /execute``     ``{"id", "params"}`` — run a prepared query
``POST /insert``      ``{"relation", "rows", "columns"?}``
``POST /delete``      ``{"relation", "rows"?, "all"?}``
``POST /refresh``     advance this connection's pin to the newest version
``POST /watch``       ``{"sql": ...}`` → ``{"id"}`` + the initial result
``GET  /watch/<id>``  poll a live view (refreshes the pin first)
``POST /unwatch``     ``{"id"}`` — drop a live view
====================  =====================================================

Admission control is the pool's: when all sessions are leased, a new
connection's first query waits up to the pool's ``acquire_timeout`` and
then receives ``503`` — the bounded admission queue surfacing as
back-pressure.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.database import Database, UnknownRelationError
from repro.obs import (
    CONTENT_TYPE,
    clock,
    get_logger,
    render_prometheus,
    slow_log,
)
from repro.obs.metrics import metrics
from repro.query import QueryError
from repro.server.pool import PoolClosedError, PoolTimeoutError, SessionPool

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.result import Result
    from repro.api.session import Session
    from repro.database import ApplyReport

#: Request bodies beyond this are rejected with 413.
MAX_BODY = 16 * 1024 * 1024
MAX_HEADER_LINES = 100

_HTTP_SECONDS = metrics().histogram(
    "repro_http_request_seconds",
    "Request handling wall time by endpoint.",
    ("endpoint",),
)
_HTTP_RESPONSES = metrics().counter(
    "repro_http_responses_total",
    "Responses by endpoint and status class.",
    ("endpoint", "status"),
)
_HTTP_IN_FLIGHT = metrics().gauge(
    "repro_http_requests_in_flight",
    "Requests currently being handled.",
).labels()
_ACCESS = get_logger("server")

#: Paths that keep their own metric label; anything else folds into
#: ``other`` so hostile or misdirected traffic cannot explode the
#: label cardinality of the per-endpoint series.
_KNOWN_PATHS = frozenset({
    "/health", "/stats", "/metrics", "/debug/slow", "/query", "/prepare",
    "/execute", "/insert", "/delete", "/refresh", "/watch", "/unwatch",
})


def _endpoint(path: str) -> str:
    if path.startswith("/watch/"):
        return "/watch/:id"
    return path if path in _KNOWN_PATHS else "other"


class ServerStoppedError(RuntimeError):
    """Raised when interacting with a server that is not running."""


@dataclass
class _Request:
    method: str
    path: str
    headers: dict[str, str]
    payload: Any
    keep_alive: bool


@dataclass
class _Raw:
    """A non-JSON response body with its own content type."""

    body: bytes
    content_type: str


@dataclass
class _Connection:
    """Per-connection state: the leased session and its handles."""

    session: "Session | None" = None
    prepared: dict = field(default_factory=dict)
    watches: dict = field(default_factory=dict)
    next_id: int = 0

    def handle(self, prefix: str) -> str:
        self.next_id += 1
        return f"{prefix}-{self.next_id}"


def _result_payload(result: "Result") -> dict:
    payload = {
        "columns": list(result.schema),
        "rows": [list(row) for row in result.rows],
        "engine": result.engine,
        "seconds": result.seconds,
    }
    if result.lifecycle is not None:
        payload["plan_cache"] = result.lifecycle.plan_cache
        payload["result_cache"] = result.lifecycle.result_cache
    return payload


def _report_payload(report: "ApplyReport") -> dict:
    return {
        "version": report.version,
        "inserted": report.inserted,
        "deleted": report.deleted,
        "rebuilds": report.rebuilds,
    }


class BadRequest(ValueError):
    """A malformed request body (maps to a 400 response)."""


def _field(payload: Any, name: str, kind=None, required: bool = True):
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    value = payload.get(name)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return None
    if kind is not None and not isinstance(value, kind):
        expected = kind.__name__ if isinstance(kind, type) else str(kind)
        raise BadRequest(f"field {name!r} must be a {expected}")
    return value


class Server:
    """The asyncio HTTP front-end; see the module docstring.

    The server owns (or adopts) a :class:`SessionPool` and a thread
    executor.  It can run in the foreground (:meth:`serve_forever`, the
    CLI path) or on a background thread (:meth:`start` / :meth:`stop`,
    the embedding and test path); either way ``port=0`` binds an
    ephemeral port published as :attr:`port` once listening.
    """

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 8128,
        engine: str = "fdb",
        pool_size: int = 8,
        workers: "int | None" = None,
        acquire_timeout: float = 5.0,
        pool: "SessionPool | None" = None,
        **engine_options,
    ) -> None:
        self.database = database
        self.host = host
        self.port = port
        self.pool = pool or SessionPool(
            database,
            engine=engine,
            size=pool_size,
            acquire_timeout=acquire_timeout,
            **engine_options,
        )
        self._workers = workers or max(4, pool_size)
        self._executor: "ThreadPoolExecutor | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop_event: "asyncio.Event | None" = None
        self._thread: "threading.Thread | None" = None
        self._startup_error: "BaseException | None" = None
        self.requests = 0
        self.rejected = 0
        self.connections = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _amain(self, ready: "threading.Event | None" = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-server"
        )
        server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._executor.shutdown(wait=False)
            # repro: allow[async-blocking] -- shutdown path: the
            # executor is already gone, and close() only parks sessions.
            self.pool.close()
            self._loop = None

    def serve_forever(self) -> None:
        """Run in the foreground until interrupted (the CLI path)."""
        try:
            asyncio.run(self._amain())
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass

    def start(self) -> "Server":
        """Serve on a daemon thread; returns once listening.

        :attr:`port` then holds the actual bound port (useful with
        ``port=0``).  Call :meth:`stop` (or use the server as a context
        manager) to shut down.
        """
        if self._thread is not None:
            raise ServerStoppedError("this server was already started")
        ready = threading.Event()

        def runner() -> None:
            try:
                asyncio.run(self._amain(ready))
            except BaseException as error:  # pragma: no cover - surfaced below
                self._startup_error = error
                ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop a background server; idempotent."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancels in-flight connection tasks; ending
            # quietly here keeps shutdown free of spurious tracebacks.
            pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        state = _Connection()
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                started = clock.now()
                _HTTP_IN_FLIGHT.inc()
                try:
                    status, payload = await self._dispatch(state, request)
                finally:
                    _HTTP_IN_FLIGHT.dec()
                elapsed = clock.now() - started
                endpoint = _endpoint(request.path)
                _HTTP_SECONDS.labels(endpoint).observe(elapsed)
                _HTTP_RESPONSES.labels(endpoint, f"{status // 100}xx").inc()
                _ACCESS.info(
                    "%s %s -> %d in %.1f ms",
                    request.method, request.path, status, elapsed * 1000.0,
                )
                self.requests += 1
                await self._respond(writer, status, payload, request.keep_alive)
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            if state.session is not None:
                # Returning a pooled session is lock + park — cheap
                # enough to run inline, and safe at loop teardown where
                # an executor hop would be cancelled mid-await.
                session = state.session
                state.session = None
                try:
                    # repro: allow[async-blocking] -- see above: cheap,
                    # and safe at loop teardown unlike an executor hop.
                    session.close()
                except Exception:  # pragma: no cover - defensive
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - racing client close
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "_Request | None":
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise BadRequest("malformed request line") from None
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise BadRequest(f"request body of {length} bytes exceeds {MAX_BODY}")
        body = await reader.readexactly(length) if length else b""
        payload = None
        if body:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                raise BadRequest(f"invalid JSON body: {error}") from None
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return _Request(method.upper(), path, headers, payload, keep_alive)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   413: "Payload Too Large", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        if isinstance(payload, _Raw):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload, default=str).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, state: _Connection, request: _Request
    ) -> tuple[int, Any]:
        key = (request.method, request.path)
        if key == ("GET", "/health"):
            return 200, {
                "status": "ok",
                "version": self.database.version,
                "pool": {"leased": self.pool.leased, "idle": self.pool.idle},
            }
        if key == ("GET", "/stats"):
            stats = self.pool.stats()
            stats.update(
                requests=self.requests,
                rejected=self.rejected,
                connections=self.connections,
            )
            return 200, stats
        if key == ("GET", "/metrics"):
            text = render_prometheus(metrics())
            return 200, _Raw(text.encode("utf-8"), CONTENT_TYPE)
        if key == ("GET", "/debug/slow"):
            return 200, {"slow_queries": slow_log().slowest()}
        handler = self._route(request)
        if handler is None:
            return 404, {"error": f"no route for {request.method} {request.path}"}
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        try:
            return await loop.run_in_executor(
                self._executor, self._run_handler, handler, state, request
            )
        except RuntimeError:  # pragma: no cover - executor torn down
            return 503, {"error": "server is shutting down"}

    def _route(
        self, request: _Request
    ) -> "Callable[[_Connection, _Request], tuple[int, Any]] | None":
        if request.method == "POST":
            return {
                "/query": self._do_query,
                "/prepare": self._do_prepare,
                "/execute": self._do_execute,
                "/insert": self._do_insert,
                "/delete": self._do_delete,
                "/refresh": self._do_refresh,
                "/watch": self._do_watch,
                "/unwatch": self._do_unwatch,
            }.get(request.path)
        if request.method == "GET" and request.path.startswith("/watch/"):
            return self._do_poll
        return None

    def _run_handler(self, handler, state: _Connection, request: _Request):
        """Executor-side wrapper: session admission + error mapping."""
        try:
            if state.session is None:
                state.session = self.pool.acquire()
            return handler(state, request)
        except (PoolTimeoutError, PoolClosedError) as error:
            self.rejected += 1
            return 503, {"error": str(error)}
        except BadRequest as error:
            return 400, {"error": str(error)}
        except (QueryError, UnknownRelationError, KeyError, ValueError) as error:
            return 400, {"error": f"{type(error).__name__}: {error}"}
        except Exception as error:  # pragma: no cover - defensive
            return 500, {"error": f"{type(error).__name__}: {error}"}

    # ------------------------------------------------------------------
    # Handlers (run inside the executor, session leased)
    # ------------------------------------------------------------------
    def _do_query(self, state: _Connection, request: _Request):
        sql = _field(request.payload, "sql", str)
        params = _field(request.payload, "params", (dict, list), required=False)
        engine = _field(request.payload, "engine", str, required=False)
        outcome = state.session.sql(sql, engine=engine, params=params)
        from repro.api.result import Result

        if isinstance(outcome, Result):
            payload = _result_payload(outcome)
            payload["version"] = state.session.version
            return 200, payload
        return 200, _report_payload(outcome)

    def _do_prepare(self, state: _Connection, request: _Request):
        sql = _field(request.payload, "sql", str)
        engine = _field(request.payload, "engine", str, required=False)
        prepared = state.session.prepare(sql, engine=engine)
        handle = state.handle("prep")
        state.prepared[handle] = prepared
        return 200, {"id": handle, "parameters": list(prepared.parameters)}

    def _do_execute(self, state: _Connection, request: _Request):
        handle = _field(request.payload, "id", str)
        params = _field(request.payload, "params", (dict, list), required=False)
        prepared = state.prepared.get(handle)
        if prepared is None:
            raise BadRequest(f"unknown prepared-query id {handle!r}")
        if isinstance(params, list):
            result = prepared.run(*params)
        else:
            result = prepared.run(**(params or {}))
        payload = _result_payload(result)
        payload["version"] = state.session.version
        return 200, payload

    def _do_insert(self, state: _Connection, request: _Request):
        relation = _field(request.payload, "relation", str)
        rows = _field(request.payload, "rows", list)
        columns = _field(request.payload, "columns", list, required=False)
        report = state.session.insert(
            relation, [tuple(row) for row in rows], columns
        )
        return 200, _report_payload(report)

    def _do_delete(self, state: _Connection, request: _Request):
        relation = _field(request.payload, "relation", str)
        rows = _field(request.payload, "rows", list, required=False)
        everything = _field(request.payload, "all", bool, required=False)
        if rows is None and not everything:
            raise BadRequest("delete needs \"rows\" or \"all\": true")
        report = state.session.delete(
            relation, None if rows is None else [tuple(row) for row in rows]
        )
        return 200, _report_payload(report)

    def _do_refresh(self, state: _Connection, request: _Request):
        return 200, {"version": state.session.refresh()}

    def _do_watch(self, state: _Connection, request: _Request):
        sql = _field(request.payload, "sql", str)
        engine = _field(request.payload, "engine", str, required=False)
        live = state.session.watch(sql, engine=engine)
        handle = state.handle("watch")
        state.watches[handle] = live
        payload = _result_payload(live.result)
        payload.update(id=handle, version=state.session.version)
        return 200, payload

    def _do_poll(self, state: _Connection, request: _Request):
        handle = request.path[len("/watch/"):]
        live = state.watches.get(handle)
        if live is None:
            raise BadRequest(f"unknown watch id {handle!r}")
        # Polling means "show me the freshest state": advance this
        # connection's pin, then let the live view sync to it.
        state.session.refresh()
        payload = _result_payload(live.result)
        payload.update(id=handle, version=state.session.version)
        return 200, payload

    def _do_unwatch(self, state: _Connection, request: _Request):
        handle = _field(request.payload, "id", str)
        if state.watches.pop(handle, None) is None:
            raise BadRequest(f"unknown watch id {handle!r}")
        return 200, {"id": handle, "removed": True}


def serve(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 8128,
    engine: str = "fdb",
    pool_size: int = 8,
    **options,
) -> None:
    """Serve ``database`` over HTTP in the foreground (blocks).

    The one-call entry point::

        from repro.server import serve
        serve(database, port=8128, engine="fdb", pool_size=8)

    For an embedded or test server use :class:`Server` directly
    (``Server(db, port=0).start()`` binds an ephemeral port).
    """
    server = Server(
        database, host=host, port=port, engine=engine, pool_size=pool_size,
        **options,
    )
    print(f"repro server listening on {server.url} (pool={pool_size}, "
          f"engine={engine!r}) — Ctrl-C to stop")
    server.serve_forever()
