"""A thin blocking HTTP client for the repro server.

Built on stdlib :mod:`http.client` with one keep-alive connection per
:class:`Client`, because the server's session model is per-connection:
the prepared-query and watch handles a client holds are only valid on
the TCP connection that created them, and the snapshot pin a client
reads through belongs to that connection's pooled session.  Closing
the client (or letting the connection drop) returns the session to the
pool.

>>> with Client("127.0.0.1", 8128) as client:
...     client.insert("Orders", [(7, "od5", 30.0)])
...     result = client.query("SELECT SUM(Price) FROM Orders GROUP BY Cust")
...     result["rows"]

Every method returns the decoded JSON payload; non-2xx responses raise
:class:`ServerError` carrying the HTTP status and the server's
``error`` message.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterable, Sequence


class ServerError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Client:
    """One keep-alive connection to a :class:`repro.server.Server`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8128, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Any = None) -> dict:
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._connection.request(method, path, body=body, headers=headers)
        response = self._connection.getresponse()
        data = response.read()
        decoded = json.loads(data) if data else {}
        if response.status >= 300:
            message = (
                decoded.get("error", data.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ServerError(response.status, message)
        return decoded

    def close(self) -> None:
        """Drop the connection (the server returns its session)."""
        self._connection.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def query(
        self,
        sql: str,
        params: "dict | list | None" = None,
        engine: "str | None" = None,
    ) -> dict:
        """Run one SQL statement; rows for SELECT, a report for writes."""
        payload: dict = {"sql": sql}
        if params is not None:
            payload["params"] = params
        if engine is not None:
            payload["engine"] = engine
        return self._request("POST", "/query", payload)

    def prepare(self, sql: str, engine: "str | None" = None) -> str:
        """Prepare a parameterised query; returns its handle."""
        payload: dict = {"sql": sql}
        if engine is not None:
            payload["engine"] = engine
        return self._request("POST", "/prepare", payload)["id"]

    def execute(
        self, handle: str, params: "dict | list | None" = None
    ) -> dict:
        """Run a prepared query by handle with fresh bindings."""
        payload: dict = {"id": handle}
        if params is not None:
            payload["params"] = params
        return self._request("POST", "/execute", payload)

    def insert(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]],
        columns: "Sequence[str] | None" = None,
    ) -> dict:
        payload: dict = {"relation": relation, "rows": [list(r) for r in rows]}
        if columns is not None:
            payload["columns"] = list(columns)
        return self._request("POST", "/insert", payload)

    def delete(
        self,
        relation: str,
        rows: "Iterable[Sequence[Any]] | None" = None,
        all: bool = False,
    ) -> dict:
        payload: dict = {"relation": relation}
        if rows is not None:
            payload["rows"] = [list(r) for r in rows]
        if all:
            payload["all"] = True
        return self._request("POST", "/delete", payload)

    def refresh(self) -> int:
        """Advance this connection's snapshot pin; returns the version."""
        return self._request("POST", "/refresh")["version"]

    def watch(self, sql: str, engine: "str | None" = None) -> dict:
        """Register a live view; returns its handle + initial result."""
        payload: dict = {"sql": sql}
        if engine is not None:
            payload["engine"] = engine
        return self._request("POST", "/watch", payload)

    def poll(self, handle: str) -> dict:
        """The watch's current result at the freshest version."""
        return self._request("GET", f"/watch/{handle}")

    def unwatch(self, handle: str) -> dict:
        return self._request("POST", "/unwatch", {"id": handle})

    def metrics(self) -> str:
        """The server's Prometheus text exposition (``GET /metrics``)."""
        self._connection.request(
            "GET", "/metrics", headers={"Connection": "keep-alive"}
        )
        response = self._connection.getresponse()
        data = response.read()
        if response.status >= 300:
            raise ServerError(response.status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def slow_queries(self) -> list[dict]:
        """The slowest recent queries with span trees (``/debug/slow``)."""
        return self._request("GET", "/debug/slow")["slow_queries"]

    def __repr__(self) -> str:
        return f"Client({self.host!r}, {self.port})"
