"""Snapshot-isolated session multiplexing over one shared database.

A :class:`SessionPool` owns one :class:`repro.database.Database` and
hands out :class:`repro.api.session.Session` objects pinned to a
snapshot of it.  Each lease observes one committed version for its
whole lifetime (refreshing on demand), writers commit through the
database's single writer lock, and the pool bounds admission: at most
``size`` sessions are leased at once, further :meth:`acquire` calls
queue (bounded by their timeout).

Sessions return to the pool warm — their prepared engine backends and
the pool-shared plan/result caches survive across leases, so a reused
session forwards the change-log gap to its backends instead of
reloading.  Idle sessions are reaped after ``idle_timeout`` seconds
(their backends close for real), keeping a long-lived pool from
pinning resources for traffic that has gone away.

The pool is thread-safe; each *leased session* must be used by one
thread at a time (the HTTP front-end guarantees this by processing a
connection's requests sequentially).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.api.session import Session
from repro.obs import clock
from repro.obs.metrics import metrics
from repro.plan.cache import SessionCaches

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.engines import Engine
    from repro.database import Database

# Pool instruments aggregate across every pool in the process.  All
# children are pre-bound so updates inside the condition-guarded
# sections stay allocation-free (linter rule obs-allocation).
_POOL_EVENTS = metrics().counter(
    "repro_pool_events_total",
    "Session pool lifecycle events.",
    ("event",),
)
_POOL_LEASE = _POOL_EVENTS.labels("lease")
_POOL_RELEASE = _POOL_EVENTS.labels("release")
_POOL_TIMEOUT = _POOL_EVENTS.labels("timeout")
_POOL_REAP = _POOL_EVENTS.labels("reap")
_POOL_CREATE = _POOL_EVENTS.labels("create")
_POOL_DESTROY = _POOL_EVENTS.labels("destroy")
_POOL_WAIT = metrics().histogram(
    "repro_pool_admission_wait_seconds",
    "Time acquire() waited for admission to the pool.",
).labels()
_POOL_SESSIONS = metrics().gauge(
    "repro_pool_sessions",
    "Pool sessions by state (last pool to change wins).",
    ("state",),
)
_POOL_LEASED = _POOL_SESSIONS.labels("leased")
_POOL_IDLE = _POOL_SESSIONS.labels("idle")


class PoolClosedError(RuntimeError):
    """Raised when acquiring from a closed pool."""


class PoolTimeoutError(TimeoutError):
    """Raised when the admission queue wait exceeds the timeout."""


class SessionPool:
    """A bounded pool of snapshot-pinned sessions over one database.

    Parameters
    ----------
    database:
        the shared store every session reads (each at its own pin);
    engine:
        default engine name (or instance factory input) for pooled
        sessions — ``engine_options`` are forwarded per session;
    size:
        max concurrently leased sessions (the admission bound);
    acquire_timeout:
        default seconds an :meth:`acquire` waits for a free slot
        before raising :class:`PoolTimeoutError` (None = wait forever);
    idle_timeout:
        seconds a returned session may sit idle before it is destroyed
        (its backends closed); ``None`` disables reaping;
    plan_cache_size / result_cache_size:
        capacities of the *pool-shared* cache pair.  Sharing is safe:
        both caches validate per reader version (a result computed
        under version v is never served to a session pinned earlier).
    """

    def __init__(
        self,
        database: "Database",
        engine: "str | Engine" = "fdb",
        size: int = 8,
        acquire_timeout: "float | None" = 30.0,
        idle_timeout: "float | None" = 300.0,
        plan_cache_size: int = 128,
        result_cache_size: int = 256,
        **engine_options,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.database = database
        self._engine = engine
        self._engine_options = engine_options
        self.size = size
        self.acquire_timeout = acquire_timeout
        self.idle_timeout = idle_timeout
        self.caches = SessionCaches.sized(plan_cache_size, result_cache_size)
        self._condition = threading.Condition()
        self._idle: list[tuple[Session, float]] = []  # LIFO, (session, t)
        self._leased: set[int] = set()
        self._closed = False
        self.created = 0
        self.destroyed = 0
        self.reaped = 0
        self.timeouts = 0
        self.leases = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def acquire(self, timeout: "float | None" = ...) -> Session:
        """Lease a session pinned to the newest committed version.

        Blocks while ``size`` sessions are already out, up to
        ``timeout`` seconds (defaulting to the pool's
        ``acquire_timeout``); a timed-out wait raises
        :class:`PoolTimeoutError` — the bounded admission queue.  The
        returned session is freshly pinned; call ``session.close()``
        (or use it as a context manager) to return it.
        """
        if timeout is ...:
            timeout = self.acquire_timeout
        wait_start = clock.now()
        deadline = None if timeout is None else wait_start + timeout
        with self._condition:
            while True:
                if self._closed:
                    raise PoolClosedError("the session pool is closed")
                self._reap_locked()
                if len(self._leased) < self.size:
                    break
                remaining = (
                    None if deadline is None else deadline - clock.now()
                )
                if remaining is not None and remaining <= 0:
                    self.timeouts += 1
                    _POOL_TIMEOUT.inc()
                    raise PoolTimeoutError(
                        f"no session became available within {timeout:.1f}s "
                        f"({self.size} leased; the admission queue is full)"
                    )
                self._condition.wait(remaining)
            _POOL_WAIT.observe(clock.now() - wait_start)
            if self._idle:
                session, _ = self._idle.pop()
            else:
                session = self._create()
            self._leased.add(id(session))
            self.leases += 1
            _POOL_LEASE.inc()
            _POOL_LEASED.set(len(self._leased))
            _POOL_IDLE.set(len(self._idle))
        session._in_pool = False
        session.refresh()  # pin to the newest committed version
        return session

    def release(self, session: Session) -> None:
        """Return a leased session (``session.close()`` calls this).

        The session keeps its prepared backends and drops only its pin,
        so the change log can truncate past idle readers; a closed pool
        (or an over-full idle list) destroys it instead.
        """
        session._in_pool = True
        session._unpin()
        with self._condition:
            self._leased.discard(id(session))
            if self._closed:
                self._destroy(session)
            else:
                self._idle.append((session, clock.now()))
                self._reap_locked()
            self.releases += 1
            _POOL_RELEASE.inc()
            _POOL_LEASED.set(len(self._leased))
            _POOL_IDLE.set(len(self._idle))
            self._condition.notify()

    def _create(self) -> Session:
        session = Session(
            self.database.snapshot(),
            engine=self._engine,
            caches=self.caches,
            **self._engine_options,
        )
        session._pool = self
        self.created += 1
        _POOL_CREATE.inc()
        return session

    def _destroy(self, session: Session) -> None:
        session._pool = None  # close() must not bounce back to the pool
        session._in_pool = False
        session._destroy()
        self.destroyed += 1
        _POOL_DESTROY.inc()

    # ------------------------------------------------------------------
    # Reaping and shutdown
    # ------------------------------------------------------------------
    def _reap_locked(self) -> None:
        if self.idle_timeout is None or not self._idle:
            return
        cutoff = clock.now() - self.idle_timeout
        kept: list[tuple[Session, float]] = []
        for session, returned_at in self._idle:
            if returned_at < cutoff:
                self._destroy(session)
                self.reaped += 1
                _POOL_REAP.inc()
            else:
                kept.append((session, returned_at))
        self._idle = kept
        _POOL_IDLE.set(len(self._idle))

    def reap(self) -> int:
        """Destroy idle-expired sessions now; returns how many died."""
        with self._condition:
            before = self.reaped
            self._reap_locked()
            return self.reaped - before

    def close(self) -> None:
        """Destroy idle sessions and refuse further leases; idempotent.

        Sessions still leased are destroyed as they come back.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            for session, _ in self._idle:
                self._destroy(session)
            self._idle.clear()
            _POOL_IDLE.set(0)
            self._condition.notify_all()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def leased(self) -> int:
        """Sessions currently out."""
        return len(self._leased)

    @property
    def idle(self) -> int:
        """Sessions parked and ready for the next lease."""
        return len(self._idle)

    def stats(self) -> dict:
        """A JSON-able counters dict (served by the /stats endpoint)."""
        with self._condition:
            return {
                "size": self.size,
                "leased": len(self._leased),
                "idle": len(self._idle),
                "created": self.created,
                "destroyed": self.destroyed,
                "reaped": self.reaped,
                "leases": self.leases,
                "releases": self.releases,
                "timeouts": self.timeouts,
                "database_version": self.database.version,
                "pinned_versions": self.database.pinned_versions(),
                "caches": self.caches.describe(),
            }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SessionPool(size={self.size}, leased={self.leased}, "
            f"idle={self.idle}, {state})"
        )
