"""Concurrent server mode: snapshot-isolated sessions over one database.

Three layers, bottom up:

- the concurrency core lives in :mod:`repro.database` — a single
  writer lock, atomically published catalogue states, and
  ``Database.snapshot()`` pinning readers to a committed version;
- :class:`SessionPool` multiplexes snapshot-pinned
  :class:`repro.api.session.Session` objects with bounded admission,
  warm reuse, and idle reaping;
- :class:`Server` / :func:`serve` expose the pool over HTTP/JSON on
  stdlib asyncio, one pooled session per client connection, with
  :class:`Client` as the matching blocking client.

>>> from repro.server import serve
>>> serve(database, port=8128)          # doctest: +SKIP

or, embedded / in tests::

    with Server(database, port=0) as server:
        with Client(port=server.port) as client:
            client.query("SELECT * FROM Orders")
"""

from repro.server.client import Client, ServerError
from repro.server.http import Server, serve
from repro.server.pool import PoolClosedError, PoolTimeoutError, SessionPool

__all__ = [
    "Client",
    "PoolClosedError",
    "PoolTimeoutError",
    "Server",
    "ServerError",
    "SessionPool",
    "serve",
]
