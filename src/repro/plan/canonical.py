"""Canonical forms and structural hashes for queries.

The prepared-query caches key on *structure*, not object identity: two
independently built queries that ask the same thing must share one
cache entry, and a parameterised query must hash identically for every
binding of its parameters.  :func:`canonical_text` renders a
:class:`repro.query.Query` into a deterministic one-line form with

- every field in a fixed order (the query ``name`` label excluded —
  labelling a query must not defeat the cache);
- expression trees rendered through their stable ``repr`` (``col('a')``,
  ``lit(2)``, ``param('x')``, ``(col('a') * col('b'))``);
- constants tagged with their Python type, so ``1`` and ``1.0`` and
  ``"1"`` stay distinct;
- parameters rendered by *name only* — the whole point of a
  :class:`repro.expr.Param` leaf is that bindings do not perturb the
  canonical form.

:func:`canonical_key` is the SHA-256 digest of that text, the actual
cache key.  :func:`bound_key` appends the canonical rendering of a
parameter binding, producing the key of the factorisation/result cache
(results *do* depend on the bound values).
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.expr import Expr, Param
from repro.query import Query


def _value(value: Any) -> str:
    """Stable rendering of a comparison/having constant."""
    if isinstance(value, Param):
        return f"param:{value.name}"
    if isinstance(value, Expr):
        return f"expr:{value!r}"
    return f"{type(value).__name__}:{value!r}"


def _target(target: Any) -> str:
    """Stable rendering of an attribute-or-expression slot."""
    if target is None:
        return "*"
    if isinstance(target, Expr):
        return f"expr:{target!r}"
    return f"attr:{target}"


def canonical_text(query: Query) -> str:
    """The deterministic structural rendering of ``query``."""
    parts = [
        "R=" + ",".join(query.relations),
        "eq=" + ";".join(f"{e.left}={e.right}" for e in query.equalities),
        "cmp="
        + ";".join(
            f"{_target(c.attribute)}{c.op}{_value(c.value)}"
            for c in query.comparisons
        ),
        "proj="
        + (
            "<none>"
            if query.projection is None
            else ",".join(query.projection)
        ),
        "comp="
        + ";".join(
            f"{column.alias}<-{column.expression!r}"
            for column in query.computed
        ),
        "group=" + ",".join(query.group_by),
        "agg="
        + ";".join(
            f"{spec.alias}<-{spec.function}({_target(spec.attribute)})"
            for spec in query.aggregates
        ),
        "having="
        + ";".join(
            f"{h.target}{h.op}{_value(h.value)}" for h in query.having
        ),
        "order="
        + ";".join(
            f"{key.attribute}:{'d' if key.descending else 'a'}"
            for key in query.order_by
        ),
        f"limit={query.limit}",
        f"distinct={query.distinct}",
    ]
    return "|".join(parts)


def canonical_key(query: Query) -> str:
    """SHA-256 digest of the canonical text — the plan-cache key."""
    return hashlib.sha256(canonical_text(query).encode()).hexdigest()


def bound_key(query: Query, values: Mapping[str, Any]) -> str:
    """Result-cache key: the canonical text plus the bound values.

    ``query`` is the *unbound* query; the binding is appended in sorted
    parameter-name order, so supplying the same values positionally or
    by name yields the same key.
    """
    if not values:
        return canonical_key(query)
    text = canonical_text(query) + "|bind=" + ";".join(
        f"{name}={_value(values[name])}" for name in sorted(values)
    )
    return hashlib.sha256(text.encode()).hexdigest()
