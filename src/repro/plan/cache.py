"""Version-aware plan and factorisation/result caches.

Two complementary caches serve the prepared-query lifecycle:

- :class:`PlanCache` — compiled engine artifacts (the FDB f-plan, the
  sqlite SQL text, ...) keyed on the *canonical* query hash, which is
  parameter-insensitive: one plan serves every binding.  Entries carry
  a :func:`catalogue_fingerprint` — the schemas and f-tree shapes of
  the referenced views — and are bypassed when the catalogue no longer
  matches (a new registration, or an IVM rebuild that switched a view
  to its path-fallback f-tree).  Data changes never evict plans.

- :class:`ResultCache` — fully evaluated results (flat relation or
  result factorisation) keyed on the *bound* hash, stamped with the
  database version they were computed at.  Lookups at a newer version
  consult the IVM change log (:meth:`repro.database.Database.
  changes_since`): if none of the newer records touch a view the query
  reads, the entry is still valid and its stamp is advanced; otherwise
  it is evicted.  That is the fine-grained invalidation the issue asks
  for — an insert into ``Orders`` evicts cached results over ``Orders``
  and every view maintained from it, and nothing else.

Both caches are **snapshot-aware and thread-safe**, so one cache pair
can be shared by every session of a :class:`repro.server.SessionPool`.
Lookups validate against the *reader's* version — the pinned snapshot
a session queries through, not "latest" — and an entry computed under
version ``v`` is never served to a reader pinned at ``u < v`` (it
stays cached for newer readers; the lookup simply misses).  Plans are
snapshot-safe by construction: their catalogue fingerprint is computed
from the reader's pinned catalogue.

Both caches are LRU-bounded; capacity 0 disables a cache entirely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable

from repro.obs.metrics import metrics

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.ftree import FNode, FTree
    from repro.database import Database, LogRecord

# Cache events aggregate across every cache instance in the process.
# Children are pre-bound here so the increments inside the lock-guarded
# lookup/store paths stay allocation-free (linter rule obs-allocation).
_CACHE_EVENTS = metrics().counter(
    "repro_cache_events_total",
    "Plan/result cache events by outcome.",
    ("cache", "event"),
)
_PLAN_HIT = _CACHE_EVENTS.labels("plan", "hit")
_PLAN_MISS = _CACHE_EVENTS.labels("plan", "miss")
_PLAN_INVALIDATION = _CACHE_EVENTS.labels("plan", "invalidation")
_PLAN_EVICTION = _CACHE_EVENTS.labels("plan", "eviction")
_RESULT_HIT = _CACHE_EVENTS.labels("result", "hit")
_RESULT_MISS = _CACHE_EVENTS.labels("result", "miss")
_RESULT_INVALIDATION = _CACHE_EVENTS.labels("result", "invalidation")
_RESULT_EVICTION = _CACHE_EVENTS.labels("result", "eviction")

#: Sentinel distinguishing "no cached artifact" from a cached ``None``
#: (engines without a compile stage legitimately plan to ``None``).
MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def describe(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.invalidations} invalidation(s), "
            f"{self.evictions} LRU eviction(s)"
        )


def ftree_signature(ftree: "FTree") -> tuple:
    """A hashable structural signature of an f-tree.

    Captures everything plan validity depends on: attribute classes,
    aggregate labels, dependency keys, and child structure.
    """

    def node_signature(node: "FNode") -> tuple:
        if node.aggregate is not None:
            label: tuple = (
                "γ",
                node.aggregate.name,
                tuple(str(f) for f in node.aggregate.functions),
            )
        else:
            label = tuple(node.attributes)
        return (
            label,
            tuple(sorted(node.keys)),
            tuple(node_signature(child) for child in node.children),
        )

    return tuple(node_signature(root) for root in ftree.roots)


def catalogue_fingerprint(
    database: "Database", relations: Iterable[str]
) -> tuple:
    """What a compiled plan for a query over ``relations`` depends on.

    Per referenced view: its name, schema, and — when a factorised form
    is registered — the f-tree signature (FDB plans against that tree;
    an IVM rebuild may replace it with the path fallback).
    """
    parts = []
    for name in sorted(set(relations)):
        schema = tuple(database.schema(name))
        registered = database.get_factorised(name)
        shape = (
            ftree_signature(registered.ftree) if registered is not None else None
        )
        parts.append((name, schema, shape))
    return tuple(parts)


class PlanCache:
    """LRU cache of compiled plan artifacts, fingerprint-validated."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple[Any, tuple]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, fingerprint: tuple) -> Any:
        """The cached artifact, or :data:`MISS`.

        A fingerprint mismatch invalidates the entry (the caller
        recompiles and stores the fresh artifact).
        """
        if not self.capacity:
            return MISS
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _PLAN_MISS.inc()
                return MISS
            artifact, stored_fingerprint = entry
            if stored_fingerprint != fingerprint:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                _PLAN_INVALIDATION.inc()
                _PLAN_MISS.inc()
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _PLAN_HIT.inc()
            return artifact

    def store(self, key: Hashable, artifact: Any, fingerprint: tuple) -> None:
        if not self.capacity:
            return
        with self._lock:
            self._entries[key] = (artifact, fingerprint)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                _PLAN_EVICTION.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class _ResultEntry:
    """One cached result with its validity interval.

    ``floor`` is the version the payload was computed at; ``version``
    is the newest version it has been *validated* against.  Invariant:
    no log record in ``(floor, version]`` touches ``relations``, so the
    payload is correct for any reader pinned anywhere in
    ``[floor, version]`` — and beyond ``version`` after a replay.
    """

    payload: Any
    version: int
    relations: frozenset
    floor: int = -1

    def __post_init__(self) -> None:
        if self.floor < 0:
            self.floor = self.version


def _touches(record: "LogRecord", relations: frozenset) -> bool:
    """Whether one log record affects any view in ``relations``."""
    if record.relation in relations:
        return True
    return any(name in relations for name in record.view_deltas)


class ResultCache:
    """LRU cache of evaluated results, invalidated off the change log."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, _ResultEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, database: "Database") -> Any:
        """The cached payload if still valid at the reader's version.

        ``database`` may be the live database or a pinned
        :class:`repro.database.Snapshot` — validation runs against
        *its* version.  An entry computed at an older version survives
        exactly when every log record up to the reader's version leaves
        the entry's relations untouched; its stamp then advances so
        later lookups skip the replay.  An entry computed at a *newer*
        version than the reader's pin is never served (that would be a
        stale-read-from-the-future for the pinned reader); it stays
        cached for readers at or past its version.
        """
        if not self.capacity:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _RESULT_MISS.inc()
                return None
            if entry.floor > database.version:
                # Computed under a version this pinned reader has not
                # reached; serving it would leak future writes into the
                # snapshot.  Miss without evicting.
                self.stats.misses += 1
                _RESULT_MISS.inc()
                return None
            if entry.version < database.version:
                records = database.changes_since(entry.version)
                if records is None or any(
                    _touches(record, entry.relations) for record in records
                ):
                    del self._entries[key]
                    self.stats.invalidations += 1
                    self.stats.misses += 1
                    _RESULT_INVALIDATION.inc()
                    _RESULT_MISS.inc()
                    return None
                entry.version = database.version
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _RESULT_HIT.inc()
            return entry.payload

    def store(
        self,
        key: Hashable,
        payload: Any,
        database: "Database",
        relations: Iterable[str],
    ) -> None:
        if not self.capacity:
            return
        with self._lock:
            self._entries[key] = _ResultEntry(
                payload, database.version, frozenset(relations)
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                _RESULT_EVICTION.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class SessionCaches:
    """The per-session cache pair, with one switch and two size knobs."""

    plans: PlanCache = field(default_factory=PlanCache)
    results: ResultCache = field(default_factory=ResultCache)

    @classmethod
    def sized(cls, plan_capacity: int, result_capacity: int) -> "SessionCaches":
        return cls(PlanCache(plan_capacity), ResultCache(result_capacity))

    def clear(self) -> None:
        self.plans.clear()
        self.results.clear()

    def describe(self) -> str:
        return (
            f"plan cache: {self.plans.stats.describe()}; "
            f"result cache: {self.results.stats.describe()}"
        )
