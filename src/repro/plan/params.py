"""Parameter discovery and binding for prepared queries.

A :class:`repro.expr.Param` may appear

- as the *value* of a constant selection (``where("price", ">",
  param("floor"))``, SQL ``WHERE price > :floor``),
- inside the expression on the *left* of a selection
  (``price * :rate > 100`` — evaluated row-wise on the owning input),
- as a HAVING comparison value, and
- inside a computed output column (``SELECT price * :rate AS gross``).

Aggregate arguments are deliberately excluded: the optimiser bakes the
aggregate's γ components into the compiled f-plan, so a value that only
arrives at run time could invalidate the plan itself.  Move the
parameter out of the aggregate (filter first, or scale the aggregated
result) — :func:`collect_params` rejects the placement with exactly
that advice.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.expr import BinOp, Const, Expr, Neg, Param
from repro.query import Comparison, ComputedColumn, Having, Query, QueryError


class ParameterError(QueryError):
    """Raised for missing, unknown, or ill-placed query parameters."""


def _expr_params(expr: "Expr | str | None") -> tuple[str, ...]:
    if isinstance(expr, Expr):
        return expr.parameters()
    return ()


def collect_params(query: Query) -> tuple[str, ...]:
    """Parameter names of ``query``, in clause order (SELECT list,
    WHERE, HAVING), deduplicated — the order positional arguments of
    :meth:`repro.plan.prepared.PreparedQuery.run` bind in.

    Raises :class:`ParameterError` for parameters in aggregate
    arguments (see the module docstring).
    """
    names: list[str] = []

    def want(found: tuple[str, ...]) -> None:
        for name in found:
            if name not in names:
                names.append(name)

    for spec in query.aggregates:
        inside = _expr_params(spec.attribute)
        if inside:
            raise ParameterError(
                f"parameter :{inside[0]} appears inside the aggregate "
                f"argument of {spec.alias!r}; aggregate arguments are "
                "compiled into the plan, so they cannot be parameterised "
                "— filter the input or scale the aggregated result instead"
            )
    def check_value(value, context: str) -> None:
        # The value slot of a condition holds a literal or a bare
        # Param; an expression wrapping a Param there would silently
        # escape binding, so reject it with the canonical rewrite.
        if isinstance(value, Expr) and not isinstance(value, Param):
            inside = _expr_params(value)
            if inside:
                raise ParameterError(
                    f"parameter :{inside[0]} is nested inside an "
                    f"arithmetic {context} value; conditions compare "
                    "against a literal or a bare parameter — move the "
                    "arithmetic to the left side instead "
                    "(e.g. price - 1 > :floor)"
                )

    for column in query.computed:
        want(_expr_params(column.expression))
    for condition in query.comparisons:
        want(_expr_params(condition.attribute))
        check_value(condition.value, "comparison")
        if isinstance(condition.value, Param):
            want((condition.value.name,))
    for condition in query.having:
        check_value(condition.value, "HAVING")
        if isinstance(condition.value, Param):
            want((condition.value.name,))
    return tuple(names)


def _substitute(expr: Expr, values: Mapping[str, Any]) -> Expr:
    """Replace every bound ``Param`` leaf with a ``Const``."""
    if isinstance(expr, Param):
        value = values[expr.name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ParameterError(
                f"parameter :{expr.name} is used in arithmetic and must "
                f"bind to a number, got {value!r}"
            )
        return Const(value)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute(expr.left, values),
            _substitute(expr.right, values),
        )
    if isinstance(expr, Neg):
        return Neg(_substitute(expr.operand, values))
    return expr


def bind_params(query: Query, values: Mapping[str, Any]) -> Query:
    """A copy of ``query`` with every parameter replaced by its value.

    ``values`` must bind exactly the parameters the query declares:
    missing and unknown names both raise :class:`ParameterError` (the
    latter catches typos that would otherwise silently leave a
    placeholder unbound).
    """
    declared = collect_params(query)
    missing = [name for name in declared if name not in values]
    if missing:
        raise ParameterError(
            f"missing values for parameters: {', '.join(':' + n for n in missing)}"
        )
    unknown = [name for name in values if name not in declared]
    if unknown:
        raise ParameterError(
            f"unknown parameters: {', '.join(':' + n for n in unknown)}; "
            f"the query declares: "
            f"{', '.join(':' + n for n in declared) or '(none)'}"
        )
    if not declared:
        return query

    def bind_target(target):
        if isinstance(target, Expr) and target.parameters():
            return _substitute(target, values)
        return target

    comparisons = tuple(
        Comparison(
            bind_target(condition.attribute),
            condition.op,
            values[condition.value.name]
            if isinstance(condition.value, Param)
            else condition.value,
        )
        for condition in query.comparisons
    )
    having = tuple(
        Having(
            condition.target,
            condition.op,
            values[condition.value.name]
            if isinstance(condition.value, Param)
            else condition.value,
        )
        for condition in query.having
    )
    computed = tuple(
        ComputedColumn(bind_target(column.expression), column.alias)
        for column in query.computed
    )
    return replace(
        query, comparisons=comparisons, having=having, computed=computed
    )
