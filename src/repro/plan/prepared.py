"""The prepared-query handle: plan once, run many times.

``session.prepare(query)`` canonicalises and compiles a query through
the chosen backend's :meth:`repro.api.engines.Engine.plan` stage and
returns a :class:`PreparedQuery`; every :meth:`PreparedQuery.run`
binds parameter values, consults the session's result cache, and only
on a miss executes the retained plan — re-planning happens solely when
the catalogue fingerprint no longer matches (schema change, view
rebuild).

``Session.execute`` is a thin prepare-then-run wrapper over this
module, so plain repeated queries enjoy the same caches without any
API change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs import clock, spans
from repro.obs.metrics import metrics
from repro.plan.cache import MISS, catalogue_fingerprint
from repro.plan.canonical import bound_key, canonical_key
from repro.plan.params import ParameterError, bind_params, collect_params
from repro.query import Query

from repro.relational.relation import Relation

_QUERIES = metrics().counter(
    "repro_queries_total",
    "Queries executed through the prepared-query lifecycle.",
    ("engine",),
)
_QUERY_SECONDS = metrics().histogram(
    "repro_query_seconds",
    "End-to-end query latency through the prepared-query lifecycle.",
    ("engine",),
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.engines import Engine, EngineRun
    from repro.api.result import Result
    from repro.api.session import Session


def _isolate(payload: "EngineRun") -> "EngineRun":
    """A payload whose flat rows are isolated from caller mutation.

    Cached payloads are shared across executions; ``Result.rows``
    exposes a mutable list, so both the stored snapshot and every hit
    get their own row list (factorised payloads are safe as-is —
    enumeration materialises fresh rows per Result).
    """
    if payload.relation is None:
        return payload
    from repro.api.engines import EngineRun

    relation = payload.relation
    return EngineRun(
        relation=Relation(relation.schema, relation.rows, name=relation.name),
        plan=payload.plan,
        trace=payload.trace,
    )


@dataclass(frozen=True)
class LifecycleInfo:
    """Cache outcomes and prepare-vs-run timings of one execution.

    ``plan_cache`` is ``"hit"`` when the compiled plan was reused
    (optimisation skipped), ``"miss"`` when this execution compiled it,
    and ``"skipped"`` when a result-cache hit made planning moot.
    ``result_cache`` is ``"hit"``/``"miss"``, or ``"off"`` when result
    caching is disabled.
    """

    plan_cache: str
    result_cache: str
    prepare_seconds: float
    run_seconds: float
    parameters: tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"prepared: plan cache {self.plan_cache} · "
            f"result cache {self.result_cache}"
            + (
                f" · params ({', '.join(':' + n for n in self.parameters)})"
                if self.parameters
                else ""
            ),
            f"timings: prepare {self.prepare_seconds * 1000:.3f} ms · "
            f"run {self.run_seconds * 1000:.3f} ms",
        ]
        return "\n".join(lines)


class PreparedQuery:
    """A compiled query bound to a session and an engine choice.

    Created by :meth:`repro.api.session.Session.prepare`.  Instances
    retain the compiled plan artifact themselves (so the lifecycle
    works even with the session caches disabled) and additionally
    publish it in the session's shared plan cache, where later
    ``prepare``/``execute`` calls for a structurally identical query
    find it.
    """

    def __init__(
        self, session: "Session", query: Query, engine=None
    ) -> None:
        self._session = session
        self._query = query
        self._engine = engine
        self._parameters = collect_params(query)
        self._key = canonical_key(query)
        self._artifact: Any = MISS  # locally retained compiled plan
        self._fingerprint: tuple | None = None  # what _artifact was built for
        self._fingerprint_memo: "tuple[int, tuple] | None" = None
        self._plan_status = "miss"
        # Compilation is lazy: it happens on the first run's cache
        # miss, after the backend has been freshened — so a result
        # cache hit does zero planning work, and store-owning backends
        # (sharded, sqlite) prepare their data exactly once.
        self.prepare_seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query(self) -> Query:
        """The (unbound) canonical query this handle executes."""
        return self._query

    @property
    def parameters(self) -> tuple[str, ...]:
        """Declared parameter names, in binding order."""
        return self._parameters

    @property
    def cache_key(self) -> str:
        """The canonical structural hash (plan-cache key)."""
        return self._key

    def explain(self) -> str:
        """The backend's explain text for this query.

        Re-derived against the current catalogue (a diagnostic, not
        the cached artifact rendered); the fingerprint check keeps the
        retained plan aligned with what this describes, but for
        per-execution evidence — cache outcomes, timings — read
        ``result.explain()`` off a :meth:`run` result instead.
        """
        self._session._ensure_open()
        backend = self._session._resolve(self._engine)
        return backend.explain(self._query, self._session.database)

    def __repr__(self) -> str:
        params = ", ".join(":" + name for name in self._parameters)
        return (
            f"PreparedQuery({self._query}"
            + (f"; params [{params}]" if params else "")
            + f", key={self._key[:12]})"
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _engine_key(self):
        return self._session._engine_cache_key(self._engine)

    def _catalogue_fingerprint(self, backend: "Engine", database) -> tuple:
        """The current fingerprint, memoised per database version.

        Walking every registered view's f-tree is the costliest part of
        a cache hit; the fingerprint can only change when the version
        does, so one computation serves all lookups in between.  For
        stats-sensitive backends (cost-based optimiser) the fingerprint
        also folds in the stats-cache epochs of the query's relations,
        so drift past the re-optimisation threshold invalidates the
        cached plan.  Memoising per version stays sound: drift counters
        only move on mutations, which bump the version.
        """
        if (
            self._fingerprint_memo is not None
            and self._fingerprint_memo[0] == database.version
        ):
            return self._fingerprint_memo[1]
        fingerprint = catalogue_fingerprint(database, self._query.relations)
        if getattr(backend, "stats_sensitive", False):
            from repro.stats import stats_cache

            epochs = stats_cache().epochs_for(
                database, self._query.relations
            )
            fingerprint = fingerprint + (("stats-epochs",) + epochs,)
        self._fingerprint_memo = (database.version, fingerprint)
        return fingerprint

    def _ensure_artifact(self, backend: "Engine", database) -> Any:
        """The compiled plan, revalidated against the catalogue.

        Order of preference: the session's shared plan cache, this
        handle's own retained artifact, a fresh compile.  Every path
        leaves both stores holding the current artifact.
        """
        fingerprint = self._catalogue_fingerprint(backend, database)
        plans = self._session.caches.plans
        cache_key = (self._engine_key(), self._key)
        artifact = plans.lookup(cache_key, fingerprint)
        if artifact is not MISS:
            self._artifact, self._fingerprint = artifact, fingerprint
            self._plan_status = "hit"
            return artifact
        if self._artifact is not MISS and self._fingerprint == fingerprint:
            plans.store(cache_key, self._artifact, fingerprint)
            self._plan_status = "hit"
            return self._artifact
        start = clock.now()
        with spans.span("plan", engine=backend.name):
            artifact = backend.plan(self._query, database)
        self.prepare_seconds = clock.now() - start
        if getattr(self._session, "verify", False):
            # Sessions opened with verify=True run the repro.analysis
            # semantic verifier over every *fresh* compile — cache hits
            # were checked when first stored.  Error findings abort the
            # prepare before the bad plan reaches either store.
            self._verify_artifact(artifact, database)
        self._artifact, self._fingerprint = artifact, fingerprint
        plans.store(cache_key, artifact, fingerprint)
        self._plan_status = "miss"
        return artifact

    def _verify_artifact(self, artifact: Any, database) -> None:
        """Raise :class:`PlanVerificationError` on error findings."""
        from repro.analysis.verifier import (
            PlanVerificationError,
            verify_artifact,
        )

        findings = verify_artifact(
            self._query, artifact, database, subject=f"prepare:{self._query}"
        )
        errors = [f for f in findings if f.severity == "error"]
        if errors:
            raise PlanVerificationError(errors)

    def _current_artifact(self, backend: "Engine", database) -> Any:
        """The retained plan if still valid, else a revalidated one.

        Unlike :meth:`_ensure_artifact` this does not touch the shared
        cache on the fast path, so the reported plan status keeps
        meaning "was optimisation skipped for this execution".
        """
        fingerprint = self._catalogue_fingerprint(backend, database)
        if self._artifact is not MISS and self._fingerprint == fingerprint:
            return self._artifact
        return self._ensure_artifact(backend, database)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _resolve_values(self, args: tuple, named: dict) -> dict:
        declared = self._parameters
        if len(args) > len(declared):
            raise ParameterError(
                f"{len(args)} positional values for {len(declared)} "
                f"parameter(s) "
                f"({', '.join(':' + n for n in declared) or 'none declared'})"
            )
        values = dict(zip(declared, args))
        for name, value in named.items():
            if name in values:
                raise ParameterError(
                    f"parameter :{name} bound both positionally and by name"
                )
            values[name] = value
        return values

    def run(self, *args: Any, **named: Any) -> "Result":
        """Execute with the given parameter binding; returns a Result.

        Positional values bind parameters in :attr:`parameters` order;
        keyword values bind by name.  The result cache is consulted
        first (keyed on the bound query and validated against the
        database version via the change log); on a miss the retained
        plan executes against the current data.
        """
        session = self._session
        session._ensure_open()
        values = self._resolve_values(args, named)
        bound = (
            bind_params(self._query, values)
            if self._parameters or values
            else self._query
        )
        with spans.span("session.query") as root:
            result = self._run_bound(session, bound, values, root)
        if root is not None:
            result.span = root
        return result

    def _run_bound(
        self, session: "Session", bound: Query, values: dict, root
    ) -> "Result":
        """The lifecycle body, inside the ``session.query`` root span."""
        database = session.database
        results = session.caches.results
        result_key = (
            self._engine_key(),
            bound_key(self._query, values) if values else self._key,
        )
        start = clock.now()
        with spans.span("cache.lookup"):
            payload = results.lookup(result_key, database)
        if payload is not None:
            # A hit needs no live backend: _peek names it without
            # freshening (no change-log forwarding for skipped work).
            payload = _isolate(payload)  # hits never alias the snapshot
            backend = session._peek(self._engine)
            run_seconds = clock.now() - start
            info = LifecycleInfo(
                plan_cache="skipped",
                result_cache="hit",
                prepare_seconds=self.prepare_seconds,
                run_seconds=run_seconds,
                parameters=self._parameters,
            )
            self._observe(root, backend.name, "hit", run_seconds)
            return self._wrap(bound, backend, payload, info)
        backend = session._resolve(self._engine)
        artifact = self._current_artifact(backend, database)
        with spans.span("engine.run", engine=backend.name):
            payload = backend.run_planned(
                artifact, bound, database, params=values
            )
        run_seconds = clock.now() - start
        # Store a snapshot: the caller owns `payload` and may mutate
        # its rows; the cache entry must stay pristine.
        results.store(
            result_key, _isolate(payload), database, self._query.relations
        )
        info = LifecycleInfo(
            plan_cache=self._plan_status,
            result_cache="miss" if results.capacity else "off",
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
            parameters=self._parameters,
        )
        self._observe(
            root,
            backend.name,
            "miss" if results.capacity else "off",
            run_seconds,
        )
        # The retained plan serves every later run of this handle: from
        # now on optimisation is skipped, which is what "hit" reports.
        self._plan_status = "hit"
        return self._wrap(bound, backend, payload, info)

    def _observe(
        self, root, engine: str, result_cache: str, run_seconds: float
    ) -> None:
        """Per-query metrics and root-span attributes (enabled only)."""
        if root is not None:
            root.attributes["engine"] = engine
            root.attributes["result_cache"] = result_cache
        _QUERIES.labels(engine).inc()
        _QUERY_SECONDS.labels(engine).observe(run_seconds)

    __call__ = run

    def _wrap(
        self,
        bound: Query,
        backend: "Engine",
        payload: "EngineRun",
        info: LifecycleInfo,
    ) -> "Result":
        from repro.api.result import Result

        database = self._session.database  # keep the Result from
        # pinning the session (and its caches): the closure captures
        # only the backend and the database, as a Result may outlive
        # the session that produced it.
        return Result(
            bound,
            backend.name,
            relation=payload.relation,
            factorised=payload.factorised,
            plan=payload.plan,
            trace=payload.trace,
            explain_fn=lambda: backend.explain(bound, database),
            seconds=info.run_seconds,
            lifecycle=info,
        )
