"""The prepared-query lifecycle: canonical forms, parameter binding,
version-aware plan/result caches, and the :class:`PreparedQuery`
handle (see the module docstrings for the design).
"""

from repro.plan.cache import (
    CacheStats,
    PlanCache,
    ResultCache,
    SessionCaches,
    catalogue_fingerprint,
    ftree_signature,
)
from repro.plan.canonical import bound_key, canonical_key, canonical_text
from repro.plan.params import ParameterError, bind_params, collect_params
from repro.plan.prepared import LifecycleInfo, PreparedQuery

__all__ = [
    "CacheStats",
    "LifecycleInfo",
    "ParameterError",
    "PlanCache",
    "PreparedQuery",
    "ResultCache",
    "SessionCaches",
    "bind_params",
    "bound_key",
    "canonical_key",
    "canonical_text",
    "catalogue_fingerprint",
    "collect_params",
    "ftree_signature",
]
