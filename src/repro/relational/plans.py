"""Eager (partial) aggregation plans for flat engines — Yan & Larson [31].

Experiment 2 of the paper shows that SQLite and PostgreSQL evaluate
aggregate-over-join queries with *lazy* aggregation only (aggregate after
the full join), and that handcrafted plans using *eager* aggregation —
pre-aggregating each input relation below the join — close most of the
gap to FDB.  This module implements that rewrite generically:

1. every input relation is pre-aggregated, grouped by the attributes it
   must preserve (join attributes, group-by attributes, selection
   attributes), computing a tuple count and partial sums / extrema for
   the aggregate sources it owns;
2. the pre-aggregated inputs are joined;
3. a final aggregation combines partials — a sum contributed by relation
   ``i`` is weighted by the product of the other relations' counts, a
   plain count by the product of all counts (this is exactly the
   relational shadow of the factorised algorithms in Section 3.2).

The plan consumes the same :class:`repro.query.Query` AST as the engines
and produces results identical to lazy evaluation (tested property-based
in ``tests/relational/test_plans.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.query import AggregateSpec, Query, QueryError
from repro.relational.aggregate import Accumulator, group_aggregate
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation
from repro.relational.sort import limit_rows, sort_rows

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.database import Database

COUNT_COLUMN = "__cnt"
PARTIAL_PREFIX = "__partial"


@dataclass
class PreAggregation:
    """Pre-aggregation step for one input relation."""

    relation: str
    group_by: tuple[str, ...]
    specs: tuple[AggregateSpec, ...]
    count_column: str

    def describe(self) -> str:
        parts = ", ".join(str(s) for s in self.specs)
        return (
            f"ϖ[{', '.join(self.group_by)}; {parts}]({self.relation})"
        )


@dataclass
class FinalAggregate:
    """How one query aggregate is reassembled from partial columns."""

    spec: AggregateSpec
    value_column: str | None  # column holding the (partial) value
    weight_columns: tuple[str, ...]  # count columns whose product weights it
    # For avg only: columns whose product gives the group cardinality
    # (includes the owner's count, which ``weight_columns`` excludes).
    count_weight_columns: tuple[str, ...] = ()


class EagerAggregationPlan:
    """A fully eager plan: pre-aggregate → join → combine partials."""

    def __init__(
        self,
        query: Query,
        pre_aggregations: list[PreAggregation],
        finals: list[FinalAggregate],
        grouping: str = "sort",
        join_method: str = "hash",
    ) -> None:
        self.query = query
        self.pre_aggregations = pre_aggregations
        self.finals = finals
        self.grouping = grouping
        self.join_method = join_method

    # ------------------------------------------------------------------
    def execute(self, database: "Database") -> Relation:
        """Run the eager plan against a database."""
        query = self.query
        inputs = []
        for pre in self.pre_aggregations:
            relation = database.flat(pre.relation)
            relation = _apply_local_selections(query, relation)
            inputs.append(
                group_aggregate(
                    relation, pre.group_by, pre.specs, method=self.grouping
                )
            )
        joined = (
            inputs[0]
            if len(inputs) == 1
            else multiway_join(inputs, method=self.join_method)
        )
        result = self._combine(joined)
        rows = result.rows
        if query.order_by:
            rows = sort_rows(rows, result.schema, query.order_by)
        if query.limit is not None:
            rows = limit_rows(rows, query.limit)
        return Relation(result.schema, rows, name=query.name or "eager")

    def _combine(self, joined: Relation) -> Relation:
        """Final grouping: fold weighted partials into each aggregate."""
        query = self.query
        key_pos = joined.positions(query.group_by)
        plan_pos = []
        for final in self.finals:
            value_pos = (
                joined.position(final.value_column)
                if final.value_column is not None
                else None
            )
            weight_pos = joined.positions(final.weight_columns)
            count_pos = joined.positions(final.count_weight_columns)
            plan_pos.append((final, value_pos, weight_pos, count_pos))

        table: dict[tuple, list[Accumulator]] = {}
        for row in joined.rows:
            key = tuple(row[p] for p in key_pos)
            accs = table.get(key)
            if accs is None:
                accs = [
                    Accumulator(final.spec.function)
                    for final, _, _, _ in plan_pos
                ]
                table[key] = accs
            for acc, (final, value_pos, weight_pos, count_pos) in zip(
                accs, plan_pos
            ):
                weight = 1
                for p in weight_pos:
                    weight *= row[p]
                function = final.spec.function
                if function == "count":
                    acc.add(None, weight)
                elif function in ("min", "max"):
                    acc.add(row[value_pos])
                elif function == "avg":
                    cardinality = 1
                    for p in count_pos:
                        cardinality *= row[p]
                    acc.total += row[value_pos] * weight
                    acc.count += cardinality
                else:  # sum: weighted partial sums
                    acc.total += row[value_pos] * weight
                    acc.count += weight
        schema = list(query.group_by) + [f.spec.alias for f in self.finals]
        rows = [
            key + tuple(acc.result() for acc in accs)
            for key, accs in sorted(table.items())
        ]
        result = Relation(schema, rows, name=query.name or "eager")
        if query.having:
            positions = [(result.position(h.target), h) for h in query.having]
            result = Relation(
                schema,
                [
                    row
                    for row in result.rows
                    if all(h.test(row[p]) for p, h in positions)
                ],
                name=result.name,
            )
        return result

    def explain(self) -> str:
        """Human-readable plan description (for docs and debugging)."""
        lines = ["EagerAggregationPlan:"]
        lines.extend(f"  pre:  {pre.describe()}" for pre in self.pre_aggregations)
        lines.append(
            "  join: " + " ⋈ ".join(p.relation for p in self.pre_aggregations)
        )
        for final in self.finals:
            weight = " × ".join(final.weight_columns) or "1"
            lines.append(
                f"  final: {final.spec.alias} = "
                f"{final.spec.function}({final.value_column or '*'}) "
                f"weighted by {weight}"
            )
        return "\n".join(lines)


def _apply_local_selections(query: Query, relation: Relation) -> Relation:
    """Apply constant selections owned by this relation before grouping."""
    local = [
        c for c in query.comparisons if c.attribute in relation.schema
    ]
    if not local:
        return relation
    tests = [(relation.position(c.attribute), c) for c in local]
    rows = [
        row
        for row in relation.rows
        if all(c.test(row[p]) for p, c in tests)
    ]
    return Relation(relation.schema, rows, name=relation.name)


def eager_aggregation(
    query: Query,
    database: Database,
    grouping: str = "sort",
    join_method: str = "hash",
) -> EagerAggregationPlan:
    """Build the eager-aggregation plan for an aggregate query.

    The query must be an aggregate query over a natural join (shared
    attribute names); explicit cross-relation equalities are supported
    by preserving their attributes through pre-aggregation.
    """
    if not query.aggregates:
        raise QueryError("eager aggregation applies to aggregate queries only")
    unsupported = [
        spec for spec in query.aggregates if spec.is_expression
    ]
    if unsupported or any(c.is_expression for c in query.comparisons):
        raise QueryError(
            "the eager-aggregation rewrite supports single-attribute "
            "aggregates and selections only; run expression queries "
            "through the fdb/rdb/sqlite engines instead"
        )

    schemas = {name: set(database.schema(name)) for name in query.relations}

    # Attributes each relation must keep: natural-join attributes (names
    # shared with any other input), explicit equality attributes, and its
    # share of the group-by list.
    preserved: dict[str, set[str]] = {name: set() for name in query.relations}
    for name, attrs in schemas.items():
        for other, other_attrs in schemas.items():
            if other != name:
                preserved[name] |= attrs & other_attrs
        for eq in query.equalities:
            preserved[name] |= attrs & {eq.left, eq.right}
        preserved[name] |= attrs & set(query.group_by)

    # Assign each aggregate source attribute to its owning relation.
    owner: dict[str, str] = {}
    for spec in query.aggregates:
        if spec.attribute is None:
            continue
        owners = [n for n, attrs in schemas.items() if spec.attribute in attrs]
        if not owners:
            raise QueryError(
                f"aggregate source {spec.attribute!r} not found in inputs"
            )
        owner[spec.attribute] = owners[0]

    pre_aggregations: list[PreAggregation] = []
    partial_column: dict[tuple[str, str], str] = {}
    count_column: dict[str, str] = {}
    for index, name in enumerate(query.relations):
        cnt = f"{COUNT_COLUMN}_{index}"
        count_column[name] = cnt
        specs: list[AggregateSpec] = [AggregateSpec("count", None, cnt)]
        for spec in query.aggregates:
            attr = spec.attribute
            if attr is None or spec.function == "count":
                continue  # tuple counting is covered by the count column
            if owner.get(attr) != name:
                continue
            if attr in preserved[name]:
                continue  # kept as a plain column; combined at the top
            key = (attr, _partial_function(spec.function))
            if (name, f"{key[0]}:{key[1]}") in partial_column:
                continue
            column = f"{PARTIAL_PREFIX}_{key[1]}_{attr}"
            partial_column[(name, f"{attr}:{key[1]}")] = column
            specs.append(
                AggregateSpec(_partial_function(spec.function), attr, column)
            )
        pre_aggregations.append(
            PreAggregation(name, tuple(sorted(preserved[name])), tuple(specs), cnt)
        )

    all_counts = tuple(count_column[name] for name in query.relations)
    finals: list[FinalAggregate] = []
    for spec in query.aggregates:
        if spec.function == "count":
            # count(A) equals count(*) in this NULL-free data model.
            finals.append(FinalAggregate(spec, None, all_counts))
            continue
        attr = spec.attribute
        rel = owner[attr]
        if attr in preserved[rel]:
            # Raw column survived the pre-aggregation: weight by all counts.
            if spec.function in ("min", "max"):
                finals.append(FinalAggregate(spec, attr, ()))
            else:
                finals.append(
                    FinalAggregate(spec, attr, all_counts, all_counts)
                )
        else:
            column = partial_column[(rel, f"{attr}:{_partial_function(spec.function)}")]
            if spec.function in ("min", "max"):
                finals.append(FinalAggregate(spec, column, ()))
            else:
                weights = tuple(
                    count_column[name]
                    for name in query.relations
                    if name != rel
                )
                finals.append(
                    FinalAggregate(spec, column, weights, all_counts)
                )
    return EagerAggregationPlan(
        query, pre_aggregations, finals, grouping=grouping, join_method=join_method
    )


def _partial_function(function: str) -> str:
    """Partial-aggregation function for each query aggregate (Prop. 2)."""
    if function in ("sum", "avg"):
        return "sum"
    if function in ("min", "max"):
        return function
    return "count"
