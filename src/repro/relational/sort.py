"""Multi-attribute lexicographic sorting with per-attribute direction.

The paper's ordering operator ``o_G`` sorts lexicographically by a list
of attributes each tagged ascending (↑) or descending (↓).  Python's
``sorted`` is stable, so mixed directions are implemented by a sequence
of stable single-key sorts applied from the least significant attribute
to the most significant one — no assumptions about value types (e.g.
negation tricks) are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relational.relation import Relation


@dataclass(frozen=True)
class SortKey:
    """One entry of an order-by list: attribute plus direction."""

    attribute: str
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.attribute}{'↓' if self.descending else '↑'}"


def normalise_order(order: Sequence) -> list[SortKey]:
    """Accept ``"attr"``, ``("attr", "desc")`` or :class:`SortKey` items."""
    keys: list[SortKey] = []
    for item in order:
        if isinstance(item, SortKey):
            keys.append(item)
        elif isinstance(item, str):
            keys.append(SortKey(item))
        else:
            attribute, direction = item
            descending = str(direction).lower() in ("desc", "descending", "↓")
            keys.append(SortKey(attribute, descending))
    return keys


def sort_rows(
    rows: Iterable[tuple],
    schema: Sequence[str],
    order: Sequence,
) -> list[tuple]:
    """Sort raw tuples lexicographically by ``order`` over ``schema``."""
    keys = normalise_order(order)
    schema = list(schema)
    out = list(rows)
    # Stable sorts from the least significant key to the most significant.
    for key in reversed(keys):
        pos = schema.index(key.attribute)
        out.sort(key=lambda row, p=pos: row[p], reverse=key.descending)
    return out


def sort_relation(relation: Relation, order: Sequence) -> Relation:
    """Sorted copy of ``relation`` (the o_G operator of the paper)."""
    for key in normalise_order(order):
        relation.position(key.attribute)  # validate attribute names early
    rows = sort_rows(relation.rows, relation.schema, order)
    return Relation(relation.schema, rows, name=f"o({relation.name})")


def limit_rows(rows: Iterable[tuple], k: int) -> list[tuple]:
    """The λ_k operator: first ``k`` tuples in input order."""
    if k < 0:
        raise ValueError("limit must be non-negative")
    out = []
    for row in rows:
        if len(out) >= k:
            break
        out.append(row)
    return out


def is_sorted_by(relation: Relation, order: Sequence) -> bool:
    """Check whether a relation's rows already satisfy an order-by list."""
    keys = normalise_order(order)
    positions = [relation.position(k.attribute) for k in keys]
    flips = [k.descending for k in keys]

    def keyfn(row: tuple) -> tuple:
        return tuple(
            _DirectedValue(row[p], desc) for p, desc in zip(positions, flips)
        )

    rows = relation.rows
    return all(keyfn(rows[i]) <= keyfn(rows[i + 1]) for i in range(len(rows) - 1))


class _DirectedValue:
    """Comparison wrapper that reverses order for descending keys."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __le__(self, other: "_DirectedValue") -> bool:
        if self.descending:
            return self.value >= other.value
        return self.value <= other.value
