"""CSV loading for relations and databases.

A small, dependency-free loader so real datasets can be pulled into the
engines: header row gives attribute names, values are type-inferred
per column (int → float → str, applied column-wise so columns stay
homogeneous as the engines assume).
"""

from __future__ import annotations

import csv
import os
from typing import IO

from repro.database import Database
from repro.relational.relation import Relation


class CSVFormatError(ValueError):
    """Raised for empty files or ragged rows."""


def _infer_column(values: list[str]):
    """Best homogeneous type for one column: int, else float, else str."""
    def try_all(cast) -> bool:
        for value in values:
            if value == "":
                return False
            try:
                cast(value)
            except ValueError:
                return False
        return True

    if try_all(int):
        return int
    if try_all(float):
        return float
    return str


def read_relation(handle: IO[str], name: str = "") -> Relation:
    """Read one relation from an open CSV handle (header required)."""
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise CSVFormatError("empty CSV: a header row is required") from None
    raw_rows = []
    for index, row in enumerate(reader, start=2):
        if not row:
            continue  # tolerate blank lines
        if len(row) != len(header):
            raise CSVFormatError(
                f"line {index}: expected {len(header)} fields, got {len(row)}"
            )
        raw_rows.append(row)
    casts = [
        _infer_column([row[i] for row in raw_rows])
        for i in range(len(header))
    ]
    typed = [
        tuple(cast(value) for cast, value in zip(casts, row))
        for row in raw_rows
    ]
    return Relation([h.strip() for h in header], typed, name=name or "csv")


def load_relation(path: str, name: str = "") -> Relation:
    """Load one relation from a CSV file (name defaults to the stem)."""
    stem = os.path.splitext(os.path.basename(path))[0]
    with open(path, newline="", encoding="utf-8") as handle:
        return read_relation(handle, name=name or stem)


def load_database(directory: str, pattern: str = ".csv") -> Database:
    """Load every ``*.csv`` in a directory as one database.

    Each file becomes a relation named after its stem; factorised views
    can then be registered with :func:`repro.core.build.factorise` or
    loaded from :mod:`repro.core.io` documents.
    """
    database = Database()
    found = False
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(pattern):
            continue
        found = True
        database.add_relation(load_relation(os.path.join(directory, entry)))
    if not found:
        raise CSVFormatError(f"no {pattern} files found in {directory!r}")
    return database


def write_relation(relation: Relation, handle: IO[str]) -> None:
    """Write a relation as CSV (header + rows)."""
    writer = csv.writer(handle)
    writer.writerow(relation.schema)
    writer.writerows(relation.rows)


def save_relation(relation: Relation, path: str) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        write_relation(relation, handle)
