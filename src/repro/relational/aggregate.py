"""Grouping and aggregation over flat relations.

Two physical implementations are provided, mirroring the engines the
paper benchmarks against (Section 6, Experiment 1):

- :func:`group_aggregate_sort` — sorts the input on the grouping
  attributes and aggregates each run in one scan.  This is how the
  paper's RDB baseline works and models SQLite's B-tree grouping.
- :func:`group_aggregate_hash` — a single pass maintaining per-group
  accumulators in a hash table, modelling PostgreSQL's hash aggregation.

Both consume :class:`repro.query.AggregateSpec` lists and produce a
relation with schema ``group_by + aliases``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.expr import Expr
from repro.query import AggregateSpec, QueryError
from repro.relational.relation import Relation, Row


class Accumulator:
    """Running state of one aggregation function over one group."""

    __slots__ = ("function", "count", "total", "extreme")

    def __init__(self, function: str) -> None:
        self.function = function
        self.count = 0
        self.total: Any = 0
        self.extreme: Any = None

    def add(self, value: Any, weight: int = 1) -> None:
        """Fold one input value (``weight`` supports pre-counted rows)."""
        self.count += weight
        function = self.function
        if function in ("sum", "avg"):
            self.total += value * weight
        elif function == "min":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif function == "max":
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def merge(self, other: "Accumulator") -> None:
        """Combine two partial accumulators (for partial aggregation)."""
        if other.function != self.function:
            raise QueryError("cannot merge accumulators of different functions")
        self.count += other.count
        self.total += other.total
        if other.extreme is not None:
            if self.extreme is None:
                self.extreme = other.extreme
            elif self.function == "min":
                self.extreme = min(self.extreme, other.extreme)
            elif self.function == "max":
                self.extreme = max(self.extreme, other.extreme)

    def result(self) -> Any:
        """Final value of the aggregate for this group.

        SQL semantics over zero input rows: COUNT is 0 and every other
        function is NULL (``None``) — the single-row shape sqlite
        produces for ungrouped aggregates over an empty input.
        """
        function = self.function
        if function == "count":
            return self.count
        if self.count == 0:
            return None
        if function == "sum":
            return self.total
        if function == "avg":
            return self.total / self.count
        return self.extreme


def _make_accumulators(specs: Sequence[AggregateSpec]) -> list[Accumulator]:
    return [Accumulator(spec.function) for spec in specs]


def _fold_row(
    accs: list[Accumulator],
    specs: Sequence[AggregateSpec],
    getters: list["Callable[[Row], Any] | None"],
    row: Row,
) -> None:
    for acc, get in zip(accs, getters):
        if get is None:
            acc.add(None)  # count(*)
        else:
            acc.add(get(row))


def value_getter(
    relation: Relation, target: "str | Expr | None"
) -> "Callable[[Row], Any] | None":
    """Row-wise accessor for an aggregate argument or computed column.

    ``None`` for ``count(*)``, a direct position lookup for a bare
    attribute, and an expression evaluation over a per-row binding for
    composite arguments.
    """
    if target is None:
        return None
    if isinstance(target, str):
        position = relation.position(target)
        return lambda row: row[position]
    slots = [(name, relation.position(name)) for name in target.attributes()]
    return lambda row: target.evaluate({name: row[p] for name, p in slots})


def _positions_for(
    relation: Relation, specs: Sequence[AggregateSpec]
) -> list["Callable[[Row], Any] | None"]:
    return [value_getter(relation, spec.attribute) for spec in specs]


def _output(
    group_by: Sequence[str],
    specs: Sequence[AggregateSpec],
    groups: list[tuple[Row, list[Accumulator]]],
    name: str,
) -> Relation:
    schema = list(group_by) + [spec.alias for spec in specs]
    rows = [
        key + tuple(acc.result() for acc in accs) for key, accs in groups
    ]
    return Relation(schema, rows, name=name)


def group_aggregate_sort(
    relation: Relation,
    group_by: Sequence[str],
    specs: Sequence[AggregateSpec],
) -> Relation:
    """Grouping by sorting, aggregation in one scan over sorted runs.

    With an empty ``group_by`` this computes scalar aggregates over the
    whole relation — always one output row, with SQL's NULL semantics
    over an empty input (COUNT = 0, SUM/AVG/MIN/MAX = None).
    """
    positions = _positions_for(relation, specs)
    if not group_by:
        accs = _make_accumulators(specs)
        for row in relation.rows:
            _fold_row(accs, specs, positions, row)
        return _output((), specs, [((), accs)], f"ϖ({relation.name})")

    key_pos = relation.positions(group_by)
    rows = sorted(relation.rows, key=lambda r: tuple(r[p] for p in key_pos))
    groups: list[tuple[Row, list[Accumulator]]] = []
    current_key: Row | None = None
    accs: list[Accumulator] = []
    for row in rows:
        key = tuple(row[p] for p in key_pos)
        if key != current_key:
            accs = _make_accumulators(specs)
            groups.append((key, accs))
            current_key = key
        _fold_row(accs, specs, positions, row)
    return _output(group_by, specs, groups, f"ϖ({relation.name})")


def group_aggregate_hash(
    relation: Relation,
    group_by: Sequence[str],
    specs: Sequence[AggregateSpec],
) -> Relation:
    """Grouping via a hash table of accumulators (PostgreSQL-style).

    Output groups are emitted in sorted key order so that both physical
    implementations produce identical relations (hash engines normally
    emit in arbitrary order; sorting the small output keeps results
    deterministic without affecting the measured aggregation work).
    """
    positions = _positions_for(relation, specs)
    if not group_by:
        return group_aggregate_sort(relation, group_by, specs)

    key_pos = relation.positions(group_by)
    table: dict[Row, list[Accumulator]] = {}
    for row in relation.rows:
        key = tuple(row[p] for p in key_pos)
        accs = table.get(key)
        if accs is None:
            accs = _make_accumulators(specs)
            table[key] = accs
        _fold_row(accs, specs, positions, row)
    groups = sorted(table.items(), key=lambda item: item[0])
    return _output(group_by, specs, groups, f"ϖ({relation.name})")


def group_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    specs: Sequence[AggregateSpec],
    method: str = "sort",
) -> Relation:
    """Dispatch to the chosen physical grouping implementation."""
    if method == "sort":
        return group_aggregate_sort(relation, group_by, specs)
    if method == "hash":
        return group_aggregate_hash(relation, group_by, specs)
    raise ValueError(f"unknown grouping method {method!r}")
