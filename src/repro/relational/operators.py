"""Binary relational operators: joins, product, union, difference.

Natural join comes in two physical flavours mirroring what mainstream
engines pick for in-memory workloads: a hash join (PostgreSQL's default
for equality joins) and a sort-merge join (what SQLite's B-tree access
paths amount to).  Both produce identical results; benchmarks exercise
them separately.
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.relation import Relation, Row, SchemaError


def join_attributes(left: Relation, right: Relation) -> list[str]:
    """Shared attributes of two relations, in ``left`` schema order."""
    right_set = set(right.schema)
    return [a for a in left.schema if a in right_set]


def _output_schema(left: Relation, right: Relation) -> tuple[list[str], list[int]]:
    """Schema of the natural join and positions of right's extra columns."""
    shared = set(left.schema) & set(right.schema)
    extra_positions = [
        i for i, a in enumerate(right.schema) if a not in shared
    ]
    schema = list(left.schema) + [right.schema[i] for i in extra_positions]
    return schema, extra_positions


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural join via a hash table on the shared attributes.

    With no shared attributes this degenerates to the Cartesian product,
    which matches the semantics of the ⋈ operator.
    """
    shared = join_attributes(left, right)
    if not shared:
        return product(left, right)
    schema, extra_positions = _output_schema(left, right)
    left_key = left.positions(shared)
    right_key = right.positions(shared)

    # Build on the smaller input, probe with the larger.
    build, probe, build_key, probe_key, build_is_left = (
        (left, right, left_key, right_key, True)
        if len(left) <= len(right)
        else (right, left, right_key, left_key, False)
    )
    table: dict[Row, list[Row]] = {}
    for row in build.rows:
        table.setdefault(tuple(row[p] for p in build_key), []).append(row)

    out: list[Row] = []
    for row in probe.rows:
        matches = table.get(tuple(row[p] for p in probe_key))
        if not matches:
            continue
        for match in matches:
            lrow, rrow = (match, row) if build_is_left else (row, match)
            out.append(lrow + tuple(rrow[p] for p in extra_positions))
    return Relation(schema, out, name=f"({left.name} ⋈ {right.name})")


def sort_merge_join(left: Relation, right: Relation) -> Relation:
    """Natural join by sorting both inputs on the shared attributes."""
    shared = join_attributes(left, right)
    if not shared:
        return product(left, right)
    schema, extra_positions = _output_schema(left, right)
    lk = left.positions(shared)
    rk = right.positions(shared)
    lrows = sorted(left.rows, key=lambda r: tuple(r[p] for p in lk))
    rrows = sorted(right.rows, key=lambda r: tuple(r[p] for p in rk))

    out: list[Row] = []
    i = j = 0
    while i < len(lrows) and j < len(rrows):
        lkey = tuple(lrows[i][p] for p in lk)
        rkey = tuple(rrows[j][p] for p in rk)
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Find the runs of equal keys on both sides and emit their product.
            i_end = i
            while i_end < len(lrows) and tuple(lrows[i_end][p] for p in lk) == lkey:
                i_end += 1
            j_end = j
            while j_end < len(rrows) and tuple(rrows[j_end][p] for p in rk) == rkey:
                j_end += 1
            for li in range(i, i_end):
                lrow = lrows[li]
                for rj in range(j, j_end):
                    rrow = rrows[rj]
                    out.append(lrow + tuple(rrow[p] for p in extra_positions))
            i, j = i_end, j_end
    return Relation(schema, out, name=f"({left.name} ⋈ {right.name})")


def natural_join(
    left: Relation, right: Relation, method: str = "hash"
) -> Relation:
    """Natural join with a selectable physical operator."""
    if method == "hash":
        return hash_join(left, right)
    if method == "merge":
        return sort_merge_join(left, right)
    raise ValueError(f"unknown join method {method!r}")


def multiway_join(
    relations: Sequence[Relation], method: str = "hash"
) -> Relation:
    """Left-deep natural join of several relations.

    Inputs are reordered greedily so that each step shares at least one
    attribute with the accumulated result when possible (avoiding
    accidental Cartesian blow-ups for disconnected orderings).
    """
    if not relations:
        raise ValueError("multiway_join needs at least one relation")
    remaining = list(relations)
    result = remaining.pop(0)
    while remaining:
        pick = None
        for idx, rel in enumerate(remaining):
            if set(rel.schema) & set(result.schema):
                pick = idx
                break
        if pick is None:
            pick = 0  # genuinely disconnected: product is unavoidable
        result = natural_join(result, remaining.pop(pick), method=method)
    return result


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product ×; schemas must be disjoint."""
    overlap = set(left.schema) & set(right.schema)
    if overlap:
        raise SchemaError(
            f"product requires disjoint schemas; shared: {sorted(overlap)}"
        )
    schema = list(left.schema) + list(right.schema)
    out = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation(schema, out, name=f"({left.name} × {right.name})")


def union(left: Relation, right: Relation) -> Relation:
    """Set union ∪ of two relations over the same attribute set."""
    if set(left.schema) != set(right.schema):
        raise SchemaError(
            f"union requires equal schemas; got {left.schema!r} and "
            f"{right.schema!r}"
        )
    aligned = right.project(left.schema, dedup=False)
    merged = left.rows + aligned.rows
    return Relation(
        left.schema, dict.fromkeys(merged), name=f"({left.name} ∪ {right.name})"
    )


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference ∖ of two relations over the same attribute set."""
    if set(left.schema) != set(right.schema):
        raise SchemaError(
            f"difference requires equal schemas; got {left.schema!r} and "
            f"{right.schema!r}"
        )
    drop = set(right.project(left.schema, dedup=False).rows)
    kept = [row for row in left.rows if row not in drop]
    return Relation(left.schema, kept, name=f"({left.name} ∖ {right.name})")


def semijoin(left: Relation, right: Relation) -> Relation:
    """Semijoin ⋉: rows of ``left`` with a join partner in ``right``."""
    shared = join_attributes(left, right)
    if not shared:
        return left if len(right) else Relation(left.schema, [], name=left.name)
    rk = right.positions(shared)
    keys = {tuple(row[p] for p in rk) for row in right.rows}
    lk = left.positions(shared)
    kept = [row for row in left.rows if tuple(row[p] for p in lk) in keys]
    return Relation(left.schema, kept, name=f"({left.name} ⋉ {right.name})")
