"""Flat relational substrate: the RDB baseline engine of the paper.

This package implements an in-memory relational engine comparable to the
``RDB`` engine used in Experiment 5 of the paper: relations as lists of
tuples, the classical operators (selection, projection, joins, product,
union), multi-attribute ascending/descending sorting, and grouping with
aggregation implemented both by sorting (as SQLite does) and by hashing
(as PostgreSQL does).

The public entry points are:

- :class:`repro.relational.relation.Relation` — the value container;
- :class:`repro.relational.engine.RDBEngine` — executes the shared
  :class:`repro.core.query.Query` AST over flat relations;
- :func:`repro.relational.plans.eager_aggregation` — the Yan–Larson
  eager-aggregation rewrite used for the paper's "manually optimised"
  plans in Experiment 2.
"""

from repro.relational.relation import Relation
from repro.relational.engine import RDBEngine

__all__ = ["Relation", "RDBEngine"]
