"""In-memory relations: named-attribute schemas over lists of tuples.

A :class:`Relation` is the flat data container shared by the whole
repository: the RDB baseline operates on relations directly, the
factorisation builder (:mod:`repro.core.build`) consumes them, and the
FDB engine produces them when flat output is requested.

Relations are *bags* by construction (duplicates may appear after
projection) but most query paths in the paper work with sets; helpers
for both interpretations are provided.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

Tuple_ = tuple
Row = tuple


class SchemaError(ValueError):
    """Raised when attribute names do not match a relation's schema."""


class Relation:
    """A named relation: a schema (tuple of attribute names) plus rows.

    Rows are plain Python tuples whose positions align with the schema.
    Values must be orderable within a column (the usual homogeneous-column
    assumption); across columns no relationship is required.
    """

    __slots__ = ("name", "schema", "rows", "_index")

    def __init__(
        self,
        schema: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        name: str = "",
    ) -> None:
        schema = tuple(schema)
        if len(set(schema)) != len(schema):
            raise SchemaError(f"duplicate attributes in schema {schema!r}")
        self.name = name or "relation"
        self.schema = schema
        self.rows: list[Row] = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(schema)} in relation {self.name!r}"
                )
        self._index: dict[Any, Any] = {}

    @classmethod
    def adopt(
        cls, schema: Sequence[str], rows: list[Row], name: str = ""
    ) -> "Relation":
        """Wrap an already-validated row list without copying it.

        The copy-on-write mutation path of :class:`repro.database.
        Database` builds a fresh row list per change and publishes it as
        a new relation object; rows there are known to be tuples of the
        right arity, so the per-row validation of ``__init__`` would
        only re-tuple what is already canonical.  The caller transfers
        ownership of ``rows``.
        """
        relation = cls.__new__(cls)
        relation.name = name or "relation"
        relation.schema = tuple(schema)
        relation.rows = rows
        relation._index = {}
        return relation

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in set(self.rows)

    def __eq__(self, other: object) -> bool:
        """Set-equality: same schema (as a set) and same set of tuples.

        Attribute order is normalised before comparing so that relations
        produced by different engines compare equal when they represent
        the same mathematical relation.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.schema) != set(other.schema):
            return False
        reordered = other.project(self.schema, dedup=False)
        return set(self.rows) == set(reordered.rows)

    def __hash__(self) -> int:  # relations are mutable containers
        raise TypeError("Relation objects are unhashable")

    def __repr__(self) -> str:
        return (
            f"Relation(name={self.name!r}, schema={self.schema!r}, "
            f"rows={len(self.rows)})"
        )

    # ------------------------------------------------------------------
    # Attribute access helpers
    # ------------------------------------------------------------------
    def position(self, attribute: str) -> int:
        """Index of ``attribute`` within the schema."""
        try:
            return self.schema.index(attribute)
        except ValueError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self.schema!r} "
                f"of relation {self.name!r}"
            ) from None

    def positions(self, attributes: Sequence[str]) -> list[int]:
        """Indices of several attributes, in the given order."""
        return [self.position(a) for a in attributes]

    def column(self, attribute: str) -> list[Any]:
        """All values of one attribute, in row order (with duplicates)."""
        pos = self.position(attribute)
        return [row[pos] for row in self.rows]

    def distinct_values(self, attribute: str) -> list[Any]:
        """Sorted distinct values of one attribute."""
        return sorted(set(self.column(attribute)))

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as attribute→value dictionaries (for display/tests)."""
        return [dict(zip(self.schema, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # Core unary operations (used by the RDB engine and the builder)
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[str], dedup: bool = True) -> "Relation":
        """Projection π over ``attributes`` (set semantics when ``dedup``)."""
        pos = self.positions(attributes)
        projected = [tuple(row[p] for p in pos) for row in self.rows]
        if dedup:
            projected = _dedup_preserving_order(projected)
        return Relation(attributes, projected, name=f"π({self.name})")

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Relation":
        """Selection σ with an arbitrary Python predicate over attr dicts."""
        schema = self.schema
        kept = [
            row for row in self.rows if predicate(dict(zip(schema, row)))
        ]
        return Relation(schema, kept, name=f"σ({self.name})")

    def select_eq(self, attribute: str, value: Any) -> "Relation":
        """Selection σ_{attribute = value} (the common fast path)."""
        pos = self.position(attribute)
        kept = [row for row in self.rows if row[pos] == value]
        return Relation(self.schema, kept, name=f"σ({self.name})")

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (missing keys kept)."""
        new_schema = tuple(mapping.get(a, a) for a in self.schema)
        return Relation(new_schema, self.rows, name=self.name)

    def distinct(self) -> "Relation":
        """Duplicate elimination."""
        return Relation(
            self.schema, _dedup_preserving_order(self.rows), name=self.name
        )

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append rows in place (generator/loader support)."""
        for row in rows:
            row = tuple(row)
            if len(row) != len(self.schema):
                raise SchemaError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(self.schema)}"
                )
            self.rows.append(row)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def pretty(self, limit: int = 20) -> str:
        """ASCII table of the first ``limit`` rows (for examples/docs)."""
        header = list(self.schema)
        body = [[str(v) for v in row] for row in self.rows[:limit]]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        )
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def _dedup_preserving_order(rows: list[Row]) -> list[Row]:
    """Remove duplicate tuples, keeping the first occurrence of each."""
    seen: set[Row] = set()
    out: list[Row] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out
