"""RDB: the flat relational engine used as the paper's baseline.

This is the engine of Experiment 5: joins, then selections, then
grouping+aggregation (by sorting or hashing), then ordering and limit.
It deliberately performs *no* partial aggregation — the paper observes
that SQLite and PostgreSQL both lack that optimisation, which is what
the manually optimised plans of Experiment 2 (see
:mod:`repro.relational.plans`) add back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.query import Query, QueryError
from repro.relational.aggregate import group_aggregate, value_getter
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation
from repro.relational.sort import limit_rows, sort_rows

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.database import Database


class RDBEngine:
    """Executes :class:`repro.query.Query` over flat relations.

    Parameters
    ----------
    grouping:
        ``"sort"`` models SQLite (sort-based grouping, the RDB baseline
        of the paper); ``"hash"`` models PostgreSQL (hash aggregation).
    join_method:
        physical join operator, ``"hash"`` or ``"merge"``.
    """

    name = "RDB"

    def __init__(self, grouping: str = "sort", join_method: str = "hash") -> None:
        if grouping not in ("sort", "hash"):
            raise ValueError(f"unknown grouping method {grouping!r}")
        self.grouping = grouping
        self.join_method = join_method

    # ------------------------------------------------------------------
    # Execution pipeline
    # ------------------------------------------------------------------
    def execute(self, query: Query, database: "Database") -> Relation:
        """Run the full pipeline and return the result relation."""
        joined = self.join_inputs(query, database)
        filtered = self.apply_selections(query, joined)
        shaped = self.apply_aggregation_or_projection(query, filtered)
        return self.apply_order_and_limit(query, shaped)

    # Each stage is public so plans/benchmarks can time them separately.
    def join_inputs(self, query: Query, database: "Database") -> Relation:
        """Materialise σ-free join of the query's input relations."""
        inputs = [database.flat(name) for name in query.relations]
        if len(inputs) == 1:
            return inputs[0]
        return multiway_join(inputs, method=self.join_method)

    def apply_selections(self, query: Query, relation: Relation) -> Relation:
        """Equality and constant selections, in one scan.

        Expression selections (``price * qty > 100``) evaluate their
        scalar expression row-wise in the same scan.
        """
        if not query.equalities and not query.comparisons:
            return relation
        eq_pairs = [
            (relation.position(eq.left), relation.position(eq.right))
            for eq in query.equalities
        ]
        cmp_tests = [
            (value_getter(relation, c.attribute), c)
            for c in query.comparisons
        ]
        rows = [
            row
            for row in relation.rows
            if all(row[i] == row[j] for i, j in eq_pairs)
            and all(c.test(get(row)) for get, c in cmp_tests)
        ]
        return Relation(relation.schema, rows, name=f"σ({relation.name})")

    def apply_aggregation_or_projection(
        self, query: Query, relation: Relation
    ) -> Relation:
        """The ϖ (or π) stage, plus computed columns, HAVING, DISTINCT."""
        if query.aggregates:
            result = group_aggregate(
                relation, query.group_by, query.aggregates, method=self.grouping
            )
            if query.having:
                result = self._apply_having(query, result)
            return result
        if query.computed:
            return self._apply_computed(query, relation)
        if query.projection is not None:
            return relation.project(query.projection, dedup=True)
        if query.distinct:
            return relation.distinct()
        return relation

    def apply_order_and_limit(self, query: Query, relation: Relation) -> Relation:
        """The o_L and λ_k stages."""
        rows = relation.rows
        if query.order_by:
            self._validate_order(query, relation.schema)
            rows = sort_rows(rows, relation.schema, query.order_by)
        if query.limit is not None:
            rows = limit_rows(rows, query.limit)
        if rows is relation.rows:
            return relation
        return Relation(relation.schema, rows, name=relation.name)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _apply_computed(self, query: Query, relation: Relation) -> Relation:
        """Projection with computed output columns, set semantics."""
        base = list(query.projection or ())
        positions = [relation.position(name) for name in base]
        getters = [
            value_getter(relation, column.expression)
            for column in query.computed
        ]
        schema = query.output_schema
        seen: set[tuple] = set()
        rows: list[tuple] = []
        for row in relation.rows:
            shaped = tuple(row[p] for p in positions) + tuple(
                get(row) for get in getters
            )
            if shaped in seen:
                continue
            seen.add(shaped)
            rows.append(shaped)
        return Relation(schema, rows, name=f"π({relation.name})")

    def _apply_having(self, query: Query, relation: Relation) -> Relation:
        positions = [
            (relation.position(h.target), h) for h in query.having
        ]
        rows = [
            row
            for row in relation.rows
            # SQL NULL semantics: a None aggregate satisfies no condition.
            if all(row[p] is not None and h.test(row[p]) for p, h in positions)
        ]
        return Relation(relation.schema, rows, name=relation.name)

    def _validate_order(self, query: Query, schema: Sequence[str]) -> None:
        available = set(schema)
        for key in query.order_by:
            if key.attribute not in available:
                raise QueryError(
                    f"order-by attribute {key.attribute!r} is not in the "
                    f"result schema {tuple(schema)!r}"
                )
