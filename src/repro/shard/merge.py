"""Merging per-shard partial results into one query answer.

Three strategies, chosen from the query shape by :func:`plan_shards`:

``merge-aggregate``
    The §3.2 decomposition across horizontal partitions.  Each shard
    runs the query rewritten to return *partial states* — the γ
    components of :func:`repro.core.engine.expand_functions`, so AVG
    travels as its maintained (sum, count) pair — grouped exactly like
    the original query.  Per-group states then combine across shards
    (SUM/COUNT add, MIN/MAX fold), and HAVING / ORDER BY / LIMIT apply
    to the merged, result-sized group table.

``heap-merge``
    Ordered enumeration: every shard yields its result already sorted
    (top-k per shard when the query has a limit — safe, because any
    globally top-k row is top-k within its own shard), and a k-way
    ``heapq.merge`` interleaves the streams lazily.  Top-k therefore
    never materialises full shard outputs.

``union``
    Unordered select-project-join output: concatenate and deduplicate
    (set semantics, as everywhere in the repository).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.core.aggregates import empty_aggregate_components
from repro.core.engine import expand_functions
from repro.query import AggregateSpec, Query
from repro.relational.relation import Relation
from repro.relational.sort import normalise_order, sort_rows

#: One γ component: (function, attribute-or-expression-or-None).
Component = tuple[str, Any]

MERGE_AGGREGATE = "merge-aggregate"
HEAP_MERGE = "heap-merge"
UNION = "union"


@dataclass(frozen=True)
class MergePlan:
    """How per-shard results of ``shard_query`` combine into the answer."""

    strategy: str
    shard_query: Query
    components: tuple[Component, ...] = ()

    def describe(self) -> str:
        if self.strategy == MERGE_AGGREGATE:
            parts = ", ".join(
                f"{fn}({target if target is not None else '*'})"
                for fn, target in self.components
            )
            return (
                f"{self.strategy}: per-shard partial states [{parts}] "
                "combine per group (sum/count add, min/max fold, avg as "
                "(sum, count))"
            )
        if self.strategy == HEAP_MERGE:
            return (
                f"{self.strategy}: k-way heap merge of per-shard sorted "
                "streams (top-k never materialises full shard outputs)"
            )
        return f"{self.strategy}: concatenate shard outputs, deduplicate"


def plan_shards(query: Query) -> MergePlan:
    """The shard-level query and merge strategy for ``query``."""
    if query.aggregates:
        components = expand_functions(query.aggregates)
        partials = tuple(
            AggregateSpec(function, target, f"__partial_{index}")
            for index, (function, target) in enumerate(components)
        )
        shard_query = replace(
            query,
            aggregates=partials,
            having=(),
            order_by=(),
            limit=None,
            name="",
        )
        return MergePlan(MERGE_AGGREGATE, shard_query, components)
    if query.order_by:
        # The limit stays on the shard query: a row in the global top-k
        # is in the top-k of its own shard, so per-shard λ_k loses
        # nothing and bounds what each shard enumerates.
        return MergePlan(HEAP_MERGE, replace(query, name=""))
    return MergePlan(UNION, replace(query, name=""))


# ---------------------------------------------------------------------------
# merge-aggregate
# ---------------------------------------------------------------------------
def combine_component(function: str, left: Any, right: Any) -> Any:
    """Fold one γ component across two shards (None = no input rows)."""
    if left is None:
        return right
    if right is None:
        return left
    if function in ("sum", "count"):
        return left + right
    if function == "min":
        return min(left, right)
    if function == "max":
        return max(left, right)
    raise ValueError(f"unknown aggregation function {function!r}")


def finalise_spec(
    spec: AggregateSpec, components: Sequence[Component], state: Sequence[Any]
) -> Any:
    """One aggregate's final value from a merged component state."""
    functions = list(components)
    if spec.function == "avg":
        total = state[functions.index(("sum", spec.attribute))]
        count = state[functions.index(("count", None))]
        if not count:
            return None  # SQL: AVG over zero rows is NULL
        return total / count
    if spec.function == "count":
        return state[functions.index(("count", None))] or 0
    return state[functions.index((spec.function, spec.attribute))]


def merge_aggregates(
    query: Query,
    components: Sequence[Component],
    shard_results: Iterable[Relation],
) -> Relation:
    """Combine per-shard partial group tables into the final relation."""
    width = len(query.group_by)
    merged: dict[tuple, list[Any]] = {}
    for relation in shard_results:
        for row in relation.rows:
            key, values = row[:width], row[width:]
            state = merged.get(key)
            if state is None:
                merged[key] = list(values)
                continue
            for index, (function, _) in enumerate(components):
                state[index] = combine_component(
                    function, state[index], values[index]
                )
    if not query.group_by and not merged:
        # No shard produced a row (e.g. zero shards): synthesise the
        # SQL single-row shape for ungrouped aggregates over ∅.
        merged[()] = list(empty_aggregate_components(components))
    schema = query.output_schema
    rows: list[tuple] = []
    for key in sorted(merged):  # deterministic, like sorted-union output
        state = merged[key]
        row = key + tuple(
            finalise_spec(spec, components, state)
            for spec in query.aggregates
        )
        rows.append(row)
    if query.having:
        positions = {name: index for index, name in enumerate(schema)}
        rows = [
            row
            for row in rows
            if all(
                row[positions[condition.target]] is not None
                and condition.test(row[positions[condition.target]])
                for condition in query.having
            )
        ]
    if query.order_by:
        rows = sort_rows(rows, schema, query.order_by)
    if query.limit is not None:
        rows = rows[: query.limit]
    return Relation(schema, rows, name=query.name or "result")


# ---------------------------------------------------------------------------
# heap-merge and union
# ---------------------------------------------------------------------------
class _Directed:
    """Comparison wrapper reversing the order for descending sort keys."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_Directed") -> bool:
        if self.descending:
            return other.value < self.value
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Directed) and self.value == other.value


def heap_merge(
    query: Query,
    schema: Sequence[str],
    shard_streams: Sequence[Iterable[tuple]],
) -> list[tuple]:
    """K-way merge of per-shard sorted streams, deduplicated + limited.

    Consumes the streams lazily: with a limit, at most ``k`` rows per
    shard are pulled (plus duplicates), so full shard outputs are never
    materialised.
    """
    keys = normalise_order(query.order_by)
    schema = list(schema)
    slots = [(schema.index(key.attribute), key.descending) for key in keys]

    def sort_key(row: tuple) -> tuple:
        return tuple(
            _Directed(row[position], descending)
            for position, descending in slots
        )

    seen: set[tuple] = set()
    out: list[tuple] = []
    for row in heapq.merge(*shard_streams, key=sort_key):
        if row in seen:
            continue  # shards can duplicate projected rows
        seen.add(row)
        out.append(row)
        if query.limit is not None and len(out) >= query.limit:
            break
    return out


def union_rows(
    query: Query, shard_results: Iterable[Relation]
) -> list[tuple]:
    """Deduplicated concatenation of unordered shard outputs."""
    seen: set[tuple] = set()
    out: list[tuple] = []
    for relation in shard_results:
        for row in relation.rows:
            if row in seen:
                continue
            seen.add(row)
            out.append(row)
            if query.limit is not None and len(out) >= query.limit:
                return out
    return out
