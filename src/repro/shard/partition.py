"""Deterministic hash partitioning of relations into shards.

The §3.2 aggregate decomposition — partial results combine across
independent parts — applies to *horizontal* partitions of the data
just as it does to f-tree branches, so a relation split into disjoint
row sets can be aggregated shard-by-shard and merged.  This module
provides the partitioning half: a stable hash (``zlib.crc32`` over the
``repr`` of the key value, immune to ``PYTHONHASHSEED`` randomisation,
so parent and worker processes always agree on ownership) and helpers
to split a relation and to pick a partition key.

The partition key matters for *representation*, not correctness: any
key yields disjoint shards whose union is the input, but partitioning
a factorised view on the **root attribute of its f-tree** keeps every
shard a union of whole root subtrees, so the view's f-tree remains
valid on each shard and per-shard factorisations stay as succinct as
the original.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.database import Database


def shard_of(value: Any, shards: int) -> int:
    """Owning shard of one partition-key value.

    Stable across processes and runs: routing decisions made by the
    parent (e.g. for forwarded deltas) match the placement the workers
    observed when the shards were built.
    """
    if shards <= 1:
        return 0
    return zlib.crc32(repr(value).encode("utf-8")) % shards


def partition_rows(
    rows: Iterable[tuple], position: int, shards: int
) -> list[list[tuple]]:
    """Split rows into ``shards`` disjoint buckets by the key column."""
    buckets: list[list[tuple]] = [[] for _ in range(shards)]
    for row in rows:
        buckets[shard_of(row[position], shards)].append(row)
    return buckets


def partition_relation(
    relation: Relation, key: str, shards: int
) -> list[Relation]:
    """Hash-partition a relation on ``key`` into ``shards`` relations."""
    position = relation.position(key)
    return [
        Relation(relation.schema, bucket, name=relation.name)
        for bucket in partition_rows(relation.rows, position, shards)
    ]


def choose_partition_key(
    database: "Database", name: str, preferred: str | None = None
) -> str:
    """Partition attribute for a view.

    The ``preferred`` name wins when it is in the schema; otherwise the
    root attribute of the view's registered factorisation (see the
    module docstring), falling back to the first schema attribute.
    """
    schema = database.schema(name)
    if preferred and preferred in schema:
        return preferred
    fact = database.get_factorised(name)
    if fact is not None and fact.ftree.roots:
        root = fact.ftree.roots[0]
        if root.aggregate is None and root.attributes:
            return root.attributes[0]
    return schema[0]


def balance(counts: Sequence[int]) -> float:
    """Largest-shard share of the total rows (1/N is perfect balance)."""
    total = sum(counts)
    if not total:
        return 0.0
    return max(counts) / total
