"""The sharded parallel engine, registered as ``fdb-parallel``.

One query runs as N independent FDB evaluations — one per shard of a
:class:`repro.shard.store.ShardStore` — whose results combine through
the merge layer of :mod:`repro.shard.merge`: partial aggregate states
add/fold per group, ordered enumerations heap-merge, unordered output
unions.  Shard evaluations run concurrently via ``concurrent.futures``
(a forked process pool where the platform allows, threads otherwise),
with a deterministic sequential fallback for one shard or ``workers=0``.

Process workers inherit the shard store by ``fork`` through a module
registry (:data:`_FORK_REGISTRY`) — queries and result rows cross the
process boundary, the partitioned data never does.  Any mutation bumps
the store's generation and retires the forked snapshot, so a stale
worker can never serve a query.

Multi-relation (join) queries are not sharded yet: they fall back to a
single sequential FDB run over the source database, which keeps the
engine answer-complete for the whole query class.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.api.engines import Engine, EngineRun
from repro.core.engine import FDBCompiled, FDBEngine
from repro.obs import clock, spans
from repro.obs.metrics import metrics, snapshot_diff
from repro.obs.state import STATE
from repro.query import Query
from repro.relational.relation import Relation
from repro.shard.merge import (
    HEAP_MERGE,
    MERGE_AGGREGATE,
    MergePlan,
    heap_merge,
    merge_aggregates,
    plan_shards,
    union_rows,
)
from repro.shard.store import ShardStore

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.database import Database

#: Stores visible to forked workers, by token.  Registered *before* the
#: pool forks, so every worker's memory snapshot contains its store;
#: never overwritten, so a late-forking worker of an older pool still
#: resolves its own token correctly.
_FORK_REGISTRY: dict[int, ShardStore] = {}
_TOKENS = itertools.count(1)

#: Per-shard evaluation wall time by execution mode.  The fixed bucket
#: bounds (class-level, see repro.obs.metrics.BUCKETS) make the fork
#: workers' observations merge exactly into the parent registry.
_SHARD_SECONDS = metrics().histogram(
    "repro_shard_run_seconds",
    "Per-shard evaluation wall time.",
    ("mode",),
)
_SHARD_FORK = _SHARD_SECONDS.labels("fork")
_SHARD_LOCAL = _SHARD_SECONDS.labels("local")


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _warm_up(_: int) -> None:
    """No-op task used to fork every worker eagerly at pool creation."""


def _evaluate_shard(
    token: int,
    index: int,
    query: Query,
    optimizer: str,
    compiled: "FDBCompiled | None" = None,
    span_context: "spans.SpanContext | None" = None,
) -> tuple[tuple[str, ...], list[tuple], str, "dict | None", "dict | None"]:
    """Run one shard's query in a forked worker; rows travel back.

    ``compiled`` carries the shard's prepared f-plan across the process
    boundary (stripped of its explain payload), so re-runs of a
    prepared query skip optimisation inside every worker too.
    ``span_context`` is the parent's pickled span identity: the worker
    records a ``shard.run`` span under it and returns the span as a
    dict (durations only — perf_counter timestamps do not compare
    across processes) plus a metrics *delta* of this task.  The delta
    is a before/after snapshot diff, so repeated tasks in a long-lived
    worker are never double-counted on merge.
    """
    store = _FORK_REGISTRY[token]
    engine = FDBEngine(optimizer=optimizer)
    before = metrics().snapshot() if STATE.enabled else None
    with spans.remote_root(
        "shard.run", span_context, shard=index, mode="fork"
    ) as shard_span:
        started = clock.now()
        if compiled is not None:
            result, _, _ = engine.execute_planned(
                compiled, query, store.databases[index]
            )
        else:
            result, _, _ = engine.execute_traced(query, store.databases[index])
        _SHARD_FORK.observe(clock.now() - started)
    payload = shard_span.to_dict() if shard_span is not None else None
    delta = (
        snapshot_diff(metrics().snapshot(), before)
        if before is not None
        else None
    )
    return tuple(result.schema), result.rows, result.name, payload, delta


@dataclass
class ShardedPlan:
    """The sharded backend's retained plan.

    The merge strategy is fixed once by the query structure;
    ``shard_plans`` holds one compiled FDB plan per shard — shards
    usually share one f-tree shape, but a shard whose slice fell back
    to its path factorisation plans independently.  ``store_ref`` (a
    weak reference, so a parked plan never pins a retired store's
    partitioned data) and ``rebuilds`` stamp the shard store the plans
    were compiled against: a store rebuild or shard-local
    re-factorisation triggers a (schema-only, cheap) recompile on the
    next run.
    """

    query: "Query | None" = None  # unbound source query (for re-planning)
    fallback: "str | None" = None
    inner: "FDBCompiled | None" = None  # sequential-fallback plan
    shard_query: "Query | None" = None  # unbound per-shard query
    shard_plans: tuple = ()
    store_ref: "weakref.ref[ShardStore] | None" = None
    rebuilds: int = 0

    def adopt(self, other: "ShardedPlan") -> None:
        """Replace this plan's decisions with ``other``'s, in place.

        Used when the retained fallback-vs-sharded decision no longer
        matches the current store: the artifact may be parked in a
        session plan cache, so it is repaired rather than replaced.
        """
        self.fallback = other.fallback
        self.inner = other.inner
        self.shard_query = other.shard_query
        self.shard_plans = other.shard_plans
        self.store_ref = other.store_ref
        self.rebuilds = other.rebuilds


class ShardedFDBBackend(Engine):
    """Hash-partitioned parallel FDB evaluation with merge aggregation.

    Parameters
    ----------
    shards:
        number of horizontal partitions (default 4);
    workers:
        concurrent shard evaluations — ``None`` picks
        ``min(shards, cpu_count)``, ``0`` forces the deterministic
        sequential path;
    key:
        partition attribute override (used where it appears in a view's
        schema; the default picks each view's f-tree root attribute);
    optimizer:
        forwarded to the per-shard :class:`~repro.core.engine.FDBEngine`.
    """

    def __init__(
        self,
        shards: int = 4,
        workers: int | None = None,
        key: str | None = None,
        optimizer: str = "cost",
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be at least 1, got {shards}")
        if workers is None:
            workers = min(shards, os.cpu_count() or 1)
        if workers < 0:
            raise ValueError(f"worker count must be non-negative, got {workers}")
        self.shards = shards
        self.workers = workers
        self.key = key
        self.optimizer = optimizer
        # Cost-based plans depend on live statistics, so the prepared
        # query fingerprint must include the stats-cache epochs.
        self.stats_sensitive = optimizer == "cost"
        self.name = f"FDB∥{shards}"
        self._inner = FDBEngine(optimizer=optimizer)
        self._store: ShardStore | None = None
        self._database: "Database | None" = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_tag: tuple[int, int] | None = None
        self._pool_token: int | None = None

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def prepare(self, database: "Database") -> None:
        """Partition the database and build per-shard factorisations."""
        self._retire_pool()
        self._store = ShardStore(
            database, self.shards, key=self.key, workers=self.workers
        )
        self._database = database

    def forward(self, records, database: "Database") -> bool:
        """Route logged row deltas to their owning shards."""
        if self._store is None or self._database is not database:
            return False
        return self._store.forward(records)

    def close(self) -> None:
        """Shut down the worker pool and drop the shard store."""
        self._retire_pool()
        self._store = None
        self._database = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self._retire_pool()
        except Exception:
            pass

    def run(self, query: Query, database: "Database") -> EngineRun:
        store = self._ensure_store(database)
        if self._fallback_reason(query, store) is not None:
            result, plan, trace = self._inner.execute_traced(query, database)
            return EngineRun(relation=result, plan=plan, trace=trace)
        plan = plan_shards(query)
        shard_results = self._map_shards(plan.shard_query, store)
        with spans.span("merge", strategy=plan.strategy):
            merged = self._merge(query, plan, shard_results)
        return EngineRun(relation=merged)

    # ------------------------------------------------------------------
    # Two-phase lifecycle
    # ------------------------------------------------------------------
    def plan(self, query: Query, database: "Database") -> ShardedPlan:
        """Choose the merge strategy and compile one plan per shard."""
        store = self._ensure_store(database)
        reason = self._fallback_reason(query, store)
        if reason is not None:
            return ShardedPlan(
                query=query,
                fallback=reason,
                inner=self._inner.compile(query, database),
            )
        merge = plan_shards(query)
        artifact = ShardedPlan(query=query, shard_query=merge.shard_query)
        self._compile_shards(artifact, store)
        return artifact

    def _compile_shards(self, artifact: ShardedPlan, store: ShardStore) -> None:
        """(Re)compile the per-shard plans against the current store.

        Compilation is schema-level only, so this is cheap; it re-runs
        when the store was rebuilt or a shard slice re-factorised onto
        a different f-tree (tracked by ``store.local_rebuilds``).
        """
        assert artifact.shard_query is not None
        if self._inner.optimizer_name == "cost":
            self._merge_shard_stats(artifact.shard_query, store)
        artifact.shard_plans = tuple(
            self._inner.compile(artifact.shard_query, shard_db)
            for shard_db in store.databases
        )
        artifact.store_ref = weakref.ref(store)
        artifact.rebuilds = store.local_rebuilds

    @staticmethod
    def _merge_shard_stats(shard_query: Query, store: ShardStore) -> None:
        """Prime every shard's stats cache with merged global estimates.

        Each shard only sees its own slice of the data, so its local
        statistics under-estimate distinct counts and cardinalities.
        Cost-based planning should pick the same f-tree on every shard,
        and it should reflect the *global* data distribution — so the
        per-shard seeds are merged and pushed back into the cache for
        each shard database before compiling.
        """
        from repro.stats import merge_relation_stats, stats_cache

        cache = stats_cache()
        for name in shard_query.relations:
            parts = []
            for shard_db in store.databases:
                record = cache.relation_stats(shard_db, name)
                if record is not None:
                    parts.append(record)
            if not parts:
                continue
            merged = merge_relation_stats(parts)
            for shard_db in store.databases:
                cache.prime(shard_db, {name: merged})

    def run_planned(
        self, artifact, query: Query, database: "Database", params=None
    ) -> EngineRun:
        if not isinstance(artifact, ShardedPlan):
            return self.run(query, database)
        store = self._ensure_store(database)
        reason = self._fallback_reason(query, store)
        if (reason is not None) != (artifact.fallback is not None):
            # The partitioning no longer matches the retained decision
            # (e.g. a re-partitioned store): re-plan and repair the
            # artifact in place — it may be parked in a plan cache, and
            # bailing to one-shot execution would degrade it forever.
            if artifact.query is None:
                return self.run(query, database)
            artifact.adopt(self.plan(artifact.query, database))
        if artifact.fallback is not None:
            assert artifact.inner is not None
            result, plan, trace = self._inner.execute_planned(
                artifact.inner, query, database
            )
            return EngineRun(relation=result, plan=plan, trace=trace)
        planned_store = (
            artifact.store_ref() if artifact.store_ref is not None else None
        )
        if planned_store is not store or artifact.rebuilds != store.local_rebuilds:
            self._compile_shards(artifact, store)
        # Re-derive the *bound* shard query; the strategy is structural
        # and identical to the retained one.
        merge = plan_shards(query)
        shard_results = self._map_shards(
            merge.shard_query, store, compiled=artifact.shard_plans
        )
        with spans.span("merge", strategy=merge.strategy):
            merged = self._merge(query, merge, shard_results)
        return EngineRun(relation=merged)

    def explain(self, query: Query, database: "Database") -> str:
        store = self._ensure_store(database)
        lines = [f"query: {query}"]
        reason = self._fallback_reason(query, store)
        if reason is not None:
            lines.append(
                f"{self.name}: sequential FDB fallback ({reason})"
            )
            lines.append(self._inner.explain(query, database))
            return "\n".join(lines)
        plan = plan_shards(query)
        primary = query.relations[0]
        lines.append(
            f"{self.name}: {store.shards} shard(s), workers={self.workers} "
            f"({self._executor_label()})"
        )
        lines.append(
            f"partition: {primary} on {store.keys[primary]!r}, "
            f"rows per shard {store.counts[primary]}"
        )
        lines.append(f"merge: {plan.describe()}")
        if store.splices or store.local_rebuilds:
            lines.append(
                f"maintenance: {store.splices} shard splice(s), "
                f"{store.local_rebuilds} shard-local rebuild(s)"
            )
        lines.append("per-shard plan (shard 0):")
        inner = self._inner.explain(plan.shard_query, store.databases[0])
        lines.extend("  " + line for line in inner.splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Shard evaluation
    # ------------------------------------------------------------------
    def _ensure_store(self, database: "Database") -> ShardStore:
        if self._store is None or self._database is not database:
            self.prepare(database)
        assert self._store is not None
        return self._store

    def _fallback_reason(
        self, query: Query, store: ShardStore
    ) -> str | None:
        """Why this query runs sequentially on the source database.

        Joins are not sharded yet, and an ordered enumeration whose
        sort keys are projected away cannot heap-merge (the merged
        streams no longer carry the keys).  Both run through the inner
        FDB engine instead, keeping the backend answer-complete.
        """
        if len(query.relations) != 1 or query.relations[0] not in store.keys:
            return "joins are not sharded"
        if (
            query.order_by
            and not query.aggregates
            and query.projection is not None
        ):
            visible = set(query.projection)
            visible.update(column.alias for column in query.computed)
            if any(
                key.attribute not in visible for key in query.order_by
            ):
                return "order keys are projected away"
        return None

    def _executor_label(self) -> str:
        if self.workers <= 1 or self.shards == 1:
            return "sequential"
        return "process pool" if _fork_available() else "thread pool"

    def _run_local(
        self,
        store: ShardStore,
        index: int,
        query: Query,
        compiled: "FDBCompiled | None" = None,
    ) -> Relation:
        if compiled is not None:
            result, _, _ = self._inner.execute_planned(
                compiled, query, store.databases[index]
            )
        else:
            result, _, _ = self._inner.execute_traced(
                query, store.databases[index]
            )
        assert isinstance(result, Relation)
        return result

    def _timed_local(
        self,
        store: ShardStore,
        index: int,
        query: Query,
        compiled: "FDBCompiled | None",
        mode: str,
    ) -> Relation:
        """One in-process shard evaluation inside its ``shard.run`` span."""
        with spans.span("shard.run", shard=index, mode=mode):
            started = clock.now()
            result = self._run_local(store, index, query, compiled)
            _SHARD_LOCAL.observe(clock.now() - started)
        return result

    def _map_shards(
        self,
        query: Query,
        store: ShardStore,
        compiled: "Sequence[FDBCompiled] | None" = None,
    ) -> list[Relation]:
        indices = range(store.shards)
        plans: "Sequence[FDBCompiled | None]" = (
            compiled if compiled is not None else [None] * store.shards
        )
        if self.workers <= 1 or store.shards == 1:
            return [
                self._timed_local(store, i, query, plans[i], "sequential")
                for i in indices
            ]
        if _fork_available():
            pool, token = self._ensure_pool(store)
            parent = spans.current_span()
            context = spans.span_context()
            futures = [
                pool.submit(
                    _evaluate_shard,
                    token,
                    i,
                    query,
                    self.optimizer,
                    plans[i].lite() if plans[i] is not None else None,
                    context,
                )
                for i in indices
            ]
            results: list[Relation] = []
            for future in futures:
                schema, rows, name, span_payload, delta = future.result()
                if span_payload is not None and parent is not None:
                    # Re-parent the worker's span under this process's
                    # engine.run span (durations survive, timestamps
                    # never crossed the boundary).
                    parent.adopt(span_payload)
                if delta:
                    metrics().merge(delta)
                results.append(Relation(schema, rows, name=name))
            return results
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            # execute_traced/execute_planned are stateless, so one
            # engine serves all threads; the GIL serialises the work
            # but keeps semantics.  Each task runs under its own copy
            # of the context (thread executors do not propagate
            # contextvars), so shard.run spans attach to this thread's
            # current span.
            futures = [
                pool.submit(
                    contextvars.copy_context().run,
                    self._timed_local,
                    store,
                    i,
                    query,
                    plans[i],
                    "thread",
                )
                for i in indices
            ]
            return [f.result() for f in futures]

    def _merge(
        self, query: Query, plan: MergePlan, results: Sequence[Relation]
    ) -> Relation:
        if plan.strategy == MERGE_AGGREGATE:
            return merge_aggregates(query, plan.components, results)
        schema = results[0].schema
        if plan.strategy == HEAP_MERGE:
            rows = heap_merge(query, schema, [r.rows for r in results])
        else:
            rows = union_rows(query, results)
        return Relation(schema, rows, name=query.name or "result")

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(
        self, store: ShardStore
    ) -> tuple[ProcessPoolExecutor, int]:
        import multiprocessing

        tag = (id(store), store.generation)
        if self._pool is not None and self._pool_tag == tag:
            assert self._pool_token is not None
            return self._pool, self._pool_token
        self._retire_pool()
        token = next(_TOKENS)
        _FORK_REGISTRY[token] = store
        context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )
        # Fork every worker now, while the registry snapshot is current.
        list(pool.map(_warm_up, range(self.workers)))
        self._pool, self._pool_tag, self._pool_token = pool, tag, token
        return pool, token

    def _retire_pool(self) -> None:
        if self._pool is not None:
            # Blocking shutdown: queries are already drained, and a
            # non-waiting shutdown races the interpreter's atexit hook
            # over the pool's wakeup pipe.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._pool_token is not None:
            _FORK_REGISTRY.pop(self._pool_token, None)
            self._pool_token = None
        self._pool_tag = None

    def __repr__(self) -> str:
        return (
            f"ShardedFDBBackend(shards={self.shards}, "
            f"workers={self.workers}, key={self.key!r})"
        )
