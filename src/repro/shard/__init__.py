"""Sharded parallel execution: hash partitioning plus merge aggregation.

The §3.2 decomposition of aggregates — partial results combining across
independent parts — applied to *horizontal* partitions of the data:

- :mod:`repro.shard.partition` — deterministic hash partitioning;
- :mod:`repro.shard.store` — per-shard databases with per-shard
  factorisations, kept fresh by routed deltas;
- :mod:`repro.shard.merge` — merge strategies (partial-state
  aggregation, k-way heap merge, deduplicated union);
- :mod:`repro.shard.engine` — the ``fdb-parallel`` backend.

Use it through the session API::

    session = connect(db, engine="fdb-parallel", shards=4, workers=4)
"""

from repro.shard.engine import ShardedFDBBackend
from repro.shard.merge import MergePlan, plan_shards
from repro.shard.partition import (
    choose_partition_key,
    partition_relation,
    shard_of,
)
from repro.shard.store import ShardStore

__all__ = [
    "MergePlan",
    "ShardStore",
    "ShardedFDBBackend",
    "choose_partition_key",
    "partition_relation",
    "plan_shards",
    "shard_of",
]
