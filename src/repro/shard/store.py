"""Per-shard copies of a database, kept fresh under deltas.

A :class:`ShardStore` hash-partitions every view of a database into N
disjoint shard databases.  Views registered with a factorisation get a
*per-shard* factorisation (built concurrently when workers allow, see
:func:`build_shard_factorisations`), so shard queries run on prepared
representations exactly like the unsharded FDB path does — the paper's
read-optimised scenario, horizontally partitioned.

Stores stay consistent under mutation without rebuilding: the engine
forwards the database's logged row deltas here, and :meth:`forward`
routes each row to its owning shard by the partition key, updating the
shard's flat rows and splicing its factorisation directly (the same
``direct_insert``/``direct_delete`` machinery the IVM subsystem uses).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.build import factorise
from repro.core.frep import ColumnarFactorisation
from repro.database import Database, _path_fallback_tree
from repro.relational.relation import Relation
from repro.shard.partition import choose_partition_key, partition_relation, shard_of

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.frep import Factorisation
    from repro.core.ftree import FTree
    from repro.database import LogRecord


def _layout_of(fact: "Factorisation | None") -> str:
    """The union layout a registered view was stored in."""
    return "columnar" if isinstance(fact, ColumnarFactorisation) else "legacy"


def refactorise_shard(
    relation: Relation, ftree: "FTree", layout: str = "legacy"
) -> "Factorisation":
    """Factorise one shard slice over the view's f-tree.

    Partitioning on the root attribute preserves the tree's join
    dependencies (each shard is a union of whole root subtrees), but a
    caller-chosen key may not: when the slice no longer satisfies the
    dependencies, fall back to the always-valid path f-tree — keeping
    the dependency keys so delta routing continues to work.  ``layout``
    matches the source view's representation, so columnar views shard
    into columnar slices (whose flat arrays also pickle across the fork
    boundary far cheaper than ``FRNode`` object trees).
    """
    fact = factorise(relation, ftree, layout=layout)
    if fact.tuple_count() == len(set(relation.rows)):
        return fact
    return factorise(relation, _path_fallback_tree(ftree), layout=layout)


def build_shard_factorisations(
    jobs: Sequence[tuple[Relation, "FTree", str]], workers: int
) -> list["Factorisation"]:
    """One factorisation per (shard slice, f-tree, layout) job.

    With ``workers > 1`` the builds run concurrently through
    ``concurrent.futures`` (a process pool when the platform forks,
    else threads); ``workers <= 1`` is the deterministic sequential
    fallback.
    """
    if workers <= 1 or len(jobs) <= 1:
        return [
            refactorise_shard(relation, ftree, layout)
            for relation, ftree, layout in jobs
        ]
    with _build_pool(min(workers, len(jobs))) as pool:
        futures = [
            pool.submit(refactorise_shard, relation, ftree, layout)
            for relation, ftree, layout in jobs
        ]
        return [future.result() for future in futures]


def _build_pool(workers: int) -> Executor:
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)
    return ThreadPoolExecutor(max_workers=workers)


class ShardStore:
    """N disjoint shard databases covering one source database.

    Attributes
    ----------
    databases:
        one :class:`repro.database.Database` per shard;
    keys:
        partition attribute per view name;
    counts:
        rows per shard per view name (surfaced by ``explain``);
    generation:
        bumped on every forwarded delta — executors fork a snapshot of
        the store, so a generation change invalidates worker pools.
    """

    def __init__(
        self,
        database: Database,
        shards: int,
        key: str | None = None,
        workers: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be at least 1, got {shards}")
        self.shards = shards
        self.generation = 0
        self.splices = 0
        self.local_rebuilds = 0
        self.keys: dict[str, str] = {}
        self.counts: dict[str, list[int]] = {}
        self.databases: list[Database] = [Database() for _ in range(shards)]
        jobs: list[tuple[int, str, Relation, "FTree", str]] = []
        for name in database.names():
            partition_key = choose_partition_key(database, name, key)
            self.keys[name] = partition_key
            parts = partition_relation(database.flat(name), partition_key, shards)
            self.counts[name] = [len(part.rows) for part in parts]
            registered = database.get_factorised(name)
            layout = _layout_of(registered)
            for index, part in enumerate(parts):
                self.databases[index].add_relation(part, name=name)
                if registered is not None:
                    jobs.append((index, name, part, registered.ftree, layout))
        built = build_shard_factorisations(
            [(part, ftree, layout) for _, _, part, ftree, layout in jobs],
            workers,
        )
        for (index, name, _, _, _), fact in zip(jobs, built):
            self.databases[index].add_factorised(name, fact)

    # ------------------------------------------------------------------
    # Delta forwarding
    # ------------------------------------------------------------------
    def forward(self, records: Iterable["LogRecord"]) -> bool:
        """Route logged row deltas to their owning shards.

        Mirrors the sqlite backend's replay contract: registrations and
        rebuilt views are not expressible as row deltas and return
        False, telling the caller to rebuild the whole store.  Row
        deltas always succeed — each row reaches exactly the shard
        owning its partition-key value, where the factorisation is
        spliced directly when the f-tree allows, and *that one shard's*
        copy of the view is re-factorised from its (already updated)
        flat rows when it does not.  Maintenance work therefore stays
        local to the owning shard either way.
        """
        records = list(records)
        for record in records:
            if record.kind == "register":
                return False
            if record.relation not in self.keys:
                return False
            for delta in record.view_deltas.values():
                if delta.rebuilt or delta.name not in self.keys:
                    return False
        for record in records:
            insert = record.kind == "insert"
            self._apply(record.relation, record.columns, record.rows, insert)
            for delta in record.view_deltas.values():
                if delta.name == record.relation:
                    continue  # the base replay above already covered it
                self._apply(delta.name, delta.schema, delta.added, True)
                self._apply(delta.name, delta.schema, delta.removed, False)
        self.generation += 1
        return True

    def _apply(
        self,
        name: str,
        columns: Sequence[str],
        rows: Sequence[tuple],
        insert: bool,
    ) -> None:
        from repro.ivm.delta import DeltaError
        from repro.ivm.maintain import (
            IndependenceViolation,
            _Splice,
            direct_delete,
            direct_insert,
        )

        if not rows:
            return
        columns = list(columns)
        key_position = columns.index(self.keys[name])
        routed: dict[int, list[tuple]] = {}
        for row in rows:
            owner = shard_of(row[key_position], self.shards)
            routed.setdefault(owner, []).append(row)
        for index, bucket in routed.items():
            shard_db = self.databases[index]
            relation = shard_db.relations[name]
            positions = [columns.index(a) for a in relation.schema]
            ordered = [tuple(row[p] for p in positions) for row in bucket]
            if insert:
                present = set(relation.rows)
                ordered = [row for row in ordered if row not in present]
                # repro: allow[cow-mutation] -- shard-slice relations
                # are owned solely by this store (never published to
                # snapshot readers); in-place routing is the delta
                # fast path.
                relation.rows.extend(ordered)
            else:
                doomed = set(ordered)
                ordered = [row for row in relation.rows if row in doomed]
                # repro: allow[cow-mutation] -- same: store-private slice.
                relation.rows = [
                    row for row in relation.rows if row not in doomed
                ]
            self.counts[name][index] = len(relation.rows)
            fact = shard_db.factorised.get(name)
            if fact is None or not ordered:
                continue
            splice = _Splice()
            try:
                if insert:
                    fact = direct_insert(fact, ordered, relation.schema, splice)
                else:
                    fact = direct_delete(fact, ordered, relation.schema, splice)
                self.splices += 1
            except (IndependenceViolation, DeltaError):
                # The direct splice would break the f-tree's independence
                # assumptions (e.g. a one-row insert cross-multiplying
                # sibling branches): re-factorise this one shard's slice
                # of the view from its updated flat rows.
                fact = refactorise_shard(
                    relation, fact.ftree, _layout_of(fact)
                )
                self.local_rebuilds += 1
            shard_db.factorised[name] = fact

    def __repr__(self) -> str:
        views = ", ".join(
            f"{name}@{key}" for name, key in sorted(self.keys.items())
        )
        return f"ShardStore(shards={self.shards}, views=[{views}])"
