"""A named collection of flat relations and factorised materialised views.

The paper's read-optimised scenario stores materialised views as
factorisations and evaluates subsequent queries directly on them
(Section 1).  A :class:`Database` therefore holds two catalogues:

- ``relations`` — flat :class:`repro.relational.relation.Relation`s,
  the input representation for the relational engines; and
- ``factorised`` — factorised views (:class:`repro.core.frep.Factorisation`),
  the input representation for FDB.

Either engine falls back to the other representation when asked for a
view it only has in the other form (FDB factorises flat input on the
fly; RDB flattens factorised input), so the same workload can be run
against every engine regardless of which representation was registered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.frep import Factorisation


class UnknownRelationError(KeyError):
    """Raised when a query references a name the database does not hold."""


class Database:
    """Catalogue of flat relations and factorised views, by name."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self.relations: dict[str, Relation] = {}
        self.factorised: dict[str, "Factorisation"] = {}
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation, name: str = "") -> None:
        """Register a flat relation (name defaults to ``relation.name``)."""
        self.relations[name or relation.name] = relation

    def add_factorised(self, name: str, factorisation: "Factorisation") -> None:
        """Register a factorised materialised view."""
        self.factorised[name] = factorisation

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.relations or name in self.factorised

    def flat(self, name: str) -> Relation:
        """The flat form of a view, flattening a factorisation if needed."""
        if name in self.relations:
            return self.relations[name]
        if name in self.factorised:
            flattened = self.factorised[name].to_relation()
            flattened.name = name
            return flattened
        raise UnknownRelationError(name)

    def get_factorised(self, name: str) -> "Factorisation | None":
        """The factorised form of a view if one was registered."""
        return self.factorised.get(name)

    def schema(self, name: str) -> tuple[str, ...]:
        """Attribute names of a view, whichever representation exists."""
        if name in self.relations:
            return self.relations[name].schema
        if name in self.factorised:
            return tuple(self.factorised[name].schema())
        raise UnknownRelationError(name)

    def names(self) -> list[str]:
        """All registered view names (flat and factorised, deduplicated)."""
        return sorted(set(self.relations) | set(self.factorised))
