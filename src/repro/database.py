"""A named collection of flat relations and factorised materialised views.

The paper's read-optimised scenario stores materialised views as
factorisations and evaluates subsequent queries directly on them
(Section 1).  A :class:`Database` therefore holds two catalogues:

- ``relations`` — flat :class:`repro.relational.relation.Relation`s,
  the input representation for the relational engines; and
- ``factorised`` — factorised views (:class:`repro.core.frep.Factorisation`),
  the input representation for FDB.

Either engine falls back to the other representation when asked for a
view it only has in the other form (FDB factorises flat input on the
fly; RDB flattens factorised input), so the same workload can be run
against every engine regardless of which representation was registered.

Databases are **mutable**: :meth:`insert`, :meth:`delete` and
:meth:`apply` change the catalogue in place and keep every registered
factorisation fresh through the delta-maintenance subsystem of
:mod:`repro.ivm` — routed splices where the f-tree's independence
assumptions allow, recorded rebuilds where they do not.  Every mutation
bumps :attr:`version` and appends to a bounded change log
(:meth:`changes_since`), which is how cached engine backends and live
views detect and forward changes.  The mutation API uses set semantics
(the paper's relations are sets): inserting an existing row is a no-op
and deleting a row removes every occurrence.

Databases are also **safe under concurrent readers and writers**.
Mutation is serialised by a single writer lock, every change applies
copy-on-write (flat relations are replaced, never extended in place;
factorised views were always persistent structures sharing unchanged
fragments), and each committed version is published atomically as an
immutable catalogue state.  :meth:`snapshot` pins one such state: a
:class:`Snapshot` is a read-only, version-frozen view of the catalogue
that stays consistent while writers keep appending — the MVCC primitive
the server mode (:mod:`repro.server`) builds sessions on.  Pinned
versions extend the change log's retention (up to a hard cap) so that
readers and cached backends can still replay the gap when they advance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.obs import clock
from repro.obs.metrics import metrics
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.frep import Factorisation
    from repro.ivm.delta import Delta, Deletion, Insertion
    from repro.ivm.maintain import ViewDelta

# Pre-bound instruments: the updates below run inside the writer lock
# or the log lock, so they must not allocate (linter: obs-allocation).
_IVM_EVENTS = metrics().counter(
    "repro_ivm_maintenance_total",
    "IVM view-maintenance outcomes: routed splice vs full rebuild.",
    ("outcome",),
)
_IVM_SPLICE = _IVM_EVENTS.labels("splice")
_IVM_REBUILD = _IVM_EVENTS.labels("rebuild")
_LOG_RECORDS = metrics().gauge(
    "repro_change_log_records", "Retained change-log records."
).labels()
_WRITER_WAIT = metrics().histogram(
    "repro_writer_lock_wait_seconds",
    "Time writers spent waiting for the single-writer lock.",
).labels()
_PINNED = metrics().gauge(
    "repro_pinned_snapshots", "Versions currently pinned by live snapshots."
).labels()
_STORE_BYTES = metrics().gauge(
    "repro_store_bytes",
    "Resident container bytes across registered factorised views.",
).labels()

#: Retained change-log length; older records force full re-preparation.
MAX_LOG = 512

#: Hard retention cap when snapshots pin old versions.  Beyond this the
#: log truncates anyway: pinned readers keep their (object-level
#: consistent) state but lose replayability — caches miss and backends
#: re-prepare instead of forwarding, which is graceful degradation.
MAX_PINNED_LOG = 8 * MAX_LOG


class UnknownRelationError(KeyError):
    """Raised when a query references a name the database does not hold."""


class SnapshotError(RuntimeError):
    """Raised for unavailable pin versions or writes through a snapshot."""


def _path_fallback_tree(ftree):
    """The path f-tree chaining ``ftree``'s nodes in pre-order.

    Attribute classes and dependency keys are preserved, so routed
    maintenance keeps working after a view falls back to its (always
    valid, less succinct) path factorisation.
    """
    from repro.core.ftree import FNode, FTree

    chained = None
    for node in reversed(list(ftree.nodes())):
        label = node.aggregate if node.aggregate is not None else node.attributes
        chained = FNode(
            label, (chained,) if chained is not None else (), node.keys
        )
    return FTree([chained])


@dataclass(frozen=True)
class LogRecord:
    """One applied change: the resolved base rows plus per-view deltas.

    ``kind`` is ``"insert"``/``"delete"`` for data changes and
    ``"register"`` for catalogue registrations (which cannot be
    forwarded as row deltas).  ``rows`` are the rows actually inserted
    or deleted after set-semantics normalisation, in ``columns`` order.
    """

    version: int
    kind: str
    relation: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple, ...] = ()
    view_deltas: "dict[str, ViewDelta]" = field(default_factory=dict)


@dataclass(frozen=True)
class ApplyReport:
    """Summary of one :meth:`Database.apply` call."""

    version: int
    inserted: int
    deleted: int
    records: tuple[LogRecord, ...] = ()

    @property
    def rebuilds(self) -> int:
        return sum(
            1
            for record in self.records
            for delta in record.view_deltas.values()
            if delta.rebuilt
        )

    def __str__(self) -> str:
        parts = [f"v{self.version}: +{self.inserted}/-{self.deleted} rows"]
        maintained = sorted(
            {
                name
                for record in self.records
                for name in record.view_deltas
            }
        )
        if maintained:
            parts.append(f"views maintained: {', '.join(maintained)}")
        if self.rebuilds:
            parts.append(f"{self.rebuilds} rebuilds")
        return "; ".join(parts)


@dataclass(frozen=True)
class _CatalogueState:
    """One committed version of the catalogue, published atomically.

    The dicts are shallow copies taken at commit time and treated as
    immutable from then on; the relation and factorisation objects they
    reference are never mutated after publication (mutation replaces
    them copy-on-write), so holding a state *is* holding a consistent
    version of the database.
    """

    version: int
    relations: "dict[str, Relation]"
    factorised: "dict[str, Factorisation]"
    stale_flat: frozenset


class Snapshot:
    """A read-only view of a :class:`Database` pinned at one version.

    Obtained from :meth:`Database.snapshot`.  A snapshot exposes the
    database's read surface (:meth:`flat`, :meth:`get_factorised`,
    :meth:`schema`, :meth:`names`, ``in``, :attr:`version`,
    :meth:`changes_since`) over the catalogue state that was current at
    the pinned version — concurrent writers never change what it
    observes.  Engines and sessions accept a snapshot wherever they
    accept a database, which is how the server mode gives every session
    snapshot isolation over one shared store.

    Snapshots hold a *pin* on their version: the change log retains the
    records a pinned reader may still replay (bounded by
    :data:`MAX_PINNED_LOG`), and per-version state stays available for
    sibling pins.  Call :meth:`release` (or use the snapshot as a
    context manager) when done; a released snapshot keeps serving
    reads — only its retention claim is dropped.
    """

    __slots__ = ("database", "_state", "_flat_cache", "_released", "__weakref__")

    def __init__(self, database: "Database", state: _CatalogueState) -> None:
        self.database = database
        self._state = state
        self._flat_cache: dict[str, Relation] = {}
        self._released = False

    # ------------------------------------------------------------------
    # Read surface (mirrors Database)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The pinned version: every read observes exactly this state."""
        return self._state.version

    @property
    def relations(self) -> "dict[str, Relation]":
        """The pinned flat catalogue (treat as read-only)."""
        return self._state.relations

    @property
    def factorised(self) -> "dict[str, Factorisation]":
        """The pinned factorised catalogue (treat as read-only)."""
        return self._state.factorised

    @property
    def maintenance(self):
        """The live database's maintenance counters (not versioned)."""
        return self.database.maintenance

    def __contains__(self, name: str) -> bool:
        return name in self._state.relations or name in self._state.factorised

    def names(self) -> list[str]:
        state = self._state
        return sorted(set(state.relations) | set(state.factorised))

    def schema(self, name: str) -> tuple[str, ...]:
        state = self._state
        if name in state.relations:
            return state.relations[name].schema
        if name in state.factorised:
            return tuple(state.factorised[name].schema())
        raise UnknownRelationError(name)

    def get_factorised(self, name: str) -> "Factorisation | None":
        return self._state.factorised.get(name)

    def flat(self, name: str) -> Relation:
        """The flat form at the pinned version.

        Views whose flat copy was stale at commit time (or that only
        exist factorised) are flattened from the pinned factorisation
        and memoised on the snapshot — never written back into the
        shared catalogue.
        """
        cached = self._flat_cache.get(name)
        if cached is not None:
            return cached
        state = self._state
        if name in state.stale_flat and name in state.factorised:
            stale = state.relations.get(name)
            refreshed = state.factorised[name].to_relation()
            if stale is not None and set(stale.schema) == set(refreshed.schema):
                refreshed = refreshed.project(stale.schema, dedup=False)
            refreshed.name = name
            self._flat_cache[name] = refreshed
            return refreshed
        if name in state.relations:
            return state.relations[name]
        if name in state.factorised:
            flattened = state.factorised[name].to_relation()
            flattened.name = name
            self._flat_cache[name] = flattened
            return flattened
        raise UnknownRelationError(name)

    def changes_since(self, version: int) -> "list[LogRecord] | None":
        """Replayable records in ``(version, pinned]``, or None if truncated."""
        if version >= self._state.version:
            return []
        records = self.database.changes_since(version)
        if records is None:
            return None
        pin = self._state.version
        return [record for record in records if record.version <= pin]

    def snapshot(self, version: "int | None" = None) -> "Snapshot":
        """A sibling pin (same version unless another retained one is named)."""
        return self.database.snapshot(
            self._state.version if version is None else version
        )

    # ------------------------------------------------------------------
    # Writes are rejected loudly
    # ------------------------------------------------------------------
    def _read_only(self, *_args, **_kwargs):
        raise SnapshotError(
            "snapshots are read-only; apply changes through the "
            "database (or a session over it) and take a fresh snapshot"
        )

    insert = delete = apply = add_relation = add_factorised = _read_only

    # ------------------------------------------------------------------
    # Pin lifecycle
    # ------------------------------------------------------------------
    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop this pin's retention claim; idempotent.

        Reads keep working off the captured state — releasing only
        allows the change log (and per-version state registry) to
        forget this version.
        """
        if self._released:
            return
        self._released = True
        self.database._release_pin(self._state.version)

    close = release

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass

    def __repr__(self) -> str:
        status = "released" if self._released else "pinned"
        return (
            f"Snapshot(version={self._state.version}, {status}, "
            f"views={', '.join(self.names()) or '(empty)'})"
        )


class Database:
    """Catalogue of flat relations and factorised views, by name."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        from repro.ivm.stats import MaintenanceStats

        self.relations: dict[str, Relation] = {}
        self.factorised: dict[str, "Factorisation"] = {}
        self.version = 0
        self.maintenance = MaintenanceStats()
        # Cumulative changed-row counts per view since creation; the
        # statistics cache (repro.stats) diffs these against the value
        # captured at seed time to detect drift.
        self._drift_rows: dict[str, float] = {}
        self._log: list[LogRecord] = []
        self._log_floor = 0  # versions ≤ this are no longer replayable
        self._stale_flat: set[str] = set()
        # Concurrency: _lock serialises writers (mutations and catalogue
        # registration); _log_lock guards the change log and the pin
        # registry, and is held only for short, non-blocking sections so
        # readers never wait on an in-flight apply.
        self._lock = threading.RLock()
        self._log_lock = threading.Lock()
        self._pins: dict[int, int] = {}  # version -> active pin count
        self._retained: dict[int, _CatalogueState] = {}
        self._published = _CatalogueState(0, {}, {}, frozenset())
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation, name: str = "") -> None:
        """Register a flat relation (name defaults to ``relation.name``)."""
        with self._lock:
            name = name or relation.name
            self.relations[name] = relation
            self._stale_flat.discard(name)
            self._record_registration(name)

    def add_factorised(self, name: str, factorisation: "Factorisation") -> None:
        """Register a factorised materialised view."""
        with self._lock:
            self.factorised[name] = factorisation
            self._update_store_bytes()
            self._record_registration(name)

    def _update_store_bytes(self) -> None:
        """Refresh the resident-bytes gauge over every factorised view."""
        _STORE_BYTES.set(
            float(
                sum(
                    fact.size_info()[1]
                    for fact in self.factorised.values()
                )
            )
        )

    def _record_registration(self, name: str) -> None:
        version = self.version + 1
        self.version = version
        self._append_log(
            LogRecord(version=version, kind="register", relation=name)
        )
        self._publish()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.relations or name in self.factorised

    def flat(self, name: str) -> Relation:
        """The flat form of a view, flattening a factorisation if needed.

        Flat copies of delta-maintained views refresh lazily here after
        a base-relation change marked them stale.
        """
        if name in self._stale_flat and name in self.factorised:
            # The lazy refresh mutates the catalogue, so it needs the
            # writer lock (reentrant: maintenance calls flat() while
            # already holding it); staleness is re-checked under the
            # lock in case a concurrent reader refreshed first.
            with self._lock:
                if name in self._stale_flat and name in self.factorised:
                    stale = self.relations.get(name)
                    refreshed = self.factorised[name].to_relation()
                    if stale is not None and set(stale.schema) == set(
                        refreshed.schema
                    ):
                        refreshed = refreshed.project(
                            stale.schema, dedup=False
                        )
                    refreshed.name = name
                    self.relations[name] = refreshed
                    self._stale_flat.discard(name)
        if name in self.relations:
            return self.relations[name]
        if name in self.factorised:
            flattened = self.factorised[name].to_relation()
            flattened.name = name
            return flattened
        raise UnknownRelationError(name)

    def get_factorised(self, name: str) -> "Factorisation | None":
        """The factorised form of a view if one was registered."""
        return self.factorised.get(name)

    def drift_rows(self, name: str) -> float:
        """Cumulative changed rows recorded against a view.

        The statistics cache compares this against the value captured
        when it seeded to decide whether its estimates have drifted.
        """
        return self._drift_rows.get(name, 0.0)

    def _record_drift(
        self, name: str, changed: int, view_deltas: "dict[str, ViewDelta]"
    ) -> None:
        """Accumulate per-view changed-row counts (writer lock held)."""
        from repro.ivm.maintain import drift_magnitude

        self._drift_rows[name] = self._drift_rows.get(name, 0.0) + changed
        for view_name, delta in view_deltas.items():
            if view_name == name:
                continue  # the base bump above already counted it
            rows_now = 0
            if delta.rebuilt:
                fact = self.factorised.get(view_name)
                rows_now = fact.tuple_count() if fact is not None else 0
            self._drift_rows[view_name] = self._drift_rows.get(
                view_name, 0.0
            ) + drift_magnitude(delta, rows_now)

    def schema(self, name: str) -> tuple[str, ...]:
        """Attribute names of a view, whichever representation exists."""
        if name in self.relations:
            return self.relations[name].schema
        if name in self.factorised:
            return tuple(self.factorised[name].schema())
        raise UnknownRelationError(name)

    def names(self) -> list[str]:
        """All registered view names (flat and factorised, deduplicated)."""
        return sorted(set(self.relations) | set(self.factorised))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]],
        columns: Sequence[str] | None = None,
    ) -> ApplyReport:
        """Insert rows (skipping ones already present); returns a report."""
        from repro.ivm.delta import Delta

        return self.apply(Delta.insert(relation, rows, columns))

    def delete(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]] | None = None,
        where: "Callable[[dict], bool] | Sequence | None" = None,
    ) -> ApplyReport:
        """Delete rows (by value, by predicate, or all); returns a report."""
        from repro.ivm.delta import Delta

        return self.apply(Delta.delete(relation, rows, where))

    def apply(self, delta: "Delta | Insertion | Deletion") -> ApplyReport:
        """Apply a batch of changes, maintaining every factorised view.

        Every change is validated up front (relation existence, column
        lists, row arities), so a malformed delta raises before any
        change takes effect; the valid changes then apply in order.
        """
        from repro.ivm.delta import Delta, Deletion, Insertion

        if isinstance(delta, (Insertion, Deletion)):
            delta = Delta((delta,))
        wait_start = clock.now()
        with self._lock:  # the single-writer lock: mutations serialise
            # Measured outside-in: the gap between requesting and
            # holding the lock is the writer's queueing delay.
            _WRITER_WAIT.observe(clock.now() - wait_start)
            for change in delta.changes:
                self._validate_change(change)
            records: list[LogRecord] = []
            inserted = deleted = 0
            for change in delta.changes:
                record = self._apply_change(change)
                records.append(record)
                if record.kind == "insert":
                    inserted += len(record.rows)
                else:
                    deleted += len(record.rows)
            return ApplyReport(self.version, inserted, deleted, tuple(records))

    def changes_since(self, version: int) -> list[LogRecord] | None:
        """Replayable records after ``version``, or None if truncated."""
        with self._log_lock:
            if version < self._log_floor:
                return None
            return [record for record in self._log if record.version > version]

    # ------------------------------------------------------------------
    # Snapshots (MVCC readers)
    # ------------------------------------------------------------------
    def snapshot(self, version: "int | None" = None) -> Snapshot:
        """Pin a version and return a read-only :class:`Snapshot` of it.

        With no argument the latest committed state is pinned (the
        common case: a reader joins at "now" and stays there until it
        refreshes).  An explicit ``version`` re-pins a state another
        snapshot is still holding — useful for sibling readers that
        must agree on one version; any other version raises
        :class:`SnapshotError`, since its state is no longer retained.
        """
        with self._log_lock:
            state = self._published
            if version is not None and version != state.version:
                retained = self._retained.get(version)
                if retained is None:
                    raise SnapshotError(
                        f"version {version} is not available for pinning "
                        f"(latest is {state.version}; older versions stay "
                        "available only while another snapshot pins them)"
                    )
                state = retained
            self._pins[state.version] = self._pins.get(state.version, 0) + 1
            self._retained[state.version] = state
            _PINNED.set(len(self._pins))
        return Snapshot(self, state)

    def pinned_versions(self) -> list[int]:
        """Versions currently pinned by live snapshots (sorted)."""
        with self._log_lock:
            return sorted(self._pins)

    def _release_pin(self, version: int) -> None:
        with self._log_lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)
                self._retained.pop(version, None)
            _PINNED.set(len(self._pins))

    def _publish(self) -> None:
        """Publish the current catalogue as one atomic immutable state.

        Called by every mutator after its change is complete (under the
        writer lock); the single reference assignment is the commit
        point concurrent readers observe.
        """
        self._published = _CatalogueState(
            self.version,
            dict(self.relations),
            dict(self.factorised),
            frozenset(self._stale_flat),
        )

    # ------------------------------------------------------------------
    # Change application internals
    # ------------------------------------------------------------------
    def _validate_change(self, change) -> None:
        """State-independent checks, run for the whole delta up front."""
        from repro.ivm.delta import DeltaError, Insertion

        name = change.relation
        if name not in self:
            raise UnknownRelationError(name)
        schema = self.schema(name)
        if isinstance(change, Insertion):
            columns = change.columns or tuple(schema)
            unknown = [c for c in columns if c not in schema]
            if unknown:
                raise DeltaError(
                    f"unknown columns {unknown!r} for relation {name!r} "
                    f"(schema: {tuple(schema)!r})"
                )
            missing = [c for c in schema if c not in columns]
            if missing:
                raise DeltaError(
                    f"insert into {name!r} misses columns {missing!r}; "
                    "partial rows are not supported"
                )
            arity = len(columns)
        elif change.rows is not None:
            arity = len(schema)
        else:
            return
        rows = change.rows or ()
        for row in rows:
            if len(row) != arity:
                raise DeltaError(
                    f"row arity {len(row)} does not match the {arity} "
                    f"expected columns of {name!r}"
                )

    def _apply_change(self, change) -> LogRecord:
        from repro.ivm.delta import Insertion

        name = change.relation
        if name not in self:
            raise UnknownRelationError(name)
        schema = self.schema(name)
        if isinstance(change, Insertion):
            rows = self._resolve_insert(change, schema)
            kind = "insert"
        else:
            rows = self._resolve_delete(change, schema)
            kind = "delete"

        # 1. The flat form of the named relation changes first, so that
        #    fragment construction during routed maintenance sees the
        #    post-change base data.  The change is copy-on-write: a new
        #    relation object replaces the catalogue entry, so states
        #    published for earlier versions (pinned by snapshots) keep
        #    their row lists untouched.
        if name in self.relations:
            relation = self.flat(name)  # refreshes a stale copy first
            if kind == "insert":
                new_rows = relation.rows + rows
            else:
                doomed = set(rows)
                new_rows = [
                    row for row in relation.rows if row not in doomed
                ]
            self.relations[name] = Relation.adopt(
                relation.schema, new_rows, name=relation.name
            )

        stats = self.maintenance
        stats.deltas_applied += 1
        if kind == "insert":
            stats.rows_inserted += len(rows)
        else:
            stats.rows_deleted += len(rows)

        # 2. Route the change to every affected factorised view (each
        #    maintained factorisation is a fresh persistent structure;
        #    prior versions keep sharing the unchanged fragments).
        view_deltas: "dict[str, ViewDelta]" = {}
        if rows:
            view_deltas = self._maintain_views(name, kind, rows, schema)
            self._record_drift(name, len(rows), view_deltas)

        # 3. Commit: log first, then the version stamp, then the atomic
        #    state publication snapshots pin against.
        version = self.version + 1
        record = LogRecord(
            version=version,
            kind=kind,
            relation=name,
            columns=tuple(schema),
            rows=tuple(rows),
            view_deltas=view_deltas,
        )
        self._append_log(record)
        self.version = version
        self._publish()
        return record

    def _resolve_insert(self, change, schema: Sequence[str]) -> list[tuple]:
        from repro.ivm.delta import DeltaError

        columns = change.columns or tuple(schema)
        unknown = [c for c in columns if c not in schema]
        if unknown:
            raise DeltaError(
                f"unknown columns {unknown!r} for relation "
                f"{change.relation!r} (schema: {tuple(schema)!r})"
            )
        missing = [c for c in schema if c not in columns]
        if missing:
            raise DeltaError(
                f"insert into {change.relation!r} misses columns "
                f"{missing!r}; partial rows are not supported"
            )
        positions = [columns.index(c) for c in schema]
        current = set(self._current_rows(change.relation, schema))
        out: list[tuple] = []
        for row in change.rows:
            if len(row) != len(columns):
                raise DeltaError(
                    f"row arity {len(row)} does not match columns "
                    f"{tuple(columns)!r}"
                )
            ordered = tuple(row[p] for p in positions)
            if ordered in current:
                continue  # set semantics: already present
            current.add(ordered)
            out.append(ordered)
        return out

    def _resolve_delete(self, change, schema: Sequence[str]) -> list[tuple]:
        from repro.ivm.delta import DeltaError

        current = self._current_rows(change.relation, schema)
        present = set(current)
        if change.rows is not None:
            out: list[tuple] = []
            seen: set[tuple] = set()
            for row in change.rows:
                if len(row) != len(schema):
                    raise DeltaError(
                        f"row arity {len(row)} does not match schema "
                        f"{tuple(schema)!r} of {change.relation!r}"
                    )
                row = tuple(row)
                if row in present and row not in seen:
                    seen.add(row)
                    out.append(row)
            return out
        out = []
        seen = set()
        for row in current:
            if row in seen:
                continue
            seen.add(row)
            if change.matches(dict(zip(schema, row))):
                out.append(row)
        return out

    def _current_rows(self, name: str, schema: Sequence[str]) -> list[tuple]:
        if name in self.relations or name in self._stale_flat:
            return list(self.flat(name).rows)
        return list(self.factorised[name].iter_tuples())

    def _maintain_views(
        self, name: str, kind: str, rows: list[tuple], schema: Sequence[str]
    ) -> "dict[str, ViewDelta]":
        from repro.ivm.maintain import (
            IndependenceViolation,
            ViewDelta,
            _Splice,
            contributors,
            direct_delete,
            direct_insert,
            routed_delete,
            routed_insert,
        )

        view_deltas: "dict[str, ViewDelta]" = {}
        for view_name, fact in list(self.factorised.items()):
            direct = view_name == name
            if not direct and name not in contributors(fact):
                continue
            splice = _Splice()
            try:
                if direct and kind == "insert":
                    new_fact = direct_insert(fact, rows, schema, splice)
                elif direct:
                    new_fact = direct_delete(fact, rows, schema, splice)
                elif kind == "insert":
                    new_fact = routed_insert(
                        fact, name, rows, schema, self, splice
                    )
                else:
                    new_fact = routed_delete(
                        fact, name, rows, schema, self, splice
                    )
                self.factorised[view_name] = new_fact
                self.maintenance.record_incremental(splice.nodes_touched)
                _IVM_SPLICE.inc()
                view_deltas[view_name] = ViewDelta(
                    name=view_name,
                    schema=tuple(new_fact.schema()),
                    added=tuple(splice.added),
                    removed=tuple(splice.removed),
                    nodes_touched=splice.nodes_touched,
                )
            except IndependenceViolation as violation:
                new_fact = self._rebuild_view(
                    view_name, fact, direct, kind, rows, schema
                )
                self.factorised[view_name] = new_fact
                self.maintenance.record_rebuild(violation.reason)
                _IVM_REBUILD.inc()
                view_deltas[view_name] = ViewDelta(
                    name=view_name,
                    schema=tuple(new_fact.schema()),
                    rebuilt=True,
                    reason=violation.reason,
                )
            if not direct and view_name in self.relations:
                # The view's own flat copy is now stale; it refreshes
                # from the maintained factorisation on next access.
                self._stale_flat.add(view_name)
        if view_deltas:
            self._update_store_bytes()
        return view_deltas

    def _rebuild_view(
        self,
        view_name: str,
        fact: "Factorisation",
        direct: bool,
        kind: str,
        rows: list[tuple],
        schema: Sequence[str],
    ) -> "Factorisation":
        """Fall back to re-factorising a view after a failed splice."""
        from repro.core.build import factorise
        from repro.core.frep import ColumnarFactorisation
        from repro.ivm.delta import DeltaError
        from repro.ivm.maintain import contributors
        from repro.relational.operators import multiway_join

        layout = (
            "columnar" if isinstance(fact, ColumnarFactorisation) else "legacy"
        )

        if any(node.is_aggregate for node in fact.ftree.nodes()):
            raise DeltaError(
                f"view {view_name!r} holds aggregate nodes and cannot be "
                "maintained or rebuilt; re-register it from its defining "
                "query instead"
            )
        attributes = [
            name
            for node in fact.ftree.nodes()
            for name in node.attributes
        ]
        if direct:
            # The flat copy (updated before maintenance) is the source
            # of truth for changes addressed to the view itself; a
            # factorised-only view still needs the change applied to
            # its flattened rows.
            if view_name in self.relations:
                source = self.relations[view_name]
            else:
                # A freshly flattened copy — never shared, so applying
                # the change in place is safe.  Kept on a separate name
                # from the published-catalogue branch above.
                fresh = fact.to_relation(view_name)
                positions = [schema.index(a) for a in fresh.schema]
                changed = [tuple(row[p] for p in positions) for row in rows]
                if kind == "insert":
                    fresh.rows.extend(changed)
                else:
                    doomed = set(changed)
                    fresh.rows = [
                        row for row in fresh.rows if row not in doomed
                    ]
                source = fresh
            rebuilt = factorise(source, fact.ftree, layout=layout)
            if rebuilt.tuple_count() == len(set(source.rows)):
                return rebuilt
            # The updated relation no longer satisfies the f-tree's join
            # dependencies (factorise would silently represent the join
            # of the subtree projections).  Every relation admits a path
            # factorisation (Section 2.1), so re-register over the path
            # f-tree — keeping each node's dependency keys for routing.
            return factorise(
                source, _path_fallback_tree(fact.ftree), layout=layout
            )
        missing = sorted(key for key in contributors(fact) if key not in self)
        if missing:
            raise DeltaError(
                f"view {view_name!r} needs a rebuild but its contributors "
                f"{missing!r} are not in the catalogue"
            )
        names = sorted(contributors(fact))
        joined = multiway_join([self.flat(key) for key in names])
        absent = [a for a in attributes if a not in joined.schema]
        if absent:
            raise DeltaError(
                f"view {view_name!r} cannot be rebuilt: its contributors "
                f"do not produce attributes {absent!r}"
            )
        return factorise(joined.project(attributes), fact.ftree, layout=layout)

    def _append_log(self, record: LogRecord) -> None:
        """Append one record, truncating with respect for pinned readers.

        The log keeps :data:`MAX_LOG` records, but records newer than
        the oldest pinned version are retained beyond that so snapshot
        readers can still replay the gap when they refresh — up to the
        :data:`MAX_PINNED_LOG` hard cap, past which truncation proceeds
        regardless (a too-old pin then re-prepares instead of
        forwarding).
        """
        with self._log_lock:
            self._log.append(record)
            _LOG_RECORDS.set(len(self._log))
            excess = len(self._log) - MAX_LOG
            if excess <= 0:
                return
            pin_floor = min(self._pins) if self._pins else record.version
            hard_excess = len(self._log) - MAX_PINNED_LOG
            dropped = 0
            while dropped < excess:
                if (
                    self._log[dropped].version > pin_floor
                    and dropped >= hard_excess
                ):
                    break
                dropped += 1
            if dropped:
                self._log_floor = self._log[dropped - 1].version
                self._log = self._log[dropped:]
                _LOG_RECORDS.set(len(self._log))
