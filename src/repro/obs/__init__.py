"""``repro.obs`` — metrics, hierarchical query tracing, logging.

The unified observability layer: a process-merge-able metrics registry
(:mod:`repro.obs.metrics`), hierarchical spans that survive thread and
fork boundaries (:mod:`repro.obs.spans`), Prometheus text exposition
(:mod:`repro.obs.export`), a slow-query ring buffer, the ``repro.*``
logger hierarchy (:mod:`repro.obs.logs`), and the single monotonic
clock (:mod:`repro.obs.clock`).

Everything funnels through one switch (:func:`configure` /
``REPRO_OBS``); when off, every instrument call is a single attribute
check — safe to leave in the hottest paths.

Typical embedded use::

    from repro import obs

    obs.configure(enabled=True)
    result = session.execute(query)
    print(result.explain())                  # includes the span tree
    print(obs.render_prometheus(obs.metrics()))

The server exposes the same registry at ``GET /metrics`` and the slow
log at ``GET /debug/slow``.
"""

from repro.obs import clock
from repro.obs.export import CONTENT_TYPE, parse_prometheus, render_prometheus
from repro.obs.logs import get_logger
from repro.obs.metrics import (
    BUCKETS,
    MetricsRegistry,
    metrics,
    snapshot_diff,
)
from repro.obs.spans import (
    SlowLog,
    Span,
    SpanContext,
    current_span,
    remote_root,
    slow_log,
    span,
    span_context,
)
from repro.obs.state import configure, enabled

__all__ = [
    "BUCKETS",
    "CONTENT_TYPE",
    "MetricsRegistry",
    "SlowLog",
    "Span",
    "SpanContext",
    "clock",
    "configure",
    "current_span",
    "enabled",
    "get_logger",
    "metrics",
    "parse_prometheus",
    "remote_root",
    "render_prometheus",
    "slow_log",
    "snapshot_diff",
    "span",
    "span_context",
]
