"""The ``repro.*`` logger hierarchy.

Library convention: the root ``repro`` logger carries a
:class:`logging.NullHandler` so an application that never configures
logging sees no "No handlers could be found" noise, while one that does
(``logging.basicConfig(level=logging.INFO)``) receives every layer's
records — server access lines at INFO, slow queries at WARNING —
through the standard propagation rules.
"""

from __future__ import annotations

import logging

_ROOT = logging.getLogger("repro")
if not any(isinstance(h, logging.NullHandler) for h in _ROOT.handlers):
    _ROOT.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return _ROOT
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
