"""Hierarchical query spans with cross-thread and cross-process context.

A span is one timed region of a query's life; nesting gives the tree
``session.query`` → ``plan``/``cache.lookup`` → ``engine.run`` →
per-shard ``shard.run`` → ``merge``.  The current span travels in a
:class:`contextvars.ContextVar`:

- same thread: ``with span("plan"):`` picks up the enclosing span as
  parent automatically;
- thread executors do **not** copy context — callers submit
  ``contextvars.copy_context().run(fn, ...)`` (one fresh copy per
  task), after which the child span attaches to the shared parent
  ``Span`` object across threads (``list.append`` is atomic);
- forked process pools receive a picklable :class:`SpanContext`
  alongside the ``.lite()`` plan; the worker opens a
  :func:`remote_root` span, returns it as a dict (durations only —
  ``perf_counter`` timestamps do not compare across processes), and the
  parent re-parents it with :meth:`Span.adopt`.

Finished root spans land in the process-global :class:`SlowLog` ring
buffer (``GET /debug/slow`` and the slow-query WARN line read it).
"""

from __future__ import annotations

import contextvars
import os
import threading
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs import clock
from repro.obs.logs import get_logger
from repro.obs.state import STATE

_CURRENT: "contextvars.ContextVar[Span | None]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Root spans at least this slow emit one WARN line with their trace id.
SLOW_QUERY_SECONDS = float(os.environ.get("REPRO_SLOW_QUERY_SECONDS", "1.0"))

_log = get_logger("obs.slow")


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: enough to re-parent remotely."""

    trace_id: str
    span_id: str


class Span:
    """One timed region; a context manager that tracks the current span."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "duration",
        "children",
        "_start",
        "_token",
        "_root",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: "str | None" = None,
        attributes: "dict | None" = None,
        root: bool = False,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attributes = attributes or {}
        self.duration: "float | None" = None
        self.children: list[Span] = []
        self._start = 0.0
        self._token: "contextvars.Token | None" = None
        self._root = root

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self._start = clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = clock.now() - self._start
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if self._root:
            _SLOW.record(self)
            if self.duration >= SLOW_QUERY_SECONDS:
                _log.warning(
                    "slow query trace=%s %s took %.1f ms",
                    self.trace_id,
                    self.name,
                    self.duration * 1000.0,
                )
        return False

    # ------------------------------------------------------------------
    # Serialisation and re-parenting
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON/pickle-safe tree: names, attributes, durations, children."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
            "seconds": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(
            payload["name"],
            payload.get("trace_id", ""),
            payload.get("parent_id"),
            dict(payload.get("attributes", ())),
        )
        span.span_id = payload.get("span_id", span.span_id)
        span.duration = payload.get("seconds")
        span.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span

    def adopt(self, payload: "dict | Span") -> "Span":
        """Re-parent a (remotely recorded) span under this one.

        The adopted subtree joins this span's trace: worker spans carry
        the parent's trace id already (via :class:`SpanContext`), but a
        span recorded with no context is rewritten to fit.
        """
        child = payload if isinstance(payload, Span) else Span.from_dict(payload)
        child.parent_id = self.span_id
        stack = [child]
        while stack:
            node = stack.pop()
            node.trace_id = self.trace_id
            stack.extend(node.children)
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII tree with per-span durations and attributes."""
        lines: list[str] = []

        def walk(span: "Span", depth: int) -> None:
            detail = ""
            if span.attributes:
                rendered = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(span.attributes.items())
                )
                detail = f" [{rendered}]"
            timing = (
                f"{span.duration * 1000.0:9.3f} ms"
                if span.duration is not None
                else "  (open)"
            )
            label = "  " * depth + span.name + detail
            lines.append(f"{label:<48} {timing}")
            for child in span.children:
                walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path.

    ``with span(...) as s:`` binds ``s`` to ``None`` when observability
    is off, so callers guard attribute access with ``if s is not None``.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **attributes: Any) -> "Span | _NoopSpan":
    """Open a span under the current one (or a new root)."""
    if not STATE.enabled:
        return _NOOP
    parent = _CURRENT.get()
    if parent is None:
        return Span(name, _new_id(), attributes=attributes, root=True)
    child = Span(
        name, parent.trace_id, parent.span_id, attributes=attributes
    )
    parent.children.append(child)
    return child


def remote_root(
    name: str, context: "SpanContext | None", **attributes: Any
) -> "Span | _NoopSpan":
    """Open a worker-side span parented on a pickled :class:`SpanContext`.

    The span is *not* recorded to the worker's slow log — it returns to
    the parent process (``to_dict()``) and is re-parented there with
    :meth:`Span.adopt`.
    """
    if not STATE.enabled:
        return _NOOP
    if context is None:
        return Span(name, _new_id(), attributes=attributes)
    return Span(name, context.trace_id, context.span_id, attributes=attributes)


def current_span() -> "Span | None":
    """The innermost open span of this context, if any."""
    return _CURRENT.get()


def span_context() -> "SpanContext | None":
    """The current span's picklable identity (for process boundaries)."""
    current = _CURRENT.get()
    return current.context() if current is not None else None


class SlowLog:
    """Ring buffer of recent finished root spans, ranked on read.

    ``record`` keeps the :class:`Span` object (immutable once exited)
    and serialises lazily in :meth:`slowest` — recording stays
    allocation-light on the query path.
    """

    def __init__(self, capacity: int = 32) -> None:
        self._lock = threading.Lock()
        self._entries: deque[Span] = deque(maxlen=capacity)

    def record(self, span: Span) -> None:
        with self._lock:
            self._entries.append(span)

    def slowest(self, limit: int = 10) -> list[dict]:
        """The slowest recent roots, slowest first, as JSON-able dicts."""
        with self._lock:
            entries = list(self._entries)
        entries.sort(key=lambda span: span.duration or 0.0, reverse=True)
        return [
            {
                "trace_id": span.trace_id,
                "name": span.name,
                "seconds": span.duration,
                "attributes": dict(span.attributes),
                "tree": span.to_dict(),
            }
            for span in entries[:limit]
        ]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


_SLOW = SlowLog()


def slow_log() -> SlowLog:
    """The process-global slow-query ring buffer."""
    return _SLOW
