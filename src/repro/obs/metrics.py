"""A thread-safe, process-merge-able metrics registry.

Three instrument kinds — counters, gauges, histograms — organised as
*families* (one metric name, a fixed tuple of label names) whose
labelled children are created on first use and cached forever.  The
intended hot-path discipline is: resolve the child **once** (module
import or ``__init__``) with :meth:`Family.labels` and call
``inc``/``set``/``observe`` on the pre-bound child inside critical
sections — those methods allocate nothing and start with a single
enabled-flag check (see :mod:`repro.obs.state`).  The concurrency
linter (rule ``obs-allocation``) enforces this inside lock-guarded
blocks.

Histograms use **fixed exponential bucket bounds** (:data:`BUCKETS`,
class-level constants), so histograms recorded in forked shard workers
merge *exactly* into the parent registry: same bounds, bucket counts
simply add.  Workers ship a :func:`snapshot_diff` of their registry
around each task and the parent folds it in with
:meth:`MetricsRegistry.merge`; gauges are point-in-time and are
excluded from diffs.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator, Sequence

from repro.obs.state import STATE

#: Exponential histogram bounds in seconds: 50µs · 2^i for i in 0..19
#: (50µs … ~26s).  Fixed at class level so every histogram in every
#: process buckets identically and cross-process merges are exact.
BUCKETS: tuple[float, ...] = tuple(5e-05 * 2.0**i for i in range(20))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value")
    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self.value += amount

    def _sample(self) -> float:
        return self.value

    def _merge(self, sample: float) -> None:
        with self._lock:
            self.value += sample

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Gauge:
    """A value that goes up and down (sizes, in-flight counts)."""

    __slots__ = ("_lock", "value")
    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        if not STATE.enabled:
            return
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self.value -= amount

    def _sample(self) -> float:
        return self.value

    def _merge(self, sample: float) -> None:
        # Gauges are point-in-time observations; a merged snapshot's
        # value simply overwrites (diffs exclude gauges entirely).
        self.value = sample

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A distribution over fixed exponential buckets.

    ``counts[i]`` holds observations with ``value <= bounds[i]`` (and
    greater than the previous bound); ``counts[-1]`` is the overflow
    (+Inf) bucket.  Rendering cumulates the counts into Prometheus
    ``le`` form.
    """

    __slots__ = ("_lock", "bounds", "counts", "total", "count")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = BUCKETS) -> None:
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not STATE.enabled:
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def _sample(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "sum": self.total,
                "count": self.count,
            }

    def _merge(self, sample: dict) -> None:
        if tuple(sample["bounds"]) != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        with self._lock:
            for index, extra in enumerate(sample["counts"]):
                self.counts[index] += extra
            self.total += sample["sum"]
            self.count += sample["count"]

    def _reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.total = 0.0
            self.count = 0


class Family:
    """One metric name with a fixed label-name tuple and cached children.

    ``labels(*values)`` resolves (creating on first use) the child for
    one label-value combination; the un-labelled convenience methods
    (:meth:`inc`/:meth:`set`/:meth:`observe`/:meth:`dec`) operate on the
    ``()`` child of a label-free family.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        factory,
        kind: str,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self.kind = kind
        self._factory = factory
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *values) -> Any:
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {len(values)} value(s)"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._factory()
                    self._children[key] = child
        return child

    # Convenience for label-free families (delegates to the () child).
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            items = list(self._children.items())
        return [(key, child._sample()) for key, child in sorted(items)]


class MetricsRegistry:
    """The named-family table with snapshot/merge for process folding."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}

    # ------------------------------------------------------------------
    # Family constructors (idempotent: same name returns the family)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        return self._family(name, help_text, labelnames, Counter, "counter")

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        return self._family(name, help_text, labelnames, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = BUCKETS,
    ) -> Family:
        bounds = tuple(bounds)
        return self._family(
            name, help_text, labelnames, lambda: Histogram(bounds), "histogram"
        )

    def _family(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        factory,
        kind: str,
    ) -> Family:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(name, help_text, labelnames, factory, kind)
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != labelnames:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}"
            )
        return family

    def families(self) -> Iterator[Family]:
        with self._lock:
            families = list(self._families.values())
        return iter(sorted(families, key=lambda f: f.name))

    # ------------------------------------------------------------------
    # Snapshot / merge (the cross-process protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-data copy of every family: picklable, JSON-able."""
        out: dict[str, dict] = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": [
                    [list(key), sample] for key, sample in family.samples()
                ],
            }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (typically a worker's diff) into this registry.

        Counters and histogram buckets add exactly; gauges overwrite.
        Merging ignores the enabled flag: a worker's already-recorded
        delta is folded even if recording was disabled meanwhile.
        """
        for name, data in snapshot.items():
            kind = data["kind"]
            labelnames = tuple(data["labelnames"])
            if kind == "counter":
                family = self.counter(name, data.get("help", ""), labelnames)
            elif kind == "gauge":
                family = self.gauge(name, data.get("help", ""), labelnames)
            else:
                samples = data["samples"]
                bounds = (
                    tuple(samples[0][1]["bounds"]) if samples else BUCKETS
                )
                family = self.histogram(
                    name, data.get("help", ""), labelnames, bounds
                )
            for key, sample in data["samples"]:
                family.labels(*key)._merge(sample)

    def reset(self) -> None:
        """Zero every child **in place** (pre-bound references stay valid)."""
        for family in self.families():
            with family._lock:
                children = list(family._children.values())
            for child in children:
                child._reset()


def snapshot_diff(after: dict, before: dict) -> dict:
    """The delta of two snapshots of the *same* registry.

    Counters subtract; histogram bucket counts and sums subtract
    element-wise; gauges are point-in-time and are dropped.  This is
    what a forked shard worker returns per task so repeated tasks in a
    long-lived worker are never double-counted.
    """
    out: dict[str, dict] = {}
    for name, data in after.items():
        if data["kind"] == "gauge":
            continue
        previous = {
            tuple(key): sample
            for key, sample in before.get(name, {}).get("samples", [])
        }
        samples = []
        for key, sample in data["samples"]:
            base = previous.get(tuple(key))
            if data["kind"] == "counter":
                delta = sample - (base or 0.0)
                if delta:
                    samples.append([key, delta])
            else:
                if base is None:
                    base = {
                        "bounds": sample["bounds"],
                        "counts": [0] * len(sample["counts"]),
                        "sum": 0.0,
                        "count": 0,
                    }
                delta = {
                    "bounds": sample["bounds"],
                    "counts": [
                        c - b for c, b in zip(sample["counts"], base["counts"])
                    ],
                    "sum": sample["sum"] - base["sum"],
                    "count": sample["count"] - base["count"],
                }
                if delta["count"]:
                    samples.append([key, delta])
        if samples:
            out[name] = {
                "kind": data["kind"],
                "help": data.get("help", ""),
                "labelnames": data["labelnames"],
                "samples": samples,
            }
    return out


#: The process-global registry every layer instruments into.
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global registry."""
    return _REGISTRY
