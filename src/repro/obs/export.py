"""Prometheus text exposition (and its inverse, for round-trip tests).

:func:`render_prometheus` serialises a :class:`MetricsRegistry` in the
text format version 0.0.4 (``# HELP``/``# TYPE`` headers, ``_bucket``
series with cumulative ``le`` bounds plus ``_sum``/``_count`` for
histograms).  :func:`parse_prometheus` reads the same format back into
plain data — used by the scrape round-trip test and the
``python -m repro metrics --url`` CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _labels(names, values, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = [
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """The registry (default: the process one) in Prometheus text format."""
    if registry is None:
        from repro.obs.metrics import metrics

        registry = metrics()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, sample in family.samples():
            if family.kind in ("counter", "gauge"):
                labels = _labels(family.labelnames, key)
                lines.append(
                    f"{family.name}{labels} {_format_value(sample)}"
                )
                continue
            cumulative = 0
            for bound, count in zip(sample["bounds"], sample["counts"]):
                cumulative += count
                labels = _labels(
                    family.labelnames, key, (("le", f"{bound:.10g}"),)
                )
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            cumulative += sample["counts"][-1]
            labels = _labels(family.labelnames, key, (("le", "+Inf"),))
            lines.append(f"{family.name}_bucket{labels} {cumulative}")
            labels = _labels(family.labelnames, key)
            lines.append(
                f"{family.name}_sum{labels} {_format_value(sample['sum'])}"
            )
            lines.append(f"{family.name}_count{labels} {sample['count']}")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    pairs: list[tuple[str, str]] = []
    index = 0
    while index < len(text):
        equals = text.index("=", index)
        name = text[index:equals].strip().lstrip(",").strip()
        assert text[equals + 1] == '"'
        value: list[str] = []
        cursor = equals + 2
        while text[cursor] != '"':
            if text[cursor] == "\\":
                escaped = text[cursor + 1]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
                cursor += 2
            else:
                value.append(text[cursor])
                cursor += 1
        pairs.append((name, "".join(value)))
        index = cursor + 1
    return tuple(pairs)


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{name: {kind, help, samples}}``.

    ``samples`` maps a sorted tuple of ``(label, value)`` pairs to the
    numeric sample.  Histogram sub-series (``_bucket``/``_sum``/
    ``_count``) are folded under their base family name.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"kind": None, "help": "", "samples": {}}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family(name)["kind"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            raw_labels = line[line.index("{") + 1 : line.rindex("}")]
            labels = _parse_labels(raw_labels)
            value = float(line[line.rindex("}") + 1 :].strip())
        else:
            name, _, raw_value = line.partition(" ")
            labels = ()
            value = float(raw_value.strip())
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed is not None and families.get(trimmed, {}).get(
                "kind"
            ) == "histogram":
                base = trimmed
                break
        entry = family(base)
        key = (name, tuple(sorted(labels)))
        entry["samples"][key] = value
    return families
