"""The one observability switch, shared by metrics and spans.

``STATE.enabled`` is a plain attribute read on the instrumentation hot
path: every instrument method and :func:`repro.obs.spans.span` checks it
first and returns immediately when observability is off — the true
no-op fast path.  The initial value comes from ``REPRO_OBS`` (set to
``0``/``false``/``no``/``off`` to disable; default enabled);
:func:`configure` flips it at runtime, which benchmarks use to measure
both modes in one process.

Forked shard workers inherit the flag by memory copy at fork time, so a
``configure()`` call after the worker pool exists does not reach
workers until the pool is rebuilt.
"""

from __future__ import annotations

import os


class _State:
    __slots__ = ("enabled",)


STATE = _State()
STATE.enabled = os.environ.get("REPRO_OBS", "1").strip().lower() not in {
    "0",
    "false",
    "no",
    "off",
}


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return STATE.enabled


def configure(enabled: "bool | None" = None) -> bool:
    """Toggle observability at runtime; returns the resulting state."""
    if enabled is not None:
        STATE.enabled = bool(enabled)
    return STATE.enabled
