"""The one clock every layer times with.

All durations in the codebase — lifecycle timings, f-plan step wall
time, lock waits, pool admission waits, span durations — come from
``clock.now()``, which is :func:`time.perf_counter`: monotonic, highest
available resolution, immune to NTP adjustment (wall-clock
``time.time()`` is not monotonic and skews timings when the system
clock steps).

``perf_counter`` values are process-local: they are only comparable to
other readings from the same process.  Cross-process timings (forked
shard workers) therefore travel as *durations*, never as timestamps.
"""

from __future__ import annotations

from time import perf_counter as now

__all__ = ["now"]
