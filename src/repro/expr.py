"""First-class scalar expressions over attributes (Section 3.2).

The paper's aggregation operators are not restricted to bare
attributes: ``SUM(price * quantity)`` is evaluated directly on the
factorisation by distributing sums of products over independent
branches.  This module provides the engine-neutral expression AST the
whole query surface shares — the :class:`~repro.query.Query` AST,
:class:`~repro.api.builder.QueryBuilder`, the SQL front-end and every
registered engine:

- :class:`Attr` — an attribute reference (``col("price")``);
- :class:`Const` — a numeric literal;
- :class:`BinOp` — ``+ - * /`` (division is always *true* division;
  the SQL generator renders it so SQLite agrees);
- :class:`Neg` — unary negation;
- :class:`Param` — a named placeholder (``param("x")``, SQL ``:x`` or
  ``?``), bound to a concrete value when a prepared query runs.

Expressions are immutable, hashable, and compose with Python operator
overloading::

    from repro import col

    revenue = col("price") * col("qty")
    discounted = -(col("price") - 2) / 4

:func:`linearise` normalises an expression into a sum of product terms
(``Σ cᵢ · Πⱼ fᵢⱼ``), the form the factorised evaluators of
:mod:`repro.core.aggregates` distribute over independent branches per
Section 3.2: a sum commutes with the union operator, and a product of
factors living in independent subtrees is the product of their partial
sums.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping


class ExprError(ValueError):
    """Raised for malformed scalar expressions."""


class UnboundParamError(ExprError):
    """Raised when an unbound :class:`Param` is evaluated."""


_BINARY_OPS = ("+", "-", "*", "/")
#: Rendering precedence: higher binds tighter.
_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


class Expr:
    """Base class of the scalar-expression AST.

    Subclasses are frozen dataclasses; arithmetic on any two
    expressions (or an expression and a plain number / attribute name)
    builds a new tree.
    """

    __slots__ = ()

    # ------------------------------------------------------------------
    # Operator overloading
    # ------------------------------------------------------------------
    def __add__(self, other: Any) -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: Any) -> "BinOp":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: Any) -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: Any) -> "BinOp":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: Any) -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: Any) -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: Any) -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: Any) -> "BinOp":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "Neg":
        return Neg(self)

    def __pos__(self) -> "Expr":
        return self

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def attributes(self) -> tuple[str, ...]:
        """Referenced attribute names, unique, in first-reference order."""
        out: list[str] = []
        self._collect(out)
        return tuple(out)

    def parameters(self) -> tuple[str, ...]:
        """Referenced parameter names, unique, in first-reference order."""
        out: list[str] = []
        self._collect_params(out)
        return tuple(out)

    def _collect(self, out: list[str]) -> None:
        raise NotImplementedError

    def _collect_params(self, out: list[str]) -> None:
        """Default: atoms reference no parameters."""

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        """Evaluate against a row binding (attribute name → value)."""
        raise NotImplementedError

    def sql(self) -> str:
        """SQL text of the expression (parenthesised by precedence)."""
        return self._render(sql=True)

    def _render(self, sql: bool = False) -> str:
        raise NotImplementedError

    def _precedence(self) -> int:
        return 9  # atoms never need parentheses

    @property
    def is_attribute(self) -> bool:
        """Whether this expression is a bare attribute reference."""
        return isinstance(self, Attr)

    def __str__(self) -> str:
        return self._render(sql=False)


@dataclass(frozen=True, eq=True, repr=False)
class Attr(Expr):
    """A reference to an attribute of the joined input relations."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ExprError(f"attribute reference needs a name, got {self.name!r}")

    def _collect(self, out: list[str]) -> None:
        if self.name not in out:
            out.append(self.name)

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        try:
            return binding[self.name]
        except KeyError:
            raise ExprError(
                f"no value for attribute {self.name!r} in binding"
            ) from None

    def _render(self, sql: bool = False) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(frozen=True, eq=True, repr=False)
class Const(Expr):
    """A numeric literal."""

    value: Any

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(
            self.value, (int, float)
        ):
            raise ExprError(
                f"expression constants must be numbers, got {self.value!r}"
            )

    def _collect(self, out: list[str]) -> None:
        pass

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        return self.value

    def _render(self, sql: bool = False) -> str:
        return repr(self.value)

    def _precedence(self) -> int:
        # Negative literals render with a leading minus: parenthesise
        # like a unary negation so "a * -2" never prints as "a * -2"
        # ambiguity-free forms only matter below multiplicative level.
        return 9 if self.value >= 0 else 3

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, eq=True, repr=False)
class BinOp(Expr):
    """A binary arithmetic node: ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ExprError(f"unknown arithmetic operator {self.op!r}")
        if not isinstance(self.left, Expr) or not isinstance(self.right, Expr):
            raise ExprError("BinOp operands must be expressions")

    def _collect(self, out: list[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def _collect_params(self, out: list[str]) -> None:
        self.left._collect_params(out)
        self.right._collect_params(out)

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        left = self.left.evaluate(binding)
        right = self.right.evaluate(binding)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        return left / right  # true division in every engine

    def _precedence(self) -> int:
        return _PRECEDENCE[self.op]

    def _render(self, sql: bool = False) -> str:
        own = self._precedence()
        left = self.left._render(sql)
        if self.left._precedence() < own:
            left = f"({left})"
        right = self.right._render(sql)
        # -, / are left-associative: parenthesise equal-precedence rhs.
        if self.right._precedence() < own or (
            self.op in ("-", "/") and self.right._precedence() == own
        ):
            right = f"({right})"
        if sql and self.op == "/":
            # SQLite divides integers integrally; forcing a REAL
            # numerator keeps the generated SQL on true-division
            # semantics, matching every other engine.
            return f"1.0 * {left} / {right}"
        return f"{left} {self.op} {right}"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=True, repr=False)
class Neg(Expr):
    """Unary negation."""

    operand: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.operand, Expr):
            raise ExprError("Neg operand must be an expression")

    def _collect(self, out: list[str]) -> None:
        self.operand._collect(out)

    def _collect_params(self, out: list[str]) -> None:
        self.operand._collect_params(out)

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        return -self.operand.evaluate(binding)

    def _precedence(self) -> int:
        return 3

    def _render(self, sql: bool = False) -> str:
        inner = self.operand._render(sql)
        if self.operand._precedence() < self._precedence():
            inner = f"({inner})"
        return f"-{inner}"

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


#: Parameter names are SQL named-placeholder identifiers, so the same
#: name works verbatim as ``:name`` in generated SQL (and as a key in
#: sqlite3's named-binding dictionary).
_PARAM_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True, eq=True, repr=False)
class Param(Expr):
    """A named query parameter (the ``?``/``:name`` of prepared queries).

    Parameters are *structural* leaves: two queries differing only in
    the values bound to their parameters share one canonical form, so a
    single prepared plan serves every binding.  Evaluating an unbound
    parameter raises :class:`UnboundParamError` — binding happens in
    :func:`repro.plan.params.bind_params` before execution.
    """

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _PARAM_NAME.match(self.name):
            raise ExprError(
                f"parameter names must be identifiers "
                f"([A-Za-z_][A-Za-z0-9_]*), got {self.name!r}"
            )

    def _collect(self, out: list[str]) -> None:
        pass

    def _collect_params(self, out: list[str]) -> None:
        if self.name not in out:
            out.append(self.name)

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        raise UnboundParamError(
            f"parameter :{self.name} is unbound; run the prepared query "
            f"with a value for it (e.g. prepared.run({self.name}=...))"
        )

    def _render(self, sql: bool = False) -> str:
        return f":{self.name}"

    def __repr__(self) -> str:
        return f"param({self.name!r})"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------
def col(name: str) -> Attr:
    """The public expression constructor: a reference to an attribute.

    ``col("price") * col("qty")`` builds the expression tree consumed
    by :meth:`QueryBuilder.sum` and friends.
    """
    return Attr(name)


def lit(value: Any) -> Const:
    """A numeric literal as an expression (rarely needed explicitly:
    plain numbers auto-promote inside arithmetic)."""
    return Const(value)


def param(name: str) -> Param:
    """A named query parameter: ``where("price", ">", param("floor"))``.

    The same placeholder is spelled ``:floor`` (or positionally ``?``)
    in SQL text.  Values are supplied when the prepared query runs.
    """
    return Param(name)


def as_expr(value: Any) -> Expr:
    """Promote a value to an expression.

    Expressions pass through; strings become attribute references
    (the back-compat path for the query AST); numbers become literals.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return Attr(value)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Const(value)
    raise ExprError(
        f"cannot interpret {value!r} as a scalar expression; expected an "
        "expression (col(...)), an attribute name, or a number"
    )


# ---------------------------------------------------------------------------
# Linearisation: Σ cᵢ · Πⱼ fᵢⱼ normal form
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Term:
    """One product term of a linearised expression.

    ``factors`` are non-constant multiplicands — attribute references,
    or *opaque* sub-expressions a sum cannot distribute over (a
    quotient with a non-constant divisor).  The constant part is folded
    into ``coefficient``.
    """

    coefficient: Any
    factors: tuple[Expr, ...]

    def attributes(self) -> tuple[str, ...]:
        out: list[str] = []
        for factor in self.factors:
            for name in factor.attributes():
                if name not in out:
                    out.append(name)
        return tuple(out)

    def evaluate(self, binding: Mapping[str, Any]) -> Any:
        value = self.coefficient
        for factor in self.factors:
            value *= factor.evaluate(binding)
        return value


def linearise(expr: Expr) -> tuple[Term, ...]:
    """Expand an expression into a sum of product terms.

    Sums and differences distribute, products expand pairwise, unary
    minus and constants fold into coefficients, and a division by a
    constant becomes a coefficient scaling.  A quotient with a
    non-constant divisor stays a single opaque factor — the factorised
    evaluators then localise its evaluation to the fragment holding its
    attributes.
    """
    if isinstance(expr, Const):
        return (Term(expr.value, ()),)
    if isinstance(expr, Attr):
        return (Term(1, (expr,)),)
    if isinstance(expr, Param):
        # An unbound parameter is an opaque factor; evaluating it later
        # raises UnboundParamError with a helpful message.
        return (Term(1, (expr,)),)
    if isinstance(expr, Neg):
        return tuple(
            Term(-term.coefficient, term.factors)
            for term in linearise(expr.operand)
        )
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return linearise(expr.left) + linearise(expr.right)
        if expr.op == "-":
            return linearise(expr.left) + tuple(
                Term(-term.coefficient, term.factors)
                for term in linearise(expr.right)
            )
        if expr.op == "*":
            return tuple(
                Term(
                    left.coefficient * right.coefficient,
                    left.factors + right.factors,
                )
                for left in linearise(expr.left)
                for right in linearise(expr.right)
            )
        # Division: scale by a constant divisor, else keep opaque.
        divisor = linearise(expr.right)
        if len(divisor) == 1 and not divisor[0].factors:
            if divisor[0].coefficient == 0:
                raise ExprError(f"division by zero in {expr}")
            return tuple(
                Term(term.coefficient / divisor[0].coefficient, term.factors)
                for term in linearise(expr.left)
            )
        return (Term(1, (expr,)),)
    raise ExprError(f"cannot linearise {expr!r}")


def simplify(expr: Expr) -> Expr:
    """Light normalisation used when re-importing generated SQL.

    Strips the unit factors the SQL generator inserts for SQLite's
    division semantics (``1.0 * a / b`` → ``a / b``) so a parse →
    compile → generate cycle is a fixed point.
    """
    if isinstance(expr, BinOp):
        left = simplify(expr.left)
        right = simplify(expr.right)
        if expr.op == "*" and left == Const(1.0):
            return right
        if expr.op == "*" and right == Const(1.0):
            return left
        return BinOp(expr.op, left, right)
    if isinstance(expr, Neg):
        inner = simplify(expr.operand)
        if isinstance(inner, Const):
            return Const(-inner.value)
        return Neg(inner)
    return expr
