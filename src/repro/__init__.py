"""repro — reproduction of *Aggregation and Ordering in Factorised Databases*.

Bakibayev, Kočiský, Olteanu, Závodný (VLDB 2013, arXiv:1307.0441).

The package provides:

- :mod:`repro.core` — factorised databases: f-trees, factorised
  representations, the γ aggregation operator, restructuring operators,
  constant-delay (ordered) enumeration, cost model, query optimisers,
  and the FDB engine;
- :mod:`repro.relational` — the flat relational substrate and RDB
  baseline engine;
- :mod:`repro.sql` — a SQL front-end compiling to the shared query AST;
- :mod:`repro.data` — the paper's example database and the synthetic
  scaled workload generator of Section 6;
- :mod:`repro.bench` — the benchmark harness regenerating every figure
  of the paper's evaluation.

Quickstart::

    from repro import Database, Relation, Query, FDBEngine, aggregate

    db = Database([Relation(("a", "b"), [(1, 10), (1, 20), (2, 30)], "R")])
    query = Query(relations=("R",), group_by=("a",),
                  aggregates=(aggregate("sum", "b", "total"),))
    result = FDBEngine().execute(query, db)
    print(result.to_relation().pretty())
"""

from repro.database import Database
from repro.query import (
    AggregateSpec,
    Comparison,
    Equality,
    Having,
    Query,
    QueryError,
    aggregate,
)
from repro.relational.relation import Relation
from repro.relational.sort import SortKey

__version__ = "1.0.0"

__all__ = [
    "AggregateSpec",
    "Comparison",
    "Database",
    "Equality",
    "FDBEngine",
    "Having",
    "Query",
    "QueryError",
    "RDBEngine",
    "Relation",
    "SortKey",
    "aggregate",
    "__version__",
]


def __getattr__(name: str):
    # Engines are imported lazily to keep the import graph acyclic
    # (repro.core modules import the relational substrate).
    if name == "FDBEngine":
        from repro.core.engine import FDBEngine

        return FDBEngine
    if name == "RDBEngine":
        from repro.relational.engine import RDBEngine

        return RDBEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
