"""repro — reproduction of *Aggregation and Ordering in Factorised Databases*.

Bakibayev, Kočiský, Olteanu, Závodný (VLDB 2013, arXiv:1307.0441).

The package provides:

- :mod:`repro.core` — factorised databases: f-trees, factorised
  representations, the γ aggregation operator, restructuring operators,
  constant-delay (ordered) enumeration, cost model, query optimisers,
  and the FDB engine;
- :mod:`repro.relational` — the flat relational substrate and RDB
  baseline engine;
- :mod:`repro.sql` — a SQL front-end compiling to the shared query AST;
- :mod:`repro.data` — the paper's example database and the synthetic
  scaled workload generator of Section 6;
- :mod:`repro.bench` — the benchmark harness regenerating every figure
  of the paper's evaluation.

- :mod:`repro.api` — the unified session API: ``connect``/``Session``,
  the fluent ``QueryBuilder``, the engine registry, and the ``Result``
  object;
- :mod:`repro.server` — concurrent server mode: ``SessionPool`` for
  snapshot-isolated session multiplexing and an asyncio HTTP/JSON
  front-end (``serve``/``Server``/``Client``);
- :mod:`repro.obs` — observability: a mergeable metrics registry,
  hierarchical query spans, Prometheus text exposition, and the
  slow-query log (``REPRO_OBS=0`` disables it all).

Quickstart::

    from repro import Relation, connect

    session = connect(Relation(("a", "b"), [(1, 10), (1, 20), (2, 30)], "R"))
    result = (session.query("R")
              .group_by("a")
              .sum("b", "total")
              .run())
    print(result.pretty())
    print(result.plan)   # the f-plan that produced the result
"""

import logging as _logging

from repro.database import Database
from repro.expr import Attr, BinOp, Const, Expr, Neg, Param, col, lit, param
from repro.query import (
    AggregateSpec,
    Comparison,
    ComputedColumn,
    Equality,
    Having,
    Query,
    QueryError,
    aggregate,
)
from repro.relational.relation import Relation
from repro.relational.sort import SortKey

__version__ = "1.0.0"

# Library logging convention: the "repro.*" hierarchy stays silent
# unless the application configures handlers (PEP 282 / logging HOWTO).
if not _logging.getLogger("repro").handlers:  # pragma: no branch
    _logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "AggregateSpec",
    "Attr",
    "BinOp",
    "Comparison",
    "ComputedColumn",
    "Const",
    "Database",
    "Delta",
    "Deletion",
    "Engine",
    "Equality",
    "Expr",
    "FDBEngine",
    "Having",
    "Insertion",
    "LiveView",
    "MaintenanceStats",
    "Neg",
    "Param",
    "PreparedQuery",
    "Query",
    "QueryBuilder",
    "QueryError",
    "RDBEngine",
    "Relation",
    "Result",
    "Server",
    "Session",
    "SessionClosedError",
    "SessionPool",
    "Snapshot",
    "SnapshotError",
    "SortKey",
    "aggregate",
    "available_engines",
    "col",
    "connect",
    "lit",
    "param",
    "register_engine",
    "serve",
    "__version__",
]

# Engines and the session API are imported lazily to keep the import
# graph acyclic (repro.core modules import the relational substrate;
# repro.api imports both engines).
_LAZY_ATTRIBUTES = {
    "FDBEngine": ("repro.core.engine", "FDBEngine"),
    "RDBEngine": ("repro.relational.engine", "RDBEngine"),
    "Engine": ("repro.api", "Engine"),
    "PreparedQuery": ("repro.api", "PreparedQuery"),
    "QueryBuilder": ("repro.api", "QueryBuilder"),
    "Result": ("repro.api", "Result"),
    "Session": ("repro.api", "Session"),
    "SessionClosedError": ("repro.api", "SessionClosedError"),
    "available_engines": ("repro.api", "available_engines"),
    "connect": ("repro.api", "connect"),
    "register_engine": ("repro.api", "register_engine"),
    "Delta": ("repro.ivm", "Delta"),
    "Deletion": ("repro.ivm", "Deletion"),
    "Insertion": ("repro.ivm", "Insertion"),
    "LiveView": ("repro.ivm", "LiveView"),
    "MaintenanceStats": ("repro.ivm", "MaintenanceStats"),
    "Server": ("repro.server", "Server"),
    "SessionPool": ("repro.server", "SessionPool"),
    "Snapshot": ("repro.database", "Snapshot"),
    "SnapshotError": ("repro.database", "SnapshotError"),
    "serve": ("repro.server", "serve"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_ATTRIBUTES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name), attribute)
    globals()[name] = value  # cache so later lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    # Without this, dir(repro) misses the lazily-provided names above.
    return sorted(set(globals()) | set(__all__))
