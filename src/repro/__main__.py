"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    Regenerate every evaluation figure (Section 6) and print the tables.
``sizes``
    The representation-size study only (fast).
``query SQL``
    Run a SQL query on the generated workload database and report
    times (``--scale`` selects the dataset size, ``--engine`` picks one
    registered engine or ``all``).
``explain SQL``
    Show the chosen engine's plan for a SQL query (``--engine``,
    default ``fdb``: the f-plan with cost bounds).
``advise``
    Rank candidate f-trees for the Section 6 view by the size-bound
    cost metric.
``serve``
    Boot the concurrent HTTP/JSON server over the generated workload
    database (``--port``, ``--pool-size``, ``--engine``); see
    :mod:`repro.server`.
``analyze``
    Run the static-analysis suite: the repo-specific linter over the
    source tree plus semantic verification of every registered view
    and the FULL_WORKLOAD plan corpus (``--json`` writes the findings
    report); see :mod:`repro.analysis`.
``metrics``
    Scrape and pretty-print a live server's ``/metrics`` endpoint
    (``--url``), or run a sample workload locally and print the
    process registry; see :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import sys


def _build_db(scale: float):
    from repro.data.workloads import build_workload_database

    return build_workload_database(scale=scale)


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import experiments

    reports = experiments.run_all(print_tables=True)
    if args.output:
        from repro.bench.reporting import save_reports

        csv_path, json_path = save_reports(reports, args.output)
        print(f"results written to {csv_path} and {json_path}")
    return 0


def cmd_sizes(args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_sizes

    print(run_sizes(scales=args.scales).table)
    return 0


def _check_engine(name: str, extra: tuple[str, ...] = ()) -> int:
    """0 if ``name`` is registered (or in ``extra``), else 2 + message.

    Validation delegates to ``create_engine`` (case-insensitive, emits a
    did-you-mean suggestion) so it happens before the database is built.
    """
    if name in extra:
        return 0
    from repro.api import create_engine

    try:
        create_engine(name)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.api import available_engines, connect
    from repro.sql import parse_query

    if _check_engine(args.engine, extra=("all",)):
        return 2
    session = connect(_build_db(args.scale))
    query = parse_query(args.sql)
    engines = (
        available_engines() if args.engine == "all" else (args.engine,)
    )
    result = None
    for name in engines:
        result = session.execute(query, engine=name)
        print(
            f"{result.engine:<10} {result.seconds * 1000:8.1f} ms  "
            f"{len(result)} rows"
        )
    print()
    print(result.pretty(limit=args.rows))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.api import connect
    from repro.sql import parse_query

    if _check_engine(args.engine):
        return 2
    session = connect(_build_db(args.scale))
    print(session.explain(parse_query(args.sql), engine=args.engine))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import advise
    from repro.core.cost import Hypergraph

    hypergraph = Hypergraph(
        {
            "Orders": ("customer", "date", "package"),
            "Packages": ("package", "item"),
            "Items": ("item", "price"),
        }
    )
    ranked = advise(
        ("customer", "date", "package", "item", "price"),
        hypergraph,
        top=args.top,
    )
    for index, candidate in enumerate(ranked, 1):
        print(f"#{index}: {candidate.describe()}")
        print()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve

    if _check_engine(args.engine):
        return 2
    database = _build_db(args.scale)
    serve(
        database,
        host=args.host,
        port=args.port,
        engine=args.engine,
        pool_size=args.pool_size,
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_analyze

    return run_analyze(args)


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import parse_prometheus, render_prometheus

    if args.url:
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/metrics"
        with urlopen(url, timeout=10) as response:
            text = response.read().decode("utf-8")
        if args.raw:
            print(text, end="")
            return 0
        families = parse_prometheus(text)
        for name in sorted(families):
            family = families[name]
            print(f"{name} ({family['kind']}): {family['help']}")
            for (series, labels), value in sorted(family["samples"].items()):
                label_text = (
                    "{" + ", ".join(f"{k}={v}" for k, v in labels) + "}"
                    if labels
                    else ""
                )
                print(f"  {series}{label_text} = {value}")
        return 0
    # No server to scrape: run a small sample workload so the local
    # registry has something to show, then print the exposition.
    from repro.api import connect
    from repro.sql import parse_query

    session = connect(_build_db(args.scale))
    query = parse_query(
        "SELECT customer, SUM(price) AS revenue "
        "FROM Orders, Packages, Items "
        "GROUP BY customer ORDER BY revenue"
    )
    for _ in range(3):
        session.execute(query, engine="fdb")
    print(render_prometheus(), end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Factorised-database reproduction (VLDB 2013) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="run every figure's experiment"
    )
    experiments.add_argument(
        "--output",
        default="",
        help="directory to write results.csv / results.json into",
    )

    sizes = sub.add_parser("sizes", help="representation-size study")
    sizes.add_argument(
        "--scales",
        type=lambda text: [float(x) for x in text.split(",")],
        default=[0.25, 0.5, 1.0],
    )

    # Engine names are validated inside the handlers (against the live
    # registry) so building the parser stays import-light for the other
    # commands.
    query = sub.add_parser("query", help="run a SQL query on engines")
    query.add_argument("sql")
    query.add_argument("--scale", type=float, default=0.5)
    query.add_argument("--rows", type=int, default=10)
    query.add_argument(
        "--engine",
        default="all",
        help="registered engine name (fdb, rdb, sqlite, ...) or 'all' "
        "(the default)",
    )

    explain = sub.add_parser("explain", help="show an engine's plan")
    explain.add_argument("sql")
    explain.add_argument("--scale", type=float, default=0.25)
    explain.add_argument(
        "--engine",
        default="fdb",
        help="engine whose plan to show (default: fdb)",
    )

    advise_cmd = sub.add_parser("advise", help="rank f-trees for the view")
    advise_cmd.add_argument("--top", type=int, default=3)

    serve_cmd = sub.add_parser(
        "serve", help="serve the workload database over HTTP"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8128)
    serve_cmd.add_argument("--scale", type=float, default=0.5)
    serve_cmd.add_argument("--pool-size", type=int, default=8)
    serve_cmd.add_argument(
        "--engine",
        default="fdb",
        help="engine pooled sessions run on (default: fdb)",
    )

    analyze_cmd = sub.add_parser(
        "analyze", help="lint the source tree and verify views/plans"
    )
    from repro.analysis.cli import add_arguments as add_analyze_arguments

    add_analyze_arguments(analyze_cmd)

    metrics_cmd = sub.add_parser(
        "metrics", help="scrape /metrics, or print the local registry"
    )
    metrics_cmd.add_argument(
        "--url",
        default="",
        help="base URL of a running repro server (e.g. http://127.0.0.1:8128)",
    )
    metrics_cmd.add_argument(
        "--raw",
        action="store_true",
        help="print the scraped exposition verbatim instead of parsing it",
    )
    metrics_cmd.add_argument("--scale", type=float, default=0.25)

    args = parser.parse_args(argv)
    handlers = {
        "experiments": cmd_experiments,
        "sizes": cmd_sizes,
        "query": cmd_query,
        "explain": cmd_explain,
        "advise": cmd_advise,
        "serve": cmd_serve,
        "analyze": cmd_analyze,
        "metrics": cmd_metrics,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
