"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    Regenerate every evaluation figure (Section 6) and print the tables.
``sizes``
    The representation-size study only (fast).
``query SQL``
    Run a SQL query on the generated workload database with every
    engine and report times (``--scale`` selects the dataset size).
``explain SQL``
    Show the FDB f-plan and cost bounds for a SQL query.
``advise``
    Rank candidate f-trees for the Section 6 view by the size-bound
    cost metric.
"""

from __future__ import annotations

import argparse
import sys
import time


def _build_db(scale: float):
    from repro.data.workloads import build_workload_database

    return build_workload_database(scale=scale)


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import experiments

    reports = experiments.run_all(print_tables=True)
    if args.output:
        from repro.bench.reporting import save_reports

        csv_path, json_path = save_reports(reports, args.output)
        print(f"results written to {csv_path} and {json_path}")
    return 0


def cmd_sizes(args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_sizes

    print(run_sizes(scales=args.scales).table)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.core.engine import FDBEngine
    from repro.relational.engine import RDBEngine
    from repro.sql import parse_query

    database = _build_db(args.scale)
    query = parse_query(args.sql)
    for engine in (FDBEngine(), RDBEngine("sort"), RDBEngine("hash")):
        label = getattr(engine, "name", "engine")
        if isinstance(engine, RDBEngine):
            label = f"RDB-{engine.grouping}"
        start = time.perf_counter()
        result = engine.execute(query, database)
        elapsed = time.perf_counter() - start
        print(f"{label:<10} {elapsed * 1000:8.1f} ms  {len(result)} rows")
    print()
    print(result.pretty(limit=args.rows))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.engine import FDBEngine
    from repro.sql import parse_query

    database = _build_db(args.scale)
    print(FDBEngine().explain(parse_query(args.sql), database))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import advise
    from repro.core.cost import Hypergraph

    hypergraph = Hypergraph(
        {
            "Orders": ("customer", "date", "package"),
            "Packages": ("package", "item"),
            "Items": ("item", "price"),
        }
    )
    ranked = advise(
        ("customer", "date", "package", "item", "price"),
        hypergraph,
        top=args.top,
    )
    for index, candidate in enumerate(ranked, 1):
        print(f"#{index}: {candidate.describe()}")
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Factorised-database reproduction (VLDB 2013) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="run every figure's experiment"
    )
    experiments.add_argument(
        "--output",
        default="",
        help="directory to write results.csv / results.json into",
    )

    sizes = sub.add_parser("sizes", help="representation-size study")
    sizes.add_argument(
        "--scales",
        type=lambda text: [float(x) for x in text.split(",")],
        default=[0.25, 0.5, 1.0],
    )

    query = sub.add_parser("query", help="run a SQL query on all engines")
    query.add_argument("sql")
    query.add_argument("--scale", type=float, default=0.5)
    query.add_argument("--rows", type=int, default=10)

    explain = sub.add_parser("explain", help="show the FDB f-plan")
    explain.add_argument("sql")
    explain.add_argument("--scale", type=float, default=0.25)

    advise_cmd = sub.add_parser("advise", help="rank f-trees for the view")
    advise_cmd.add_argument("--top", type=int, default=3)

    args = parser.parse_args(argv)
    handlers = {
        "experiments": cmd_experiments,
        "sizes": cmd_sizes,
        "query": cmd_query,
        "explain": cmd_explain,
        "advise": cmd_advise,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
