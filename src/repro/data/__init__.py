"""Datasets and workloads of the paper's evaluation (Section 6).

- :mod:`repro.data.pizzeria` — the running example of Figure 1
  (Orders/Pizzas/Items and the factorisation over the f-tree T1);
- :mod:`repro.data.generator` — the synthetic scaled dataset
  (Orders/Packages/Items with scale parameter ``s``);
- :mod:`repro.data.workloads` — the thirteen queries of Figure 3
  (AGG: Q1-Q5, AGG+ORD: Q6-Q9, ORD: Q10-Q13) and the materialised
  views R1, R2, R3 they run on.
"""

from repro.data.generator import GeneratorConfig, generate_database
from repro.data.pizzeria import pizzeria_database, pizzeria_view
from repro.data.workloads import WORKLOAD, Workload, build_workload_database

__all__ = [
    "GeneratorConfig",
    "WORKLOAD",
    "Workload",
    "build_workload_database",
    "generate_database",
    "pizzeria_database",
    "pizzeria_view",
]
