"""The pizzeria database of Figure 1 — the paper's running example.

Provides the three base relations, the materialised join view R, and
R's factorisation over the f-tree T1 (pizza → [date → customer,
item → price]), exactly as printed in the paper.
"""

from __future__ import annotations

from repro.core.build import factorise
from repro.core.frep import Factorisation
from repro.core.ftree import FTree, build_ftree
from repro.database import Database
from repro.relational.operators import multiway_join
from repro.relational.relation import Relation

ORDERS_ROWS = [
    ("Mario", "Monday", "Capricciosa"),
    ("Mario", "Tuesday", "Margherita"),
    ("Pietro", "Friday", "Hawaii"),
    ("Lucia", "Friday", "Hawaii"),
    ("Mario", "Friday", "Capricciosa"),
]

PIZZAS_ROWS = [
    ("Margherita", "base"),
    ("Capricciosa", "base"),
    ("Capricciosa", "ham"),
    ("Capricciosa", "mushrooms"),
    ("Hawaii", "base"),
    ("Hawaii", "ham"),
    ("Hawaii", "pineapple"),
]

ITEMS_ROWS = [
    ("base", 6),
    ("ham", 1),
    ("mushrooms", 1),
    ("pineapple", 2),
]


def pizzeria_relations() -> tuple[Relation, Relation, Relation]:
    """The three base relations of Figure 1."""
    orders = Relation(("customer", "date", "pizza"), ORDERS_ROWS, "Orders")
    pizzas = Relation(("pizza", "item"), PIZZAS_ROWS, "Pizzas")
    items = Relation(("item", "price"), ITEMS_ROWS, "Items")
    return orders, pizzas, items


def t1_ftree() -> FTree:
    """The f-tree T1 of Figure 2 with the join's dependency keys."""
    return build_ftree(
        [("pizza", [("date", ["customer"]), ("item", ["price"])])],
        keys={
            "pizza": {"Orders", "Pizzas"},
            "date": {"Orders"},
            "customer": {"Orders"},
            "item": {"Pizzas", "Items"},
            "price": {"Items"},
        },
    )


def pizzeria_view() -> tuple[Relation, Factorisation]:
    """R = Orders ⋈ Pizzas ⋈ Items, flat and factorised over T1."""
    orders, pizzas, items = pizzeria_relations()
    joined = multiway_join([orders, pizzas, items])
    joined.name = "R"
    return joined, factorise(joined, t1_ftree())


def pizzeria_database() -> Database:
    """A database with the base relations plus R in both forms."""
    orders, pizzas, items = pizzeria_relations()
    database = Database([orders, pizzas, items])
    joined, factorised = pizzeria_view()
    database.add_relation(joined)
    database.add_factorised("R", factorised)
    return database
