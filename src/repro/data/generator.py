"""Synthetic scaled dataset of Section 6.

Three relations generalising the pizzeria schema:

    Orders(customer, date, package)
    Packages(package, item)
    Items(item, price)

Scaling parameter ``s`` follows the paper's description:

- the number of dates on which orders are placed is ``800·s``;
- the average number of orders per order date is 2, with a binomial
  distribution (so |Orders| ≈ 1600·s and, with 20 customers, each
  customer orders on ≈ 80·s dates — the paper's other stated average);
- there are ``100·√s`` items and ``40·√s`` packages of ``20·√s`` items
  on average (binomial).

The natural join R1 = Orders ⋈ Packages ⋈ Items therefore grows by an
extra ``√s`` factor (≈ items per package) over its factorisation: the
paper's succinctness gap, whose measured exponents the sizes benchmark
reports (see EXPERIMENTS.md for paper-vs-measured exponents).

Generation is deterministic per (scale, seed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.relational.relation import Relation


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the Section 6 generator (defaults = the paper's text)."""

    scale: float = 1.0
    seed: int = 2013  # the paper's year; any fixed value works
    customers: int = 20
    dates_per_scale: int = 800
    orders_per_date: float = 2.0
    items_per_sqrt_scale: int = 100
    packages_per_sqrt_scale: int = 40
    package_size_per_sqrt_scale: int = 20
    max_price: int = 20

    @property
    def n_dates(self) -> int:
        return max(1, round(self.dates_per_scale * self.scale))

    @property
    def n_items(self) -> int:
        return max(1, round(self.items_per_sqrt_scale * math.sqrt(self.scale)))

    @property
    def n_packages(self) -> int:
        return max(
            1, round(self.packages_per_sqrt_scale * math.sqrt(self.scale))
        )

    @property
    def package_size(self) -> int:
        return max(
            1,
            round(self.package_size_per_sqrt_scale * math.sqrt(self.scale)),
        )


@dataclass
class GeneratedData:
    """The three relations plus the labels used to build them."""

    orders: Relation
    packages: Relation
    items: Relation
    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    def relations(self) -> tuple[Relation, Relation, Relation]:
        return self.orders, self.packages, self.items


def _binomial(rng: random.Random, mean: float, spread: int = 2) -> int:
    """A binomial draw with the given mean: Binomial(spread·mean, 1/spread)."""
    trials = max(1, round(mean * spread))
    probability = mean / trials
    return sum(1 for _ in range(trials) if rng.random() < probability)


def generate(config: GeneratorConfig) -> GeneratedData:
    """Generate the dataset for one scale factor."""
    # String seeds hash deterministically across processes (unlike tuple
    # hashes, which PYTHONHASHSEED randomises).
    rng = random.Random(f"{config.seed}/{config.scale!r}")

    customers = [f"c{i:03d}" for i in range(config.customers)]
    dates = [f"d{i:07d}" for i in range(config.n_dates)]
    item_names = [f"i{i:05d}" for i in range(config.n_items)]
    package_names = [f"p{i:05d}" for i in range(config.n_packages)]

    items = Relation(
        ("item", "price"),
        [(item, rng.randint(1, config.max_price)) for item in item_names],
        name="Items",
    )

    package_rows: list[tuple[str, str]] = []
    for package in package_names:
        size = min(
            config.n_items, max(1, _binomial(rng, config.package_size))
        )
        for item in rng.sample(item_names, size):
            package_rows.append((package, item))
    packages = Relation(("package", "item"), package_rows, name="Packages")

    order_rows: set[tuple[str, str, str]] = set()
    for date in dates:
        for _ in range(_binomial(rng, config.orders_per_date)):
            order_rows.add(
                (
                    rng.choice(customers),
                    date,
                    rng.choice(package_names),
                )
            )
    orders = Relation(
        ("customer", "date", "package"), sorted(order_rows), name="Orders"
    )
    return GeneratedData(orders, packages, items, config)


def generate_database(scale: float = 1.0, seed: int = 2013) -> GeneratedData:
    """Convenience wrapper: generate at a scale with default knobs."""
    return generate(GeneratorConfig(scale=scale, seed=seed))
