"""The thirteen workload queries of Figure 3 and their materialised views.

    R1 = Orders ⋈ Items ⋈ Packages                 (factorised over T)
    R2 = o_{package, date, item}(R1)               (sorted view of R1)
    R3 = o_{date, customer, package}(Orders)       (sorted view of Orders)

    AGG      Q1 = ϖ_{package, date, customer; sum(price)}(R1)
             Q2 = ϖ_{customer; revenue ← sum(price)}(R1)
             Q3 = ϖ_{date, package; sum(price)}(R1)
             Q4 = ϖ_{package; sum(price)}(R1)
             Q5 = ϖ_{sum(price)}(R1)
    AGG+ORD  Q6 = o_customer(Q2)
             Q7 = o_revenue(Q2)
             Q8 = o_{date, package}(Q3)
             Q9 = o_{package, date}(Q3)
    ORD      Q10 = R2  (enumerated in its own order)
             Q11 = o_{package, item, date}(R2)
             Q12 = o_{date, package, item}(R2)
             Q13 = o_{customer, date, package}(R3)

The factorised views use the Section 6 f-tree T: package at the root
with the date → customer and item → price branches, mirroring T1 of the
introduction with pizza replaced by package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.build import factorise, factorise_path
from repro.core.ftree import FTree, build_ftree
from repro.data.generator import GeneratedData, GeneratorConfig, generate
from repro.database import Database
from repro.query import Query, aggregate
from repro.relational.operators import multiway_join
from repro.relational.sort import SortKey, sort_relation


def section6_ftree() -> FTree:
    """The f-tree T of Section 6 for R1 (package root, two branches)."""
    return build_ftree(
        [("package", [("date", ["customer"]), ("item", ["price"])])],
        keys={
            "package": {"Orders", "Packages"},
            "date": {"Orders"},
            "customer": {"Orders"},
            "item": {"Packages", "Items"},
            "price": {"Items"},
        },
    )


@dataclass
class Workload:
    """One named query of Figure 3 with its experiment group."""

    name: str
    group: str  # "AGG", "AGG+ORD" or "ORD"
    query: Query

    def __str__(self) -> str:
        return f"{self.name} [{self.group}]: {self.query}"


def _sum_price(*group: str, alias: str = "sum(price)") -> tuple:
    return (aggregate("sum", "price", alias),)


def figure3_queries() -> dict[str, Workload]:
    """All thirteen queries, keyed Q1..Q13."""
    queries: dict[str, Workload] = {}

    def add(name: str, group: str, query: Query) -> None:
        queries[name] = Workload(name, group, query)

    # -- AGG ------------------------------------------------------------
    add(
        "Q1",
        "AGG",
        Query(
            relations=("R1",),
            group_by=("package", "date", "customer"),
            aggregates=_sum_price(),
            name="Q1",
        ),
    )
    add(
        "Q2",
        "AGG",
        Query(
            relations=("R1",),
            group_by=("customer",),
            aggregates=(aggregate("sum", "price", "revenue"),),
            name="Q2",
        ),
    )
    add(
        "Q3",
        "AGG",
        Query(
            relations=("R1",),
            group_by=("date", "package"),
            aggregates=_sum_price(),
            name="Q3",
        ),
    )
    add(
        "Q4",
        "AGG",
        Query(
            relations=("R1",),
            group_by=("package",),
            aggregates=_sum_price(),
            name="Q4",
        ),
    )
    add(
        "Q5",
        "AGG",
        Query(relations=("R1",), aggregates=_sum_price(), name="Q5"),
    )

    # -- AGG+ORD ---------------------------------------------------------
    add("Q6", "AGG+ORD", queries["Q2"].query.with_order(["customer"]))
    add("Q7", "AGG+ORD", queries["Q2"].query.with_order(["revenue"]))
    add("Q8", "AGG+ORD", queries["Q3"].query.with_order(["date", "package"]))
    add("Q9", "AGG+ORD", queries["Q3"].query.with_order(["package", "date"]))
    for name in ("Q6", "Q7", "Q8", "Q9"):
        queries[name] = Workload(
            name, "AGG+ORD", _renamed(queries[name].query, name)
        )

    # -- ORD --------------------------------------------------------------
    add(
        "Q10",
        "ORD",
        Query(
            relations=("R2",),
            order_by=(SortKey("package"), SortKey("date"), SortKey("item")),
            name="Q10",
        ),
    )
    add(
        "Q11",
        "ORD",
        Query(
            relations=("R2",),
            order_by=(SortKey("package"), SortKey("item"), SortKey("date")),
            name="Q11",
        ),
    )
    add(
        "Q12",
        "ORD",
        Query(
            relations=("R2",),
            order_by=(SortKey("date"), SortKey("package"), SortKey("item")),
            name="Q12",
        ),
    )
    add(
        "Q13",
        "ORD",
        Query(
            relations=("R3",),
            order_by=(
                SortKey("customer"),
                SortKey("date"),
                SortKey("package"),
            ),
            name="Q13",
        ),
    )
    return queries


def _renamed(query: Query, name: str) -> Query:
    from dataclasses import replace

    return replace(query, name=name)


def expression_queries() -> dict[str, Workload]:
    """Expression-aggregate workloads (group "EXPR", beyond Figure 3).

    Section 3.2 evaluates aggregates over arithmetic expressions on
    the factorisation; these queries exercise the expression surface
    end to end — linear arithmetic, products of a repeated attribute,
    composite averages, computed output columns, and expression
    selections — over the same scaled views as Q1–Q13.
    """
    from repro.expr import col
    from repro.query import Comparison, ComputedColumn

    price = col("price")
    queries: dict[str, Workload] = {}

    def add(name: str, query: Query) -> None:
        queries[name] = Workload(name, "EXPR", query)

    add(
        "E1",
        Query(
            relations=("R1",),
            group_by=("customer",),
            aggregates=(aggregate("sum", price * 2 + 1, "adjusted"),),
            name="E1",
        ),
    )
    add(
        "E2",
        Query(
            relations=("R1",),
            group_by=("package",),
            aggregates=(aggregate("sum", price * price, "sum_sq"),),
            name="E2",
        ),
    )
    add(
        "E3",
        Query(
            relations=("R1",),
            group_by=("date",),
            aggregates=(aggregate("avg", price * 3 - 1, "mean_scaled"),),
            name="E3",
        ),
    )
    add(
        "E4",
        Query(
            relations=("R1",),
            projection=("customer",),
            computed=(ComputedColumn(price / 2, "half_price"),),
            name="E4",
        ),
    )
    add(
        "E5",
        Query(
            relations=("R1",),
            comparisons=(Comparison(price * 2, ">", 20),),
            group_by=("customer",),
            aggregates=(aggregate("sum", "price", "revenue"),),
            name="E5",
        ),
    )
    return queries


WORKLOAD = figure3_queries()

AGG_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5")
AGG_ORD_QUERIES = ("Q6", "Q7", "Q8", "Q9")
ORD_QUERIES = ("Q10", "Q11", "Q12", "Q13")

EXPRESSION_WORKLOAD = expression_queries()
EXPRESSION_QUERIES = tuple(EXPRESSION_WORKLOAD)

#: The full catalogue: Figure 3 plus the expression workloads.
FULL_WORKLOAD = {**WORKLOAD, **EXPRESSION_WORKLOAD}


def build_workload_database(
    scale: float = 1.0,
    seed: int = 2013,
    materialise_views: bool = True,
    data: GeneratedData | None = None,
) -> Database:
    """Database with the generated base relations and views R1, R2, R3.

    ``materialise_views`` registers both representations of each view:
    flat (for the relational engines) and factorised (for FDB) — the
    read-optimised scenario of the paper.  R1/R2 share the Section 6
    f-tree T (which supports both Q10's and Q11's orders — the paper's
    "simultaneous support for several orders"); R3 is a path
    factorisation of Orders in its sort order.
    """
    if data is None:
        data = generate(GeneratorConfig(scale=scale, seed=seed))
    database = Database(data.relations())
    if not materialise_views:
        return database

    r1 = multiway_join([data.orders, data.packages, data.items])
    r1 = sort_relation(r1, ["package", "date", "item"])
    r1.name = "R1"
    database.add_relation(r1)
    database.add_factorised("R1", factorise(r1, section6_ftree()))

    r2 = sort_relation(r1, ["package", "date", "item"])
    r2.name = "R2"
    database.add_relation(r2)
    database.add_factorised("R2", factorise(r2, section6_ftree()))

    r3 = sort_relation(data.orders, ["date", "customer", "package"])
    r3.name = "R3"
    database.add_relation(r3)
    database.add_factorised(
        "R3",
        factorise_path(r3, key="Orders", order=["date", "customer", "package"]),
    )
    return database
