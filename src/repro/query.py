"""The shared query AST consumed by every engine in the repository.

The paper evaluates queries of the shape

    Q = o_L ( ϖ_{G; α←F} ( σ_{A1=B1, ..., Am=Bm, φ} (R1 × ... × Rn) ) )

optionally wrapped in a limit operator λ_k (Section 5.1).  This module
defines a small, engine-neutral representation of exactly that class —
products of relations, conjunctive equality and constant selections,
grouping with (possibly several) aggregation functions, ordering with
per-attribute direction, and limit — plus SQL ``HAVING`` conditions,
which the paper notes are reducible to an extra aggregate and a final
selection (Section 2).

Three executors consume this AST:

- :class:`repro.core.engine.FDBEngine` (factorised evaluation),
- :class:`repro.relational.engine.RDBEngine` (flat evaluation),
- :mod:`repro.bench.engines` (translation to SQL text for ``sqlite3``).

Attribute names must be globally unique across the input relations, as
in the paper's formulation; joins are expressed as explicit equality
conditions.  :func:`natural_equalities` builds the explicit form for
natural joins over same-named attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.expr import Attr, Expr, Param, UnboundParamError, as_expr
from repro.relational.sort import SortKey, normalise_order

AGGREGATE_FUNCTIONS = ("sum", "count", "min", "max", "avg")
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class QueryError(ValueError):
    """Raised for malformed queries (unknown attributes, bad specs...)."""


def _normalise_target(value: "str | Expr | None") -> "str | Expr | None":
    """Canonical form of an expression-or-attribute slot.

    Bare attribute references collapse to their name (the historical
    string form every engine already understands); composite
    expressions stay expression trees.
    """
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, Attr):
        return value.name
    if isinstance(value, Expr):
        return value
    raise QueryError(
        f"expected an attribute name or expression, got {value!r}"
    )


def target_attributes(target: "str | Expr | None") -> tuple[str, ...]:
    """Attribute names referenced by an attribute-or-expression slot."""
    if target is None:
        return ()
    if isinstance(target, str):
        return (target,)
    return target.attributes()


@dataclass(frozen=True)
class Comparison:
    """A constant selection condition ``target op value`` (φ).

    ``attribute`` is an attribute name in the classical case; it may
    also be a scalar :class:`repro.expr.Expr` (``col("price") *
    col("qty") > 100``), which engines evaluate row-wise.
    """

    attribute: "str | Expr"
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")
        object.__setattr__(
            self, "attribute", _normalise_target(self.attribute)
        )
        if self.attribute is None:
            raise QueryError("comparison needs an attribute or expression")

    @property
    def is_expression(self) -> bool:
        return isinstance(self.attribute, Expr)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names the condition reads."""
        return target_attributes(self.attribute)

    def test(self, value: Any) -> bool:
        """Evaluate the condition against a concrete value."""
        if isinstance(self.value, Param):
            raise UnboundParamError(
                f"parameter :{self.value.name} is unbound; bind it "
                "through a prepared query before executing"
            )
        op = self.op
        if op == "=":
            return value == self.value
        if op == "!=":
            return value != self.value
        if op == "<":
            return value < self.value
        if op == "<=":
            return value <= self.value
        if op == ">":
            return value > self.value
        return value >= self.value

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Equality:
    """An equality selection ``left = right`` between two attributes."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregation function application ``alias ← function(argument)``.

    ``attribute`` is ``None`` only for ``count`` (tuple counting); it is
    an attribute name for the classical single-attribute aggregates, or
    a scalar :class:`repro.expr.Expr` for expression aggregates such as
    ``SUM(price * qty)`` (Section 3.2 evaluates these directly on the
    factorisation).  Plain strings and bare ``col(...)`` references are
    interchangeable; ``avg`` is internally evaluated as the pair
    (sum, count) per Section 3.2.4.
    """

    function: str
    attribute: "str | Expr | None"
    alias: str

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise QueryError(f"unknown aggregation function {self.function!r}")
        object.__setattr__(
            self, "attribute", _normalise_target(self.attribute)
        )
        if self.attribute is None and self.function != "count":
            raise QueryError(f"{self.function} requires an attribute")
        if not self.alias:
            raise QueryError("aggregate needs a result alias")

    @property
    def is_expression(self) -> bool:
        """Whether the argument is a composite scalar expression."""
        return isinstance(self.attribute, Expr)

    @property
    def expression(self) -> "Expr | None":
        """The argument as an expression tree (None for ``count(*)``)."""
        if self.attribute is None:
            return None
        return as_expr(self.attribute)

    @property
    def source_attributes(self) -> tuple[str, ...]:
        """Attribute names the aggregate reads."""
        return target_attributes(self.attribute)

    def __str__(self) -> str:
        arg = str(self.attribute) if self.attribute is not None else "*"
        return f"{self.alias} ← {self.function}({arg})"


@dataclass(frozen=True)
class ComputedColumn:
    """A computed output column ``alias ← expression`` (no aggregation).

    Appears after the plain projection columns in the output schema of
    select-project-join queries; every engine evaluates the expression
    row-wise over the joined input.
    """

    expression: Expr
    alias: str

    def __post_init__(self) -> None:
        expression = as_expr(self.expression)
        object.__setattr__(self, "expression", expression)
        if not self.alias:
            object.__setattr__(self, "alias", str(expression))

    @property
    def source_attributes(self) -> tuple[str, ...]:
        return self.expression.attributes()

    def __str__(self) -> str:
        return f"{self.alias} ← {self.expression}"


@dataclass(frozen=True)
class Having:
    """A HAVING conjunct: condition on an aggregate alias or group attr."""

    target: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def test(self, value: Any) -> bool:
        return Comparison(self.target, self.op, self.value).test(value)


@dataclass(frozen=True)
class Query:
    """A query in the class of Section 5.1 (plus HAVING and DISTINCT).

    Fields mirror the paper's canonical form; empty tuples mean "absent".
    ``projection`` supports plain select-project-join queries: when it is
    set and no aggregates are present, the result is the projection of
    the join.  With aggregates, the output schema is ``group_by`` columns
    followed by aggregate aliases, as in SQL.
    """

    relations: tuple[str, ...]
    equalities: tuple[Equality, ...] = ()
    comparisons: tuple[Comparison, ...] = ()
    projection: tuple[str, ...] | None = None
    computed: tuple[ComputedColumn, ...] = ()
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    having: tuple[Having, ...] = ()
    order_by: tuple[SortKey, ...] = ()
    limit: int | None = None
    distinct: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if not self.relations:
            raise QueryError("query needs at least one input relation")
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be non-negative")
        aliases = [spec.alias for spec in self.aggregates]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aggregate aliases in {aliases}")
        if self.having and not self.aggregates:
            raise QueryError("HAVING requires aggregates")
        if self.computed:
            if self.aggregates:
                raise QueryError(
                    "computed columns cannot be combined with aggregates; "
                    "use an expression aggregate instead"
                )
            taken = list(self.projection or ())
            for column in self.computed:
                if column.alias in taken:
                    raise QueryError(
                        f"duplicate output column {column.alias!r}"
                    )
                taken.append(column.alias)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def output_schema(self) -> tuple[str, ...]:
        """Attribute names of the query result, in output order."""
        if self.aggregates:
            return tuple(self.group_by) + tuple(
                spec.alias for spec in self.aggregates
            )
        if self.computed:
            return tuple(self.projection or ()) + tuple(
                column.alias for column in self.computed
            )
        if self.projection is not None:
            return tuple(self.projection)
        return ()  # all join attributes; engines resolve against the data

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    @property
    def order_attributes(self) -> tuple[str, ...]:
        return tuple(key.attribute for key in self.order_by)

    def referenced_attributes(self) -> set[str]:
        """Every attribute name the query mentions (for validation)."""
        attrs: set[str] = set()
        for eq in self.equalities:
            attrs.update((eq.left, eq.right))
        for c in self.comparisons:
            attrs.update(c.attributes)
        if self.projection:
            attrs.update(self.projection)
        attrs.update(self.group_by)
        for spec in self.aggregates:
            attrs.update(spec.source_attributes)
        for column in self.computed:
            attrs.update(column.source_attributes)
        aliases = {spec.alias for spec in self.aggregates}
        aliases.update(column.alias for column in self.computed)
        attrs.update(
            key.attribute
            for key in self.order_by
            if key.attribute not in aliases
        )
        return attrs

    def with_order(self, order: Sequence) -> "Query":
        """Copy of this query with a different order-by list."""
        return replace(self, order_by=tuple(normalise_order(order)))

    def with_limit(self, k: int) -> "Query":
        """Copy of this query wrapped in λ_k."""
        return replace(self, limit=k)

    def __str__(self) -> str:
        parts = [f"Q({', '.join(self.relations)}"]
        if self.equalities or self.comparisons:
            conds = [str(c) for c in self.equalities + self.comparisons]
            parts.append(f"; σ[{' ∧ '.join(conds)}]")
        if self.aggregates:
            aggs = ", ".join(str(a) for a in self.aggregates)
            parts.append(f"; ϖ[{', '.join(self.group_by)}; {aggs}]")
        elif self.projection is not None or self.computed:
            columns = list(self.projection or ()) + [
                str(c) for c in self.computed
            ]
            parts.append(f"; π[{', '.join(columns)}]")
        if self.order_by:
            parts.append(f"; o[{', '.join(str(k) for k in self.order_by)}]")
        if self.limit is not None:
            parts.append(f"; λ{self.limit}")
        return "".join(parts) + ")"


def aggregate(
    function: str, attribute: "str | Expr | None" = None, alias: str = ""
) -> AggregateSpec:
    """Convenience constructor: ``aggregate("sum", "price", "revenue")``.

    The argument may be a scalar expression:
    ``aggregate("sum", col("price") * col("qty"), "revenue")``.
    """
    if not alias:
        alias = f"{function}({attribute if attribute is not None else '*'})"
    return AggregateSpec(function, attribute, alias)


def natural_equalities(
    schemas: dict[str, Sequence[str]], relations: Iterable[str]
) -> tuple[dict[str, dict[str, str]], list[Equality]]:
    """Explicit-equality form of a natural join over same-named attributes.

    Returns per-relation rename maps (making attribute names globally
    unique: the second and later occurrences of a name ``A`` become
    ``A#2``, ``A#3``...) and the equality conditions tying them back
    together.
    """
    seen: dict[str, int] = {}
    renames: dict[str, dict[str, str]] = {}
    equalities: list[Equality] = []
    first_name: dict[str, str] = {}
    for rel in relations:
        mapping: dict[str, str] = {}
        for attr in schemas[rel]:
            count = seen.get(attr, 0) + 1
            seen[attr] = count
            if count == 1:
                first_name[attr] = attr
            else:
                fresh = f"{attr}#{count}"
                mapping[attr] = fresh
                equalities.append(Equality(first_name[attr], fresh))
        renames[rel] = mapping
    return renames, equalities
