"""The first-class query result of the unified session API.

A :class:`Result` bundles everything one execution produced: the rows
(materialised lazily when the engine returned a factorisation), the
factorised representation when available, the chosen f-plan, explain
text, and wall-clock/size statistics.  It replaces the old pattern of
reading ``FDBEngine.last_plan`` after ``execute`` — each result carries
the plan that produced *it*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.engine import FactorisedResult
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.fplan import ExecutionTrace, FPlan
    from repro.query import Query


@dataclass(frozen=True)
class ResultStats:
    """Wall-clock and size statistics of one execution.

    ``rows`` is ``None`` while a factorised result has not been
    flattened — counting would force full enumeration, defeating the
    succinctness of the representation.  ``len(result)`` materialises
    and counts explicitly.
    """

    engine: str
    seconds: float
    rows: int | None
    singletons: int | None = None  # factorised size, when available

    def __str__(self) -> str:
        text = f"{self.engine}: {self.seconds * 1000:.1f} ms"
        if self.rows is not None:
            text += f", {self.rows} rows"
        if self.singletons is not None:
            text += f", {self.singletons} singletons"
        return text


class Result:
    """Unified query result, independent of the engine that produced it.

    Attributes
    ----------
    query:
        the :class:`repro.query.Query` that was executed;
    engine:
        display name of the backend (``"FDB"``, ``"RDB-sort"``, ...);
    plan:
        the compiled :class:`repro.core.fplan.FPlan` (FDB backends only);
    trace:
        the per-step :class:`~repro.core.fplan.ExecutionTrace`, if any;
    factorised:
        the :class:`~repro.core.engine.FactorisedResult` when the engine
        produced factorised output, else ``None``;
    lifecycle:
        the :class:`repro.plan.prepared.LifecycleInfo` of the execution
        (plan/result cache outcomes and prepare-vs-run timings) when the
        result came through the prepared-query lifecycle, else ``None``;
    span:
        the finished root :class:`repro.obs.Span` of this execution when
        observability was enabled (set by the prepared-query lifecycle),
        else ``None``.  ``explain()`` renders it as a tree;
        :meth:`trace_json` exports it.
    """

    def __init__(
        self,
        query: "Query",
        engine: str,
        *,
        relation: Relation | None = None,
        factorised: FactorisedResult | None = None,
        plan: "FPlan | None" = None,
        trace: "ExecutionTrace | None" = None,
        explain_fn: Callable[[], str] | None = None,
        seconds: float = 0.0,
        maintenance=None,
        lifecycle=None,
    ) -> None:
        if relation is None and factorised is None:
            raise ValueError("a Result needs a relation or a factorisation")
        self.query = query
        self.engine = engine
        self.plan = plan
        self.trace = trace
        self.seconds = seconds
        self.factorised = factorised
        self.maintenance = maintenance
        self.lifecycle = lifecycle
        self._relation = relation
        self._explain_fn = explain_fn
        self._explain_text: str | None = None
        self.span = None  # root repro.obs.Span, attached post-construction

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def to_relation(self) -> Relation:
        """The flat result, materialising a factorisation on first use."""
        if self._relation is None:
            assert self.factorised is not None
            self._relation = self.factorised.to_relation(
                self.query.name or "result"
            )
        return self._relation

    @property
    def relation(self) -> Relation:
        return self.to_relation()

    @property
    def schema(self) -> tuple[str, ...]:
        if self._relation is not None:
            return self._relation.schema
        assert self.factorised is not None
        return self.factorised.output_schema

    @property
    def rows(self) -> list[tuple]:
        return self.to_relation().rows

    def __iter__(self) -> Iterator[tuple]:
        # Stream straight from the factorisation when the flat form has
        # not been materialised (constant-delay enumeration).
        if self._relation is None and self.factorised is not None:
            return self.factorised.iter_tuples()
        return iter(self.to_relation().rows)

    def __len__(self) -> int:
        return len(self.to_relation())

    def first(self) -> tuple | None:
        """The first result tuple, or ``None`` on an empty result."""
        for row in self:
            return row
        return None

    def as_dicts(self) -> list[dict[str, Any]]:
        return self.to_relation().as_dicts()

    def pretty(self, limit: int = 20) -> str:
        return self.to_relation().pretty(limit=limit)

    # ------------------------------------------------------------------
    # Comparison (cross-engine parity checks)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Result):
            other = other.to_relation()
        elif isinstance(other, FactorisedResult):
            other = other.to_relation()
        if isinstance(other, Relation):
            return self.to_relation() == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable container

    # ------------------------------------------------------------------
    # Plan and stats
    # ------------------------------------------------------------------
    def explain(self) -> str:
        """The engine's explain text for this query (computed lazily).

        Executions that evaluated scalar expressions append provenance
        lines: which aliases were computed from which expression, and —
        for the factorised engine — whether evaluation distributed over
        independent branches or fell back to localised flattening.
        """
        if self._explain_text is None:
            if self._explain_fn is not None:
                self._explain_text = self._explain_fn()
            else:
                self._explain_text = f"{self.engine}: {self.query}"
            provenance = self._expression_provenance()
            if provenance:
                self._explain_text += "\n" + "\n".join(provenance)
        text = self._explain_text
        if self.lifecycle is not None:
            text += "\n" + self.lifecycle.describe()
        if self.maintenance is not None:
            # Appended outside the cache: the live stats keep counting.
            text += f"\nmaintenance: {self.maintenance.describe()}"
        optimizer = self._optimizer_provenance(text)
        if optimizer:
            text += "\n" + "\n".join(optimizer)
        if self.trace is not None and getattr(self.trace, "seconds", None):
            # EXPLAIN ANALYZE: per-step wall time and intermediate sizes.
            text += "\n" + self.trace.describe()
        if self.span is not None:
            text += (
                f"\nspan tree (trace {self.span.trace_id}):\n"
                + self.span.render()
            )
        return text

    def trace_json(self) -> str | None:
        """The execution's span tree as a JSON document, or ``None``
        when observability was disabled for this query."""
        if self.span is None:
            return None
        import json

        return json.dumps(self.span.to_dict(), indent=2)

    @property
    def expression_stats(self):
        """The engine's :class:`~repro.core.aggregates.ExpressionStats`
        for this execution, or ``None`` (non-FDB engines, or queries
        without expressions)."""
        return getattr(self.trace, "expression_stats", None)

    def _optimizer_provenance(self, existing: str) -> list[str]:
        """Estimated vs. observed cost lines for the executed plan.

        The engine stamps the trace with the optimiser's provenance
        (strategy, estimated result size in singletons, statistics
        sources); the trace's per-step sizes give the observed side.
        Engines whose explain text already names the optimiser and the
        statistics sources (the FDB compile describe) contribute only
        the estimated-vs-observed line here.
        """
        provenance = getattr(self.trace, "provenance", None)
        if not provenance:
            return []
        lines = []
        if "optimizer:" not in existing:
            lines.append(f"optimizer: {provenance['strategy']}")
        estimated = provenance.get("estimated_size")
        sizes = getattr(self.trace, "sizes", None) or []
        if estimated is not None:
            observed = (
                f", observed {sizes[-1]} (peak {max(sizes)})" if sizes else ""
            )
            lines.append(
                f"cost: estimated {estimated:.0f} singletons{observed}"
            )
        sources = provenance.get("stats")
        if sources and "statistics:" not in existing:
            rendered = ", ".join(
                f"{name} ({source}, {rows} rows)"
                for name, (source, rows) in sources.items()
            )
            lines.append(f"statistics: {rendered}")
        return lines

    def _expression_provenance(self) -> list[str]:
        lines: list[str] = []
        for spec in self.query.aggregates:
            if spec.is_expression:
                lines.append(
                    f"expression: {spec.alias} ← "
                    f"{spec.function}({spec.expression})"
                )
        for column in self.query.computed:
            lines.append(f"expression: {column.alias} ← {column.expression}")
        for condition in self.query.comparisons:
            if condition.is_expression:
                lines.append(f"expression: σ[{condition}]")
        stats = self.expression_stats
        if lines and stats is not None:
            lines.append(f"expression evaluation: {stats.describe()}")
        return lines

    @property
    def stats(self) -> ResultStats:
        return ResultStats(
            engine=self.engine,
            seconds=self.seconds,
            rows=len(self._relation) if self._relation is not None else None,
            singletons=(
                self.factorised.size() if self.factorised is not None else None
            ),
        )

    def __repr__(self) -> str:
        shape = (
            "factorised"
            if self.factorised is not None and self._relation is None
            else f"{len(self.to_relation())} rows"
        )
        return (
            f"Result(engine={self.engine!r}, {shape}, "
            f"seconds={self.seconds:.4f})"
        )
