"""Small shared helpers for the session API."""

from __future__ import annotations

import difflib
from typing import Iterable


def suggest(name: str, candidates: Iterable[str]) -> str:
    """A ``" — did you mean 'x'?"`` suffix, or ``""`` with no close match."""
    close = difflib.get_close_matches(name, list(candidates), n=1)
    return f" — did you mean {close[0]!r}?" if close else ""
