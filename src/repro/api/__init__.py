"""repro.api — the unified session API.

The canonical way to use the library: :func:`connect` opens a
:class:`Session` over a database, :meth:`Session.query` starts a
fluent, immutable :class:`QueryBuilder`, execution goes through a
pluggable engine registry, and every run returns a first-class
:class:`Result` carrying rows, the factorised representation when
available, the chosen f-plan, explain text, and timing statistics::

    from repro import connect
    from repro.data.pizzeria import pizzeria_database

    session = connect(pizzeria_database())          # engine="fdb"
    result = (session.query("R")
              .group_by("customer")
              .sum("price", "revenue")
              .order_by("revenue", desc=True)
              .limit(3)
              .run())
    print(result.pretty())
    print(result.plan)        # the f-plan that produced this result
    print(result.stats)       # wall-clock / row / singleton counts

    same = session.execute(result.query, engine="sqlite")
    assert result == same     # cross-engine parity

Additional backends register through :func:`register_engine`; see
:mod:`repro.api.engines` for the built-in line-up.
"""

from repro.api.builder import QueryBuilder
from repro.api.engines import (
    Engine,
    EngineRun,
    available_engines,
    create_engine,
    register_engine,
)
from repro.api.result import Result, ResultStats
from repro.api.session import Session, SessionClosedError, connect
from repro.plan.prepared import LifecycleInfo, PreparedQuery

__all__ = [
    "Engine",
    "EngineRun",
    "LifecycleInfo",
    "PreparedQuery",
    "QueryBuilder",
    "Result",
    "ResultStats",
    "Session",
    "SessionClosedError",
    "available_engines",
    "connect",
    "create_engine",
    "register_engine",
]
