"""The session facade: one object owning a database and an engine choice.

:func:`connect` is the front door of the library::

    from repro import col, connect

    session = connect(pizzeria_database())          # default engine: fdb
    top = (session.query("R")
           .group_by("customer")
           .sum("price", "revenue")
           .order_by("revenue", desc=True)
           .limit(3)
           .run())
    print(top.pretty())
    print(top.explain())

Aggregates and selections accept scalar expressions built with
:func:`repro.col`; the factorised engine distributes them over
independent branches (Section 3.2)::

    session.query("Orders").group_by("customer").sum(
        col("price") * col("qty"), alias="revenue"
    ).run()

A session caches one prepared backend instance per engine name, so
e.g. the sqlite backend loads the database once and reuses the
connection across queries.  Every cached backend is checked against
the database's version stamp before each use: after a mutation, the
pending changes are delta-forwarded to backends that support it (the
sqlite connection receives the corresponding INSERT/DELETE statements)
and the rest re-prepare — a stale backend can never serve a query.

Sessions are also the write path.  :meth:`Session.insert`,
:meth:`Session.delete` and :meth:`Session.apply` mutate the database
through the delta subsystem (keeping factorised views incrementally
maintained), and :meth:`Session.watch` returns a
:class:`repro.ivm.view.LiveView` whose aggregates stay fresh under
those mutations::

    live = session.watch(
        session.query("R").group_by("customer").sum("price", "revenue")
    )
    session.insert("Orders", [("Lucia", "Monday", "Margherita")])
    print(live.result.pretty())   # already reflects the new order
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence, Union

from repro.api.builder import QueryBuilder
from repro.api.engines import Engine, available_engines, create_engine
from repro.api.result import Result
from repro.api.util import suggest
from repro.database import ApplyReport, Database
from repro.query import Query, QueryError
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.frep import Factorisation
    from repro.ivm.delta import Delta
    from repro.ivm.view import LiveView

Queryish = Union[Query, QueryBuilder, str]


class Session:
    """Owns a database, a default engine, and per-query options.

    Parameters
    ----------
    database:
        the catalogue queries run against (shared, not copied);
    engine:
        default backend — a registry name (``"fdb"``, ``"rdb"``,
        ``"sqlite"``, ...) or an :class:`~repro.api.engines.Engine`
        instance;
    engine_options:
        forwarded to the registry factory of the default engine
        (e.g. ``optimizer="exhaustive"`` for FDB, or the
        ``shards=``/``workers=`` knobs of ``fdb-parallel``).

    Sessions are context managers: backends may hold real resources
    (the sqlite connection, the parallel engine's shard stores and
    worker pools), and :meth:`close` releases them.  A closed session
    remains usable — backends re-prepare on the next query.
    """

    def __init__(
        self, database: Database, engine: "str | Engine" = "fdb", **engine_options
    ) -> None:
        self.database = database
        self._default_engine: "str | Engine" = engine
        self._default_options = engine_options
        self._engines: dict = {}
        # Engine instances this session prepared, with the database
        # version each one last observed.  Keyed by id() but the values
        # hold strong references: a bare id set would let a freed
        # instance's recycled address masquerade as already-prepared.
        self._prepared: dict[int, tuple[Engine, int]] = {}

    # ------------------------------------------------------------------
    # Building queries
    # ------------------------------------------------------------------
    def query(self, *relations: str) -> QueryBuilder:
        """Start a fluent query over the named relations."""
        if not relations:
            raise QueryError("query() needs at least one relation name")
        self._check_relations(relations)
        return QueryBuilder(self, tuple(relations))

    def sql(self, text: str, engine=None, name: str = ""):
        """Parse a SQL string and execute it.

        SELECT statements run through the chosen engine and return a
        :class:`Result`; INSERT/DELETE statements are lowered to a
        :class:`repro.ivm.delta.Delta` and applied, returning the
        :class:`repro.database.ApplyReport`.
        """
        from repro.ivm.delta import Delta
        from repro.sql import parse_statement

        parsed = parse_statement(text, name=name)
        if isinstance(parsed, Delta):
            return self.apply(parsed)
        return self.execute(parsed, engine=engine)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Queryish, engine=None) -> Result:
        """Run a query (builder, AST, or SQL text); returns a Result."""
        lowered = self._coerce(query)
        backend = self._resolve(engine)
        database = self.database  # keep the Result from pinning the session
        start = time.perf_counter()
        run = backend.run(lowered, database)
        seconds = time.perf_counter() - start
        return Result(
            lowered,
            backend.name,
            relation=run.relation,
            factorised=run.factorised,
            plan=run.plan,
            trace=run.trace,
            explain_fn=lambda: backend.explain(lowered, database),
            seconds=seconds,
        )

    def explain(self, query: Queryish, engine=None) -> str:
        """Describe the chosen engine's plan without executing."""
        lowered = self._coerce(query)
        return self._resolve(engine).explain(lowered, self.database)

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------
    def use(self, engine: "str | Engine", **engine_options) -> "Session":
        """Switch the session's default engine in place; returns self."""
        self._default_engine = engine
        self._default_options = engine_options
        return self

    def with_engine(self, engine: "str | Engine", **engine_options) -> "Session":
        """A new session over the same database with another default."""
        return Session(self.database, engine=engine, **engine_options)

    @staticmethod
    def engines() -> tuple[str, ...]:
        """Names accepted by ``engine=`` arguments."""
        return available_engines()

    def _resolve(self, engine: "str | Engine | None") -> Engine:
        options: dict = {}
        if engine is None:
            engine = self._default_engine
            options = self._default_options
        if isinstance(engine, Engine):
            if options:
                raise ValueError(
                    "engine options only apply to registry names; "
                    f"configure the {type(engine).__name__} instance "
                    "directly instead"
                )
            return self._freshened(engine)
        key = (engine.lower(), tuple(sorted(options.items())))
        if key not in self._engines:
            self._engines[key] = create_engine(engine, **options)
        return self._freshened(self._engines[key])

    def _freshened(self, backend: Engine) -> Engine:
        """Prepare ``backend`` or bring it up to the database version.

        The per-backend version stamp is the stale-cache guard: after
        any mutation (through this session, the database directly, or
        SQL), a cached backend either absorbs the logged changes via
        :meth:`repro.api.engines.Engine.forward` or re-prepares.
        """
        database = self.database
        known = self._prepared.get(id(backend))
        if known is None:
            backend.prepare(database)
        elif known[1] != database.version:
            records = database.changes_since(known[1])
            if records is None or not backend.forward(records, database):
                backend.prepare(database)
        self._prepared[id(backend)] = (backend, database.version)
        return backend

    # ------------------------------------------------------------------
    # Resource lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every cached backend's resources.

        Calls :meth:`repro.api.engines.Engine.close` on each engine
        this session instantiated or prepared (worker pools shut down,
        connections close).  The session stays usable: the next query
        re-prepares its backend.
        """
        backends: dict[int, Engine] = {
            id(backend): backend for backend, _ in self._prepared.values()
        }
        for backend in self._engines.values():
            backends.setdefault(id(backend), backend)
        if isinstance(self._default_engine, Engine):
            backends.setdefault(
                id(self._default_engine), self._default_engine
            )
        for backend in backends.values():
            backend.close()
        self._prepared.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]],
        columns: Sequence[str] | None = None,
    ) -> ApplyReport:
        """Insert rows into a relation, maintaining every derived view."""
        return self.database.insert(relation, rows, columns)

    def delete(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]] | None = None,
        where: "Callable[[dict], bool] | Sequence | None" = None,
    ) -> ApplyReport:
        """Delete rows (by value, predicate, or all) from a relation."""
        return self.database.delete(relation, rows, where)

    def apply(self, delta: "Delta") -> ApplyReport:
        """Apply a batched :class:`repro.ivm.delta.Delta` atomically.

        Factorised views are delta-maintained, cached engine backends
        are invalidated or delta-forwarded on their next use, and live
        views created with :meth:`watch` pick the changes up from the
        database's change log.
        """
        return self.database.apply(delta)

    def watch(self, query: Queryish, engine=None) -> "LiveView":
        """A maintained result that stays fresh under mutations."""
        from repro.ivm.view import LiveView

        return LiveView(self, self._coerce(query), engine=engine)

    # ------------------------------------------------------------------
    # Catalogue management
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation, name: str = "") -> "Session":
        """Register a flat relation; returns self for chaining.

        Registration bumps the database version, so prepared backends
        re-prepare on their next use.
        """
        self.database.add_relation(relation, name=name)
        return self

    def add_factorised(
        self, name: str, factorisation: "Factorisation"
    ) -> "Session":
        """Register a factorised materialised view; returns self."""
        self.database.add_factorised(name, factorisation)
        return self

    def names(self) -> list[str]:
        """All view names the session can query."""
        return self.database.names()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_relations(self, relations: Iterable[str]) -> None:
        known = self.database.names()
        for name in relations:
            if name not in self.database:
                raise QueryError(
                    f"unknown relation {name!r}; the database holds: "
                    f"{', '.join(known) if known else '(nothing)'}"
                    + suggest(name, known)
                )

    def _coerce(self, query: Queryish) -> Query:
        if isinstance(query, QueryBuilder):
            return query.to_query()
        if isinstance(query, str):
            from repro.sql import parse_query

            return parse_query(query)
        if isinstance(query, Query):
            return query
        raise TypeError(
            f"expected a QueryBuilder, Query, or SQL string, "
            f"got {type(query).__name__}"
        )

    def __repr__(self) -> str:
        engine = self._default_engine
        label = engine if isinstance(engine, str) else engine.name
        return (
            f"Session(engine={label!r}, "
            f"relations={', '.join(self.names()) or '(empty)'})"
        )


def connect(
    source: "Database | Relation | Iterable[Relation] | None" = None,
    engine: "str | Engine" = "fdb",
    **engine_options,
) -> Session:
    """Open a :class:`Session` — the canonical entry point.

    ``source`` may be a :class:`repro.database.Database`, a single
    :class:`~repro.relational.relation.Relation`, an iterable of
    relations, or ``None`` for an empty database to be populated via
    :meth:`Session.add_relation`.
    """
    if source is None:
        database = Database()
    elif isinstance(source, Database):
        database = source
    elif isinstance(source, Relation):
        database = Database([source])
    else:
        database = Database(source)
    return Session(database, engine=engine, **engine_options)
