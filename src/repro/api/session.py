"""The session facade: one object owning a database and an engine choice.

:func:`connect` is the front door of the library::

    from repro import col, connect

    session = connect(pizzeria_database())          # default engine: fdb
    top = (session.query("R")
           .group_by("customer")
           .sum("price", "revenue")
           .order_by("revenue", desc=True)
           .limit(3)
           .run())
    print(top.pretty())
    print(top.explain())

Aggregates and selections accept scalar expressions built with
:func:`repro.col`; the factorised engine distributes them over
independent branches (Section 3.2)::

    session.query("Orders").group_by("customer").sum(
        col("price") * col("qty"), alias="revenue"
    ).run()

A session caches one prepared backend instance per engine name, so
e.g. the sqlite backend loads the database once and reuses the
connection across queries.  Every cached backend is checked against
the database's version stamp before each use: after a mutation, the
pending changes are delta-forwarded to backends that support it (the
sqlite connection receives the corresponding INSERT/DELETE statements)
and the rest re-prepare — a stale backend can never serve a query.

Sessions are also the write path.  :meth:`Session.insert`,
:meth:`Session.delete` and :meth:`Session.apply` mutate the database
through the delta subsystem (keeping factorised views incrementally
maintained), and :meth:`Session.watch` returns a
:class:`repro.ivm.view.LiveView` whose aggregates stay fresh under
those mutations::

    live = session.watch(
        session.query("R").group_by("customer").sum("price", "revenue")
    )
    session.insert("Orders", [("Lucia", "Monday", "Margherita")])
    print(live.result.pretty())   # already reflects the new order

Queries follow a two-phase *prepared* lifecycle: :meth:`Session.prepare`
compiles once and returns a :class:`repro.plan.prepared.PreparedQuery`
whose ``run(**params)`` re-executes the retained plan with fresh
parameter bindings; :meth:`Session.execute` is a thin prepare-then-run
wrapper over the same machinery, so structurally identical queries
share compiled plans through the session's plan cache and identical
*bound* queries are served from the result cache while the database
version allows (fine-grained invalidation off the IVM change log)::

    top = session.prepare(
        session.query("R").where("price", ">", param("floor"))
        .group_by("customer").sum("price", "revenue")
    )
    monday = top.run(floor=10)
    tuesday = top.run(floor=20)   # same plan, new binding
    print(tuesday.explain())      # "plan cache hit", prepare/run timings

Sessions can also be **snapshot-isolated readers** over a shared,
concurrently mutated database: open one over a pinned
:class:`repro.database.Snapshot` (``Session(db.snapshot())``) and every
query observes exactly the pinned version while writers keep
committing — prepared queries and result caches key on that pinned
version, never on "latest".  :meth:`Session.refresh` advances the pin
to the newest committed version (forwarding the logged changes to
cached backends), and mutations through a pinned session write to the
underlying database and then refresh, so a session reads its own
writes.  The server mode (:mod:`repro.server`) hands such sessions out
from a :class:`~repro.server.SessionPool`; ``close()`` on a pool-owned
session returns it to the pool instead of destroying its backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence, Union

from repro.api.builder import QueryBuilder
from repro.api.engines import Engine, available_engines, create_engine
from repro.api.result import Result
from repro.api.util import suggest
from repro.database import ApplyReport, Database, Snapshot
from repro.plan.cache import SessionCaches
from repro.plan.prepared import PreparedQuery
from repro.query import Query, QueryError
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.frep import Factorisation
    from repro.ivm.delta import Delta
    from repro.ivm.view import LiveView

Queryish = Union[Query, QueryBuilder, str]


class SessionClosedError(RuntimeError):
    """Raised when a closed session is asked to do work.

    :meth:`Session.close` releases backend resources permanently; any
    later ``execute``/``prepare``/``insert``/``watch``/... raises this
    instead of whatever a torn-down backend would happen to throw.
    Open a new session over the same database to keep working.
    """


class Session:
    """Owns a database, a default engine, and per-query options.

    Parameters
    ----------
    database:
        the catalogue queries run against (shared, not copied);
    engine:
        default backend — a registry name (``"fdb"``, ``"rdb"``,
        ``"sqlite"``, ...) or an :class:`~repro.api.engines.Engine`
        instance;
    cache:
        ``False`` disables the session's plan and result caches (each
        ``execute`` then plans afresh; explicit
        :class:`~repro.plan.prepared.PreparedQuery` handles still
        retain their own compiled plan);
    plan_cache_size / result_cache_size:
        LRU capacities of the two caches (0 disables one cache);
    verify:
        ``True`` runs the :mod:`repro.analysis` plan verifier over
        every freshly compiled artifact — f-tree invariants, f-plan
        operator conditions, expression types — and raises
        :class:`~repro.analysis.verifier.PlanVerificationError` at
        *prepare* time when an invariant is violated (cache hits were
        verified when stored and are not re-checked);
    engine_options:
        forwarded to the registry factory of the default engine
        (e.g. ``optimizer="exhaustive"`` for FDB, or the
        ``shards=``/``workers=`` knobs of ``fdb-parallel``).

    Sessions are context managers: backends may hold real resources
    (the sqlite connection, the parallel engine's shard stores and
    worker pools), and :meth:`close` releases them.  ``close`` is
    idempotent and *final*: any later use raises
    :class:`SessionClosedError`.
    """

    def __init__(
        self,
        database: "Database | Snapshot",
        engine: "str | Engine" = "fdb",
        cache: bool = True,
        plan_cache_size: int = 128,
        result_cache_size: int = 256,
        caches: "SessionCaches | None" = None,
        verify: bool = False,
        **engine_options,
    ) -> None:
        # A session over a Snapshot is a pinned (snapshot-isolated)
        # reader: queries observe exactly the pinned version; mutations
        # route to the origin database and then re-pin (read-your-own-
        # writes).  self.database is what engines and caches read.
        if isinstance(database, Snapshot):
            self._origin: Database = database.database
            self._snapshot: "Snapshot | None" = database
        else:
            self._origin = database
            self._snapshot = None
        self.database = database
        self.verify = verify
        self._default_engine: "str | Engine" = engine
        self._default_options = engine_options
        self._engines: dict = {}
        self._closed = False
        self._pool = None  # set by SessionPool on pooled sessions
        self._in_pool = False  # True while checked in (unleased)
        if caches is not None:
            # A shared cache pair (e.g. the pool's): plans and results
            # are version-validated per reader, so sharing is safe.
            self.caches = caches
            self._owns_caches = False
        else:
            self.caches = SessionCaches.sized(
                plan_cache_size if cache else 0,
                result_cache_size if cache else 0,
            )
            self._owns_caches = True
        # Engine instances this session prepared, with the database
        # version each one last observed.  Keyed by id() but the values
        # hold strong references: a bare id set would let a freed
        # instance's recycled address masquerade as already-prepared.
        self._prepared: dict[int, tuple[Engine, int]] = {}

    # ------------------------------------------------------------------
    # Building queries
    # ------------------------------------------------------------------
    def query(self, *relations: str) -> QueryBuilder:
        """Start a fluent query over the named relations."""
        self._ensure_open()
        if not relations:
            raise QueryError("query() needs at least one relation name")
        self._check_relations(relations)
        return QueryBuilder(self, tuple(relations))

    def sql(
        self,
        text: str,
        engine: "str | Engine | None" = None,
        name: str = "",
        params: "Mapping[str, Any] | Sequence[Any] | None" = None,
    ) -> "Result | ApplyReport":
        """Parse a SQL string and execute it.

        SELECT statements run through the chosen engine and return a
        :class:`Result`; INSERT/DELETE statements are lowered to a
        :class:`repro.ivm.delta.Delta` and applied, returning the
        :class:`repro.database.ApplyReport`.  ``params`` binds ``?`` /
        ``:name`` placeholders of a parameterised SELECT.
        """
        from repro.ivm.delta import Delta
        from repro.sql import parse_statement

        self._ensure_open()
        parsed = parse_statement(text, name=name)
        if isinstance(parsed, Delta):
            if params:
                raise QueryError(
                    "params apply to SELECT statements only; INSERT/DELETE "
                    "rows are passed literally"
                )
            return self.apply(parsed)
        return self.execute(parsed, engine=engine, params=params)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def prepare(
        self, query: Queryish, engine: "str | Engine | None" = None
    ) -> PreparedQuery:
        """Plan a query once; run it many times with fresh bindings.

        Returns a :class:`repro.plan.prepared.PreparedQuery` whose
        ``run(*args, **params)`` binds ``?``/``:name``/``param(...)``
        placeholders and executes the retained plan (compiled on the
        first run, re-planned only when the catalogue changed shape).
        The compiled plan is also published in the session's plan
        cache, keyed on the query's canonical structural hash.
        """
        self._ensure_open()
        return PreparedQuery(self, self._coerce(query), engine=engine)

    def execute(
        self,
        query: Queryish,
        engine: "str | Engine | None" = None,
        params: "Mapping[str, Any] | Sequence[Any] | None" = None,
    ) -> Result:
        """Run a query (builder, AST, or SQL text); returns a Result.

        A thin prepare-then-run wrapper: repeated structurally
        identical queries hit the session's plan cache (skipping
        optimisation), and identical bound queries are served from the
        result cache while the database version allows.  ``params`` is
        a ``{name: value}`` mapping, or a sequence binding positionally
        in declaration order (the DB-API style for ``?`` placeholders).
        """
        from repro.plan.params import ParameterError

        prepared = self.prepare(query, engine=engine)
        if params is None:
            return prepared.run()
        if isinstance(params, Mapping):
            return prepared.run(**dict(params))
        if isinstance(params, (list, tuple)):
            return prepared.run(*params)
        raise ParameterError(
            f"params must be a mapping of parameter names or a sequence "
            f"of positional values, got {type(params).__name__}"
        )

    def explain(self, query: Queryish, engine: "str | Engine | None" = None) -> str:
        """Describe the chosen engine's plan without executing."""
        self._ensure_open()
        lowered = self._coerce(query)
        return self._resolve(engine).explain(lowered, self.database)

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------
    def use(self, engine: "str | Engine", **engine_options) -> "Session":
        """Switch the session's default engine in place; returns self."""
        self._default_engine = engine
        self._default_options = engine_options
        return self

    def with_engine(self, engine: "str | Engine", **engine_options) -> "Session":
        """A new session over the same database with another default."""
        return Session(
            self.database, engine=engine, verify=self.verify, **engine_options
        )

    @staticmethod
    def engines() -> tuple[str, ...]:
        """Names accepted by ``engine=`` arguments."""
        return available_engines()

    def _peek(self, engine: "str | Engine | None") -> Engine:
        """The backend instance for a selection, *without* freshening.

        Result-cache hits use this: naming the engine must not trigger
        change-log forwarding or re-preparation the hit will never use.
        """
        options: dict = {}
        if engine is None:
            engine = self._default_engine
            options = self._default_options
        if isinstance(engine, Engine):
            if options:
                raise ValueError(
                    "engine options only apply to registry names; "
                    f"configure the {type(engine).__name__} instance "
                    "directly instead"
                )
            return engine
        key = (engine.lower(), tuple(sorted(options.items())))
        if key not in self._engines:
            self._engines[key] = create_engine(engine, **options)
        return self._engines[key]

    def _resolve(self, engine: "str | Engine | None") -> Engine:
        return self._freshened(self._peek(engine))

    def _engine_cache_key(self, engine: "str | Engine | None"):
        """The cache-scoping key of an engine selection.

        Mirrors :meth:`_resolve`'s backend keying so plans compiled for
        ``engine="fdb"`` never serve ``engine="sqlite"`` (or a
        differently configured instance of the same backend).
        """
        options: dict = {}
        if engine is None:
            engine = self._default_engine
            options = self._default_options
        if isinstance(engine, Engine):
            return ("instance", id(engine))
        return (engine.lower(), tuple(sorted(options.items())))

    def _freshened(self, backend: Engine) -> Engine:
        """Prepare ``backend`` or bring it up to the database version.

        The per-backend version stamp is the stale-cache guard: after
        any mutation (through this session, the database directly, or
        SQL), a cached backend either absorbs the logged changes via
        :meth:`repro.api.engines.Engine.forward` or re-prepares.
        """
        database = self.database
        known = self._prepared.get(id(backend))
        if known is None:
            backend.prepare(database)
        elif known[1] != database.version:
            records = database.changes_since(known[1])
            if records is None or not backend.forward(records, database):
                backend.prepare(database)
        self._prepared[id(backend)] = (backend, database.version)
        return backend

    # ------------------------------------------------------------------
    # Snapshot pinning
    # ------------------------------------------------------------------
    @property
    def pinned_version(self) -> "int | None":
        """The pinned snapshot version, or None for an unpinned session."""
        if self._snapshot is None:
            return None
        return self._snapshot.version

    @property
    def version(self) -> int:
        """The database version this session currently observes."""
        return self.database.version

    def refresh(self) -> int:
        """Advance a pinned session to the newest committed version.

        Takes a fresh snapshot of the origin database, swaps it in as
        this session's read view, and releases the old pin.  Cached
        backends absorb the logged changes between the two pins on
        their next use (or re-prepare if the gap was truncated).  On an
        unpinned session this is a no-op reporting the current version.
        Returns the version now observed.
        """
        self._ensure_open()
        if self._snapshot is None:
            return self.database.version
        fresh = self._origin.snapshot()
        old = self._snapshot
        self._snapshot = fresh
        self.database = fresh
        old.release()
        return fresh.version

    def _sync_pin(self) -> None:
        """Re-pin after a write through this session (read-your-writes)."""
        if self._snapshot is not None:
            self.refresh()

    def _unpin(self) -> None:
        """Release the pin's retention claim (pool idling); reads keep
        working off the captured state until the next :meth:`refresh`."""
        if self._snapshot is not None:
            self._snapshot.release()

    # ------------------------------------------------------------------
    # Resource lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                "this session is closed; open a new one with "
                "repro.connect(...) over the same database"
            )
        if self._in_pool:
            raise SessionClosedError(
                "this session was returned to its pool; acquire a "
                "fresh one from the pool instead of reusing the handle"
            )

    def close(self) -> None:
        """Release this session; pool-owned sessions return to the pool.

        A session handed out by a :class:`repro.server.SessionPool`
        goes back to the pool with its backends and caches warm, ready
        for the next lease (the handle itself becomes unusable — any
        later call raises :class:`SessionClosedError`).  A directly
        constructed session keeps the original semantics: every cached
        backend's resources are released permanently (worker pools shut
        down, connections close) and the session-owned caches clear.
        ``close`` is idempotent either way.
        """
        if self._closed or self._in_pool:
            return
        if self._pool is not None:
            self._pool.release(self)
            return
        self._destroy()

    def _destroy(self) -> None:
        """The permanent teardown behind :meth:`close`; idempotent."""
        if self._closed:
            return
        self._closed = True
        backends: dict[int, Engine] = {
            id(backend): backend for backend, _ in self._prepared.values()
        }
        for backend in self._engines.values():
            backends.setdefault(id(backend), backend)
        if isinstance(self._default_engine, Engine):
            backends.setdefault(
                id(self._default_engine), self._default_engine
            )
        for backend in backends.values():
            backend.close()
        self._prepared.clear()
        self._engines.clear()  # nothing may resurrect a closed backend
        if self._owns_caches:
            self.caches.clear()  # a shared (pool) cache outlives sessions
        self._unpin()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]],
        columns: Sequence[str] | None = None,
    ) -> ApplyReport:
        """Insert rows into a relation, maintaining every derived view.

        On a pinned session the write goes to the origin database (the
        single writer lock serialises concurrent writers) and the pin
        then advances so this session reads its own write.
        """
        self._ensure_open()
        report = self._origin.insert(relation, rows, columns)
        self._sync_pin()
        return report

    def delete(
        self,
        relation: str,
        rows: Iterable[Sequence[Any]] | None = None,
        where: "Callable[[dict], bool] | Sequence | None" = None,
    ) -> ApplyReport:
        """Delete rows (by value, predicate, or all) from a relation."""
        self._ensure_open()
        report = self._origin.delete(relation, rows, where)
        self._sync_pin()
        return report

    def apply(self, delta: "Delta") -> ApplyReport:
        """Apply a batched :class:`repro.ivm.delta.Delta` atomically.

        Factorised views are delta-maintained, cached engine backends
        are invalidated or delta-forwarded on their next use, and live
        views created with :meth:`watch` pick the changes up from the
        database's change log.
        """
        self._ensure_open()
        report = self._origin.apply(delta)
        self._sync_pin()
        return report

    def watch(
        self, query: Queryish, engine: "str | Engine | None" = None
    ) -> "LiveView":
        """A maintained result that stays fresh under mutations."""
        from repro.ivm.view import LiveView

        self._ensure_open()
        return LiveView(self, self._coerce(query), engine=engine)

    # ------------------------------------------------------------------
    # Catalogue management
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation, name: str = "") -> "Session":
        """Register a flat relation; returns self for chaining.

        Registration bumps the database version, so prepared backends
        re-prepare on their next use.
        """
        self._ensure_open()
        self._origin.add_relation(relation, name=name)
        self._sync_pin()
        return self

    def add_factorised(
        self, name: str, factorisation: "Factorisation"
    ) -> "Session":
        """Register a factorised materialised view; returns self."""
        self._ensure_open()
        self._origin.add_factorised(name, factorisation)
        self._sync_pin()
        return self

    def names(self) -> list[str]:
        """All view names the session can query."""
        return self.database.names()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_relations(self, relations: Iterable[str]) -> None:
        known = self.database.names()
        for name in relations:
            if name not in self.database:
                raise QueryError(
                    f"unknown relation {name!r}; the database holds: "
                    f"{', '.join(known) if known else '(nothing)'}"
                    + suggest(name, known)
                )

    def _coerce(self, query: Queryish) -> Query:
        if isinstance(query, QueryBuilder):
            return query.to_query()
        if isinstance(query, str):
            from repro.sql import parse_query

            return parse_query(query)
        if isinstance(query, Query):
            return query
        raise TypeError(
            f"expected a QueryBuilder, Query, or SQL string, "
            f"got {type(query).__name__}"
        )

    def __repr__(self) -> str:
        engine = self._default_engine
        label = engine if isinstance(engine, str) else engine.name
        return (
            f"Session(engine={label!r}, "
            f"relations={', '.join(self.names()) or '(empty)'})"
        )


def connect(
    source: "Database | Snapshot | Relation | Iterable[Relation] | None" = None,
    engine: "str | Engine" = "fdb",
    cache: bool = True,
    plan_cache_size: int = 128,
    result_cache_size: int = 256,
    verify: bool = False,
    **engine_options,
) -> Session:
    """Open a :class:`Session` — the canonical entry point.

    ``source`` may be a :class:`repro.database.Database`, a pinned
    :class:`repro.database.Snapshot` (for a snapshot-isolated reader),
    a single :class:`~repro.relational.relation.Relation`, an iterable
    of relations, or ``None`` for an empty database to be populated via
    :meth:`Session.add_relation`.  ``cache`` and the two size knobs
    configure the session's plan/result caches; ``verify=True`` turns
    on the :mod:`repro.analysis` plan verifier (see :class:`Session`).
    """
    if source is None:
        database = Database()
    elif isinstance(source, (Database, Snapshot)):
        database = source
    elif isinstance(source, Relation):
        database = Database([source])
    else:
        database = Database(source)
    return Session(
        database,
        engine=engine,
        cache=cache,
        plan_cache_size=plan_cache_size,
        result_cache_size=result_cache_size,
        verify=verify,
        **engine_options,
    )
