"""The fluent, immutable query builder of the unified session API.

Builders are created by :meth:`repro.api.session.Session.query` and
lower to the engine-neutral :class:`repro.query.Query` AST::

    (session.query("R")
        .where("date", "=", "Friday")
        .group_by("customer")
        .agg("sum", "price", "revenue")
        .order_by("revenue", desc=True)
        .limit(3)
        .run())

Scalar expressions built with :func:`repro.col` flow through every
shaping method — aggregate arguments, selections, and computed output
columns::

    from repro import col

    (session.query("Orders")
        .group_by("customer")
        .sum(col("price") * col("qty"), alias="revenue")
        .run())

    session.query("Orders").select("customer", (col("price") * 1.2, "gross"))
    session.query("Orders").where(col("price") * col("qty"), ">", 100)

Every method returns a *new* builder (chains can be forked and reused)
and validates its arguments eagerly against the session's database, so
a typo fails at the call site with a suggestion instead of deep inside
an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.expr import Attr, Expr
from repro.query import (
    AGGREGATE_FUNCTIONS,
    COMPARISON_OPS,
    AggregateSpec,
    Comparison,
    ComputedColumn,
    Equality,
    Having,
    Query,
    QueryError,
)
from repro.api.util import suggest as _suggest
from repro.relational.sort import SortKey

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from typing import Mapping

    from repro.api.engines import Engine
    from repro.api.result import Result
    from repro.api.session import Session
    from repro.plan.prepared import PreparedQuery


@dataclass(frozen=True, eq=False)
class QueryBuilder:
    """Immutable builder over a fixed set of input relations.

    Use :meth:`repro.api.session.Session.query` to create one; every
    chained call returns a fresh builder, leaving the receiver intact.
    """

    _session: "Session"
    _relations: tuple[str, ...]
    _equalities: tuple[Equality, ...] = ()
    _comparisons: tuple[Comparison, ...] = ()
    _projection: tuple[str, ...] | None = None
    _computed: tuple[ComputedColumn, ...] = ()
    _group_by: tuple[str, ...] = ()
    _aggregates: tuple[AggregateSpec, ...] = ()
    _having: tuple[Having, ...] = ()
    _order_by: tuple[SortKey, ...] = ()
    _limit: int | None = None
    _distinct: bool = False
    _name: str = ""

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _visible_attributes(self) -> tuple[str, ...]:
        """Natural-join schema: every attribute under its first name."""
        seen: list[str] = []
        for relation in self._relations:
            for attribute in self._session.database.schema(relation):
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)

    def _check_attribute(self, attribute: str, context: str) -> None:
        visible = self._visible_attributes()
        if attribute not in visible:
            raise QueryError(
                f"unknown attribute {attribute!r} in {context}; "
                f"the joined relations ({', '.join(self._relations)}) "
                f"expose: {', '.join(visible)}"
                + _suggest(attribute, visible)
            )

    def _check_op(self, op: str) -> None:
        if op not in COMPARISON_OPS:
            raise QueryError(
                f"unknown comparison operator {op!r}; "
                f"expected one of: {', '.join(COMPARISON_OPS)}"
            )

    def _check_expression(self, expression: Expr, context: str) -> None:
        for attribute in expression.attributes():
            self._check_attribute(attribute, context)

    def _output_attributes(self) -> tuple[str, ...]:
        if self._aggregates:
            return self._group_by + tuple(s.alias for s in self._aggregates)
        if self._projection is not None or self._computed:
            return tuple(self._projection or ()) + tuple(
                column.alias for column in self._computed
            )
        return self._visible_attributes()

    # ------------------------------------------------------------------
    # Inputs and conditions
    # ------------------------------------------------------------------
    def join(self, *relations: str) -> "QueryBuilder":
        """Add input relations (natural-join semantics, as everywhere)."""
        self._session._check_relations(relations)
        return replace(self, _relations=self._relations + tuple(relations))

    def where(self, attribute: "str | Expr", *args: Any) -> "QueryBuilder":
        """Constant selection: ``where(target, op, value)``.

        The two-argument form ``where(target, value)`` means equality.
        ``target`` may be an attribute name or a scalar expression —
        ``where(col("price") * col("qty"), ">", 100)`` — which engines
        evaluate row-wise.  Attribute-to-attribute equalities are
        spelled :meth:`on`.
        """
        if len(args) == 1:
            op, value = "=", args[0]
        elif len(args) == 2:
            op, value = args
        else:
            raise QueryError(
                "where() takes (attribute, value) or (attribute, op, value)"
            )
        if isinstance(attribute, Expr):
            self._check_expression(attribute, "where()")
        else:
            self._check_attribute(attribute, "where()")
        self._check_op(op)
        condition = Comparison(attribute, op, value)
        return replace(self, _comparisons=self._comparisons + (condition,))

    def on(self, left: str, right: str) -> "QueryBuilder":
        """Equality selection between two attributes (a join condition)."""
        self._check_attribute(left, "on()")
        self._check_attribute(right, "on()")
        return replace(
            self, _equalities=self._equalities + (Equality(left, right),)
        )

    # ------------------------------------------------------------------
    # Shaping
    # ------------------------------------------------------------------
    def select(self, *items: "str | Expr | tuple") -> "QueryBuilder":
        """Shape the output (set semantics).

        Items are attribute names, scalar expressions (computed output
        columns, labelled with their canonical text), or ``(expression,
        alias)`` pairs::

            .select("customer", (col("price") * col("qty"), "total"))
        """
        if self._aggregates:
            raise QueryError(
                "select() cannot be combined with aggregates; the output "
                "schema of an aggregate query is group_by() columns plus "
                "the aggregate aliases"
            )
        if not items:
            raise QueryError("select() needs at least one attribute")
        shaped: list["str | ComputedColumn"] = []
        for item in items:
            alias = None
            if isinstance(item, tuple):
                if len(item) != 2 or not isinstance(item[1], str):
                    raise QueryError(
                        "select() items are attribute names, expressions, "
                        "or (expression, alias) pairs"
                    )
                item, alias = item
            if isinstance(item, Attr) and alias is None:
                item = item.name
            if isinstance(item, str):
                self._check_attribute(item, "select()")
                if alias is not None:
                    # A renamed attribute is a computed column.
                    shaped.append(ComputedColumn(Attr(item), alias))
                else:
                    shaped.append(item)
                continue
            if not isinstance(item, Expr):
                raise QueryError(
                    f"select() cannot interpret {item!r}; expected an "
                    "attribute name, col(...) expression, or "
                    "(expression, alias) pair"
                )
            self._check_expression(item, "select()")
            shaped.append(ComputedColumn(item, alias or str(item)))
        projection = [item for item in shaped if isinstance(item, str)]
        computed = [item for item in shaped if not isinstance(item, str)]
        interleaved = any(
            isinstance(earlier, ComputedColumn)
            for index, item in enumerate(shaped)
            if isinstance(item, str)
            for earlier in shaped[:index]
        )
        if computed and projection and interleaved:
            # A computed column precedes a plain attribute, but the
            # output schema lists projection columns first: preserve
            # the select() call order by lifting plain attributes to
            # identity computed columns.
            projection = []
            computed = [
                item
                if isinstance(item, ComputedColumn)
                else ComputedColumn(Attr(item), item)
                for item in shaped
            ]
        return replace(
            self,
            _projection=tuple(projection),
            _computed=tuple(computed),
        )

    def group_by(self, *attributes: str) -> "QueryBuilder":
        """Group the output by ``attributes``."""
        if not attributes:
            raise QueryError("group_by() needs at least one attribute")
        for attribute in attributes:
            self._check_attribute(attribute, "group_by()")
        return replace(self, _group_by=tuple(attributes))

    def agg(
        self,
        function: str,
        attribute: "str | Expr | None" = None,
        alias: str | None = None,
    ) -> "QueryBuilder":
        """Add an aggregate ``alias ← function(argument)``.

        The argument may be an attribute name or a scalar expression:
        ``agg("sum", col("price") * col("qty"), "revenue")``.
        """
        function = function.lower()
        if function not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"unknown aggregation function {function!r}; expected one "
                f"of: {', '.join(AGGREGATE_FUNCTIONS)}"
                + _suggest(function, AGGREGATE_FUNCTIONS)
            )
        if self._projection is not None or self._computed:
            raise QueryError(
                "agg() cannot be combined with select(); group the query "
                "with group_by() instead"
            )
        if isinstance(attribute, Expr):
            self._check_expression(attribute, f"{function}()")
        elif attribute is not None:
            self._check_attribute(attribute, f"{function}()")
        elif function != "count":
            raise QueryError(f"{function} requires an attribute")
        if alias is None:
            alias = f"{function}({attribute if attribute is not None else '*'})"
        taken = [spec.alias for spec in self._aggregates]
        if alias in taken:
            raise QueryError(
                f"duplicate aggregate alias {alias!r}; each aggregate "
                "needs a distinct alias"
            )
        spec = AggregateSpec(function, attribute, alias)
        return replace(self, _aggregates=self._aggregates + (spec,))

    # Spelled-out conveniences for the five functions of the paper.
    def sum(
        self, attribute: "str | Expr", alias: str | None = None
    ) -> "QueryBuilder":
        return self.agg("sum", attribute, alias)

    def count(self, alias: str | None = None) -> "QueryBuilder":
        return self.agg("count", None, alias)

    def min(
        self, attribute: "str | Expr", alias: str | None = None
    ) -> "QueryBuilder":
        return self.agg("min", attribute, alias)

    def max(
        self, attribute: "str | Expr", alias: str | None = None
    ) -> "QueryBuilder":
        return self.agg("max", attribute, alias)

    def avg(
        self, attribute: "str | Expr", alias: str | None = None
    ) -> "QueryBuilder":
        return self.agg("avg", attribute, alias)

    def having(self, target: str, op: str, value: Any) -> "QueryBuilder":
        """Filter groups by an aggregate alias or grouping attribute."""
        if not self._aggregates:
            raise QueryError(
                "having() requires at least one aggregate; add agg() "
                "(or sum()/count()/...) before having()"
            )
        self._check_op(op)
        allowed = self._group_by + tuple(s.alias for s in self._aggregates)
        if target not in allowed:
            raise QueryError(
                f"having() target {target!r} is neither a grouping "
                f"attribute nor an aggregate alias; available: "
                f"{', '.join(allowed)}" + _suggest(target, allowed)
            )
        condition = Having(target, op, value)
        return replace(self, _having=self._having + (condition,))

    # ------------------------------------------------------------------
    # Ordering and limit
    # ------------------------------------------------------------------
    def order_by(
        self, *keys: "str | tuple[str, str] | SortKey", desc: bool = False
    ) -> "QueryBuilder":
        """Order the output; ``desc=True`` flips every key of this call.

        Keys may be attribute names, ``(attribute, "desc")`` pairs, or
        :class:`repro.relational.sort.SortKey` instances.
        """
        if not keys:
            raise QueryError("order_by() needs at least one key")
        normalised: list[SortKey] = []
        for key in keys:
            if isinstance(key, SortKey):
                pass
            elif isinstance(key, str):
                key = SortKey(key, descending=desc)
            else:
                attribute, direction = key
                key = SortKey(
                    attribute,
                    descending=str(direction).lower()
                    in ("desc", "descending", "↓"),
                )
            normalised.append(key)
        allowed = self._output_attributes()
        for key in normalised:
            if key.attribute not in allowed:
                raise QueryError(
                    f"order_by() key {key.attribute!r} is not in the "
                    f"output schema ({', '.join(allowed)})"
                    + _suggest(key.attribute, allowed)
                )
        return replace(self, _order_by=self._order_by + tuple(normalised))

    def limit(self, count: int) -> "QueryBuilder":
        """Keep only the first ``count`` tuples (the λ operator).

        ``count`` must be a non-negative integer: a float (even an
        integral one) is almost certainly a bug at the call site.
        ``limit(0)`` is valid SQL and yields the empty result.
        """
        if not isinstance(count, int) or isinstance(count, bool):
            raise QueryError(
                f"limit must be an integer, got {count!r}; "
                "pass a non-negative int such as limit(10)"
            )
        if count < 0:
            raise QueryError(
                f"limit must be non-negative, got {count}; LIMIT 0 is "
                "the empty result, larger limits keep that many tuples"
            )
        return replace(self, _limit=count)

    def distinct(self) -> "QueryBuilder":
        """Request duplicate elimination on the output."""
        return replace(self, _distinct=True)

    def named(self, name: str) -> "QueryBuilder":
        """Label the query (shows up in result relations and plans)."""
        return replace(self, _name=name)

    # ------------------------------------------------------------------
    # Lowering and execution
    # ------------------------------------------------------------------
    def to_query(self) -> Query:
        """Lower to the engine-neutral :class:`repro.query.Query` AST."""
        return Query(
            relations=self._relations,
            equalities=self._equalities,
            comparisons=self._comparisons,
            projection=self._projection,
            computed=self._computed,
            group_by=self._group_by,
            aggregates=self._aggregates,
            having=self._having,
            order_by=self._order_by,
            limit=self._limit,
            distinct=self._distinct,
            name=self._name,
        )

    def to_sql(self) -> str:
        """SQL text of the query (the form fed to the sqlite backend)."""
        from repro.sql.generator import query_to_sql

        return query_to_sql(self.to_query())

    def run(
        self,
        engine: "str | Engine | None" = None,
        params: "Mapping[str, Any] | None" = None,
    ) -> "Result":
        """Execute through the session; ``engine`` overrides the default.

        ``params`` binds :func:`repro.param` placeholders for one-shot
        execution; use :meth:`prepare` to retain the compiled plan
        across bindings explicitly.
        """
        return self._session.execute(self, engine=engine, params=params)

    execute = run

    def prepare(self, engine: "str | Engine | None" = None) -> "PreparedQuery":
        """Compile once; returns a reusable
        :class:`repro.plan.prepared.PreparedQuery` handle."""
        return self._session.prepare(self, engine=engine)

    def explain(self, engine: "str | Engine | None" = None) -> str:
        """The chosen engine's explain text, without executing."""
        return self._session.explain(self, engine=engine)

    def __str__(self) -> str:
        return str(self.to_query())

    def __repr__(self) -> str:
        return f"QueryBuilder({self.to_query()})"
