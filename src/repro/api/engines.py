"""Pluggable engine backends and the engine registry.

Every execution backend implements the small :class:`Engine` protocol —
``prepare`` (one-off data loading), the two-phase query lifecycle
``plan`` (compile a :class:`repro.query.Query` into a retained
artifact) and ``run_planned`` (execute a retained artifact against the
current data), the one-shot ``run`` composition, and ``explain``
(describe the plan without executing).  Backends are registered by
name with :func:`register_engine` and instantiated with
:func:`create_engine`, so sessions, the CLI and the benchmark harness
all select engines the same way:

====================  ====================================================
registry name         backend
====================  ====================================================
``fdb``               factorised evaluation, flat output (the paper's FDB;
                      columnar kernel)
``fdb-legacy``        same pipeline over the per-node legacy layout
``fdb-factorised``    factorised evaluation, factorised output (FDB f/o)
``fdb-parallel``      sharded parallel FDB with merge aggregation
``rdb``               flat baseline, sort-based grouping (SQLite model)
``rdb-hash``          flat baseline, hash grouping (PostgreSQL model)
``sqlite``            the real ``sqlite3``, fed generated SQL text
====================  ====================================================

Third-party backends plug in the same way::

    register_engine("my-engine", MyEngine)
    connect(db, engine="my-engine")
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.engine import FactorisedResult, FDBCompiled, FDBEngine
from repro.query import Query
from repro.relational.engine import RDBEngine
from repro.relational.relation import Relation
from repro.sql.generator import query_to_sql

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.fplan import ExecutionTrace, FPlan
    from repro.database import Database, LogRecord


@dataclass
class EngineRun:
    """Raw outcome of one engine execution, before ``Result`` packaging.

    Exactly one of ``relation``/``factorised`` is set; ``plan`` and
    ``trace`` are present only for backends that compile f-plans.
    """

    relation: Relation | None = None
    factorised: FactorisedResult | None = None
    plan: "FPlan | None" = None
    trace: "ExecutionTrace | None" = None


class Engine(ABC):
    """The common backend protocol of the unified session API."""

    name = "engine"

    def prepare(self, database: "Database") -> None:
        """One-off loading/warm-up, excluded from query timings."""

    @abstractmethod
    def run(self, query: Query, database: "Database") -> EngineRun:
        """Execute ``query`` against ``database`` (one-shot plan+run)."""

    def explain(self, query: Query, database: "Database") -> str:
        """Describe the evaluation strategy without executing."""
        return f"{self.name}: {query}"

    # ------------------------------------------------------------------
    # Two-phase lifecycle (plan once, run many times)
    # ------------------------------------------------------------------
    def plan(self, query: Query, database: "Database") -> Any:
        """Compile ``query`` into a retained plan artifact.

        ``query`` is the *unbound* canonical form: the artifact must
        serve every parameter binding.  The default returns ``None``
        — a backend without a separate planning stage — which
        :meth:`run_planned` interprets as "plan on the fly".
        """
        return None

    def run_planned(
        self,
        artifact: Any,
        query: Query,
        database: "Database",
        params: "Mapping[str, Any] | None" = None,
    ) -> EngineRun:
        """Execute a retained plan against the current data.

        ``query`` is the runtime (parameter-bound) form; ``params``
        carries the raw binding for backends that pass values natively
        (the sqlite backend binds them on the prepared SQL text).  The
        default ignores the artifact and runs the bound query whole.
        """
        return self.run(query, database)

    def forward(
        self, records: "Iterable[LogRecord]", database: "Database"
    ) -> bool:
        """Absorb logged mutations into prepared state.

        ``records`` are :class:`repro.database.LogRecord` entries newer
        than the version this backend last observed.  Returning False
        tells the session to re-run :meth:`prepare` instead — the safe
        default for backends whose prepared state the session cannot
        see.  Stateless backends (reading the database afresh per run)
        return True; the sqlite backend replays the row deltas on its
        live connection, and the sharded backend routes each row to its
        owning shard.
        """
        return False

    def close(self) -> None:
        """Release backend resources (worker pools, connections...).

        A closed backend must still serve queries after the next
        :meth:`prepare`; sessions call this from
        :meth:`repro.api.session.Session.close`.  The default is a
        no-op, matching stateless backends.
        """


class FDBBackend(Engine):
    """Factorised evaluation; ``output`` selects FDB vs FDB f/o.

    ``layout`` picks the physical union representation: ``"columnar"``
    (the batch-kernel default) or ``"legacy"`` (per-node objects, kept
    registered as ``fdb-legacy`` for comparison benchmarks).
    """

    def __init__(
        self,
        output: str = "flat",
        optimizer: str = "cost",
        layout: str = "columnar",
    ) -> None:
        self._engine = FDBEngine(output=output, optimizer=optimizer, layout=layout)
        self.name = "FDB" if output == "flat" else "FDB f/o"
        if layout == "legacy":
            self.name += " (legacy layout)"
        # Cost-based plans depend on live statistics, so the prepared-
        # query fingerprint must include the stats-cache epochs.
        self.stats_sensitive = optimizer == "cost"

    @staticmethod
    def _package(result, plan, trace) -> EngineRun:
        if isinstance(result, FactorisedResult):
            return EngineRun(factorised=result, plan=plan, trace=trace)
        return EngineRun(relation=result, plan=plan, trace=trace)

    def run(self, query: Query, database: "Database") -> EngineRun:
        return self._package(*self._engine.execute_traced(query, database))

    def plan(self, query: Query, database: "Database") -> FDBCompiled:
        """Optimise once: the f-plan is chosen from the schema-level
        input shape, so it stays valid across data mutations and
        parameter bindings."""
        return self._engine.compile(query, database)

    def run_planned(
        self,
        artifact: Any,
        query: Query,
        database: "Database",
        params: "Mapping[str, Any] | None" = None,
    ) -> EngineRun:
        if not isinstance(artifact, FDBCompiled):
            return self.run(query, database)
        return self._package(
            *self._engine.execute_planned(artifact, query, database)
        )

    def explain(self, query: Query, database: "Database") -> str:
        return self._engine.explain(query, database)

    def forward(
        self, records: "Iterable[LogRecord]", database: "Database"
    ) -> bool:
        # FDB holds no prepared copy: every run reads the (maintained)
        # factorisations and flat relations from the database.
        return True


@dataclass(frozen=True)
class RDBPlan:
    """The flat baseline's retained plan: the fixed pipeline stages.

    RDB has no cost-based optimiser — the value of planning once is
    the validated stage list (and its explain rendering), not a search.
    """

    stages: tuple[str, ...]


class RDBBackend(Engine):
    """The flat relational baseline (sort or hash grouping)."""

    def __init__(self, grouping: str = "sort", join_method: str = "hash") -> None:
        self._engine = RDBEngine(grouping=grouping, join_method=join_method)
        self.name = f"RDB-{grouping}"

    def run(self, query: Query, database: "Database") -> EngineRun:
        return EngineRun(relation=self._engine.execute(query, database))

    def plan(self, query: Query, database: "Database") -> RDBPlan:
        return RDBPlan(self._pipeline(query))

    def run_planned(
        self,
        artifact: Any,
        query: Query,
        database: "Database",
        params: "Mapping[str, Any] | None" = None,
    ) -> EngineRun:
        return self.run(query, database)

    def forward(
        self, records: "Iterable[LogRecord]", database: "Database"
    ) -> bool:
        # The flat baseline re-reads database.flat() per run (stale flat
        # copies of maintained views refresh lazily there).
        return True

    def _pipeline(self, query: Query) -> tuple[str, ...]:
        engine = self._engine
        stages = [
            f"{engine.join_method} join of ({', '.join(query.relations)})"
        ]
        conditions = [str(c) for c in query.equalities + query.comparisons]
        if conditions:
            stages.append(f"σ[{' ∧ '.join(conditions)}] in one scan")
        if query.aggregates:
            aggs = ", ".join(str(a) for a in query.aggregates)
            stages.append(
                f"{engine.grouping}-based ϖ[{', '.join(query.group_by)};"
                f" {aggs}]"
            )
        elif query.projection is not None:
            stages.append(f"π[{', '.join(query.projection)}]")
        if query.order_by:
            order = ", ".join(str(k) for k in query.order_by)
            stages.append(f"sort o[{order}]")
        if query.limit is not None:
            stages.append(f"λ{query.limit}")
        return tuple(stages)

    def explain(self, query: Query, database: "Database") -> str:
        engine = self._engine
        lines = [
            f"query: {query}",
            f"RDB pipeline (grouping={engine.grouping}, "
            f"join={engine.join_method}):",
        ]
        lines.extend(
            f"  {index}. {stage}"
            for index, stage in enumerate(self._pipeline(query), start=1)
        )
        return "\n".join(lines)


class SQLiteBackend(Engine):
    """The real ``sqlite3``, fed SQL generated from the shared AST.

    The database is loaded into an in-memory connection once per
    :class:`repro.database.Database` instance (``prepare``, like the
    paper excludes data import from timings) and reused across queries.
    """

    name = "SQLite"

    def __init__(self) -> None:
        self._connection: sqlite3.Connection | None = None
        self._database: "Database | None" = None
        self._schemas: dict[str, tuple[str, ...]] = {}

    @property
    def connection(self) -> sqlite3.Connection:
        """The live connection (for callers issuing raw SQL)."""
        if self._connection is None:
            raise RuntimeError("sqlite backend not prepared")
        return self._connection

    def prepare(self, database: "Database") -> None:
        # Always reloads: callers re-prepare after catalogue changes, and
        # the identity check in _ensure cannot see in-place mutation.
        self._connection = None
        self._database = None
        self._ensure(database)

    def close(self) -> None:
        """Close the in-memory connection; prepare() reopens it."""
        if self._connection is not None:
            self._connection.close()
        self._connection = None
        self._database = None
        self._schemas = {}

    def _ensure(self, database: "Database") -> sqlite3.Connection:
        if self._connection is None or self._database is not database:
            connection = sqlite3.connect(":memory:")
            self._schemas = {}
            for name in database.names():
                relation = database.flat(name)
                self._schemas[name] = relation.schema
                columns = ", ".join(f'"{a}"' for a in relation.schema)
                connection.execute(f'CREATE TABLE "{name}" ({columns})')
                marks = ",".join("?" * len(relation.schema))
                connection.executemany(
                    f'INSERT INTO "{name}" VALUES ({marks})', relation.rows
                )
            connection.commit()
            self._connection = connection
            self._database = database
        return self._connection

    def forward(
        self, records: "Iterable[LogRecord]", database: "Database"
    ) -> bool:
        """Replay logged row deltas on the live connection.

        Base changes and the exact per-view deltas the maintenance
        subsystem reported are translated to INSERT/DELETE statements.
        Registrations and view rebuilds are not expressible as row
        deltas, so they fall back to a full reload (return False).
        """
        if self._connection is None or self._database is not database:
            return False
        for record in records:
            if record.kind == "register":
                return False
            if any(delta.rebuilt for delta in record.view_deltas.values()):
                return False
            if record.relation not in self._schemas:
                return False
            for delta in record.view_deltas.values():
                if delta.name not in self._schemas:
                    return False
        for record in records:
            self._replay(record.relation, record.columns, record.rows,
                         record.kind == "insert")
            for delta in record.view_deltas.values():
                if delta.name == record.relation:
                    continue  # the base replay already covered it
                self._replay(delta.name, delta.schema, delta.added, True)
                self._replay(delta.name, delta.schema, delta.removed, False)
        self._connection.commit()
        return True

    def _replay(
        self,
        table: str,
        columns: "tuple[str, ...]",
        rows: "tuple[tuple, ...]",
        insert: bool,
    ) -> None:
        if not rows:
            return
        schema = self._schemas[table]
        positions = [columns.index(a) for a in schema]
        ordered = [tuple(row[p] for p in positions) for row in rows]
        assert self._connection is not None
        if insert:
            marks = ",".join("?" * len(schema))
            self._connection.executemany(
                f'INSERT INTO "{table}" VALUES ({marks})', ordered
            )
        else:
            conditions = " AND ".join(f'"{a}" = ?' for a in schema)
            self._connection.executemany(
                f'DELETE FROM "{table}" WHERE {conditions}', ordered
            )

    def run(self, query: Query, database: "Database") -> EngineRun:
        return self._execute_sql(query_to_sql(query), {}, query, database)

    def plan(self, query: Query, database: "Database") -> str:
        """Generate the SQL text once; parameters stay ``:name``
        placeholders that sqlite binds natively on every run."""
        return query_to_sql(query)

    def run_planned(
        self,
        artifact: Any,
        query: Query,
        database: "Database",
        params: "Mapping[str, Any] | None" = None,
    ) -> EngineRun:
        if not isinstance(artifact, str):
            return self.run(query, database)
        return self._execute_sql(artifact, dict(params or {}), query, database)

    def _execute_sql(
        self, sql: str, params: dict, query: Query, database: "Database"
    ) -> EngineRun:
        connection = self._ensure(database)
        cursor = connection.execute(sql, params)
        schema = tuple(column[0] for column in cursor.description)
        rows = [tuple(row) for row in cursor.fetchall()]
        relation = Relation(schema, rows, name=query.name or "result")
        return EngineRun(relation=relation)

    def explain(self, query: Query, database: "Database") -> str:
        from repro.plan.params import collect_params

        connection = self._ensure(database)
        sql = query_to_sql(query)
        # Unbound placeholders explain fine with NULL stand-ins.
        stand_ins = {name: None for name in collect_params(query)}
        lines = [f"query: {query}", f"sql: {sql}", "sqlite query plan:"]
        for row in connection.execute(f"EXPLAIN QUERY PLAN {sql}", stand_ins):
            lines.append(f"  {row[-1]}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
EngineFactory = Callable[..., Engine]

_REGISTRY: dict[str, EngineFactory] = {}


def register_engine(
    name: str, factory: EngineFactory, *, replace: bool = False
) -> None:
    """Register an engine ``factory`` (``**options -> Engine``) by name.

    Names are case-insensitive.  Re-registering an existing name raises
    unless ``replace=True`` — overriding a built-in should be a loud,
    deliberate act.
    """
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered "
            "(pass replace=True to override it)"
        )
    _REGISTRY[key] = factory


def create_engine(name: str, **options) -> Engine:
    """Instantiate a registered engine, forwarding ``options``."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        from repro.api.util import suggest

        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(available_engines())}"
            + suggest(name.lower(), _REGISTRY)
        ) from None
    return factory(**options)


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def _sharded_factory(**options) -> Engine:
    # Imported lazily: repro.shard.engine subclasses Engine from this
    # module, so a top-level import would be circular.
    from repro.shard.engine import ShardedFDBBackend

    return ShardedFDBBackend(**options)


register_engine("fdb", FDBBackend)
register_engine(
    "fdb-legacy", lambda **options: FDBBackend(layout="legacy", **options)
)
register_engine(
    "fdb-factorised", lambda **options: FDBBackend(output="factorised", **options)
)
register_engine("fdb-parallel", _sharded_factory)
register_engine("rdb", RDBBackend)
register_engine(
    "rdb-hash", lambda **options: RDBBackend(grouping="hash", **options)
)
register_engine("sqlite", SQLiteBackend)
