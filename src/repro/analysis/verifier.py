"""Semantic verification of f-trees, f-plans, and merge plans.

The paper's guarantees hold only over well-formed inputs: f-trees must
satisfy the §2 normalisation invariants (the path constraint, key
closure, attribute partitioning), every f-plan operator has pre- and
post-conditions (§5), constant-delay enumeration needs the Theorem 1/2
shape conditions (§4), and sharded execution is only sound under the
merge-strategy contract of :mod:`repro.shard.merge`.  This module makes
each of those invariants a machine-checkable rule producing a
:class:`repro.analysis.findings.Finding` that names the violation.

Rule catalogue (severity ``error`` unless noted):

======================== ==================================================
``ftree/path-constraint``  dependent nodes on different root-to-leaf paths
``ftree/key-closure``      an atomic node carrying no dependency keys
``ftree/aggregate-over``   a γ node's ``over`` set re-appears atomically
``ftree/schema-partition`` tree attributes do not partition the schema
``plan/unknown-node``      a step references an attribute not in the tree
``plan/swap-root``         χ applied to a root node
``plan/merge-not-siblings`` merge of nodes with different parents
``plan/absorb-not-ancestor`` absorb without a strict ancestor relation
``plan/aggregate-shape``   γ children not children of the named parent,
                           a stale function set, or an attribute clash
``plan/aggregate-kept``    γ aggregates away a group-by/kept attribute
``plan/aggregate-coupled`` one γ covers ≥ 2 coupled attributes
``plan/aggregate-protected`` γ covers an attribute that must stay atomic
``plan/remove-not-leaf``   projection of an internal node
``plan/rename-clash``      ρ to a name already present
``plan/step-failed``       the operator itself rejected the application
``plan/step-path-constraint`` a step broke the path constraint
``plan/grouping``          final tree misses Theorem 1 (*warning*: the
                           engine restructures at run time, losing the
                           constant-delay guarantee)
``plan/order-prefix``      final tree misses Theorem 2 (*warning*, same)
``shard/merge-strategy``   merge plan inconsistent with the query shape
======================== ==================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.findings import Finding
from repro.core.engine import FDBCompiled, FDBEngine, expand_functions
from repro.core.enumerate import supports_grouping, supports_order
from repro.core.fplan import (
    AbsorbStep,
    AggregateStep,
    FPlan,
    FPlanError,
    MergeStep,
    RemoveLeafStep,
    RenameStep,
    SelectStep,
    Step,
    SwapStep,
)
from repro.core.ftree import FNode, FTree, FTreeError
from repro.query import Query, QueryError
from repro.relational.sort import normalise_order
from repro.shard.merge import HEAP_MERGE, MERGE_AGGREGATE, UNION, MergePlan

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.optimizer import PlanContext
    from repro.database import Database

#: Aggregation components a γ step may carry: the partial functions the
#: evaluator and the shard merge layer know how to combine.
GAMMA_FUNCTIONS = frozenset({"sum", "count", "min", "max"})


class PlanVerificationError(QueryError):
    """A query failed prepare-time verification (``verify=True``).

    Carries the structured diagnostics; the message lists each violated
    invariant by rule name so the failure is actionable without
    re-running the verifier.
    """

    def __init__(self, findings: Sequence[Finding]) -> None:
        self.findings: tuple[Finding, ...] = tuple(findings)
        details = "; ".join(f.describe() for f in self.findings)
        super().__init__(
            f"query failed plan verification with "
            f"{len(self.findings)} finding(s): {details}"
        )


# ---------------------------------------------------------------------------
# F-tree invariants (§2)
# ---------------------------------------------------------------------------
def verify_ftree(
    ftree: FTree,
    *,
    subject: str | None = None,
    schema: Sequence[str] | None = None,
) -> list[Finding]:
    """Check the §2 normalisation invariants of one f-tree.

    ``schema`` (when given, e.g. for a registered view) additionally
    checks attribute partitioning: the tree's attribute classes and
    aggregate labels must partition exactly the view's schema.
    """
    findings: list[Finding] = []
    nodes = list(ftree.nodes())

    # Path constraint (Proposition 1): nodes sharing a dependency key
    # must lie on one root-to-leaf path.
    for index, first in enumerate(nodes):
        for second in nodes[index + 1:]:
            if first.depends_on(second) and not ftree.on_same_path(
                first, second
            ):
                shared = ", ".join(sorted(first.keys & second.keys))
                findings.append(
                    Finding(
                        "ftree/path-constraint",
                        f"nodes {first.label()} and {second.label()} share "
                        f"dependency key(s) {{{shared}}} but lie on "
                        "different root-to-leaf paths",
                        subject=subject,
                    )
                )

    atomic = ftree.atomic_attributes()
    for node in nodes:
        # Key closure: an atomic node must belong to at least one
        # relation, else dependency tracking and IVM routing cannot
        # reach it.
        if node.aggregate is None and not node.keys:
            findings.append(
                Finding(
                    "ftree/key-closure",
                    f"atomic node {node.label()} carries no dependency "
                    "keys (belongs to no relation)",
                    subject=subject,
                )
            )
        # Aggregated-away attributes must not re-appear atomically:
        # the γ folded them into a value, so an atomic copy would
        # double-count.
        if node.aggregate is not None:
            clash = sorted(node.aggregate.over & atomic)
            if clash:
                findings.append(
                    Finding(
                        "ftree/aggregate-over",
                        f"aggregate node {node.label()} folded "
                        f"{{{', '.join(clash)}}} away, but the same "
                        "attribute(s) are still atomic in the tree",
                        subject=subject,
                    )
                )

    if schema is not None:
        names = {name for node in nodes for name in node.all_names}
        expected = set(schema)
        missing = sorted(expected - names)
        extra = sorted(names - expected)
        if missing or extra:
            parts = []
            if missing:
                parts.append(f"missing {{{', '.join(missing)}}}")
            if extra:
                parts.append(f"extra {{{', '.join(extra)}}}")
            findings.append(
                Finding(
                    "ftree/schema-partition",
                    "tree attributes do not partition the schema: "
                    + "; ".join(parts),
                    subject=subject,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# F-plan operator conditions (§5)
# ---------------------------------------------------------------------------
def _covered_attributes(node: FNode) -> set[str]:
    """Everything a γ over ``node``'s subtree folds away — atomic
    attributes plus what inner aggregates already folded."""
    covered = set(node.subtree_atomic_attributes())
    for inner in node.walk():
        if inner.aggregate is not None:
            covered |= set(inner.aggregate.over)
    return covered


def _check_step(
    tree: FTree,
    step: Step,
    context: "PlanContext | None",
    subject: str | None,
    label: str,
) -> list[Finding]:
    """Pre-conditions of one step against the current tree."""

    def finding(rule: str, message: str) -> Finding:
        return Finding(rule, f"{label}: {message}", subject=subject)

    def unknown(*names: str) -> list[Finding]:
        return [
            finding("plan/unknown-node", f"attribute {name!r} is not in the tree")
            for name in names
            if name not in tree
        ]

    if isinstance(step, SwapStep):
        missing = unknown(step.child)
        if missing:
            return missing
        if tree.parent(tree.node(step.child)) is None:
            return [
                finding(
                    "plan/swap-root",
                    f"χ↑{step.child} promotes a node that is already a root",
                )
            ]
        return []

    if isinstance(step, MergeStep):
        missing = unknown(step.left, step.right)
        if missing:
            return missing
        left, right = tree.node(step.left), tree.node(step.right)
        if left is right:
            return [
                finding(
                    "plan/merge-not-siblings",
                    f"{step.left} and {step.right} already label one node",
                )
            ]
        if tree.parent(left) is not tree.parent(right):
            return [
                finding(
                    "plan/merge-not-siblings",
                    f"{step.left} and {step.right} have different parents",
                )
            ]
        return []

    if isinstance(step, AbsorbStep):
        missing = unknown(step.ancestor, step.descendant)
        if missing:
            return missing
        ancestor = tree.node(step.ancestor)
        descendant = tree.node(step.descendant)
        if ancestor is descendant or not tree.is_ancestor(ancestor, descendant):
            return [
                finding(
                    "plan/absorb-not-ancestor",
                    f"{step.ancestor} is not a strict ancestor of "
                    f"{step.descendant}",
                )
            ]
        return []

    if isinstance(step, SelectStep):
        condition = step.condition
        if condition.is_expression:
            names = tuple(sorted(condition.attribute.attributes()))
        else:
            names = (condition.attribute,)
        return unknown(*names)

    if isinstance(step, RenameStep):
        missing = unknown(step.old)
        if missing:
            return missing
        if step.new in tree:
            return [
                finding(
                    "plan/rename-clash",
                    f"ρ target {step.new!r} is already in the tree",
                )
            ]
        return []

    if isinstance(step, RemoveLeafStep):
        missing = unknown(step.name)
        if missing:
            return missing
        if tree.node(step.name).children:
            return [
                finding(
                    "plan/remove-not-leaf",
                    f"π removes {step.name!r}, which has children",
                )
            ]
        return []

    if isinstance(step, AggregateStep):
        return _check_gamma(tree, step, context, finding, unknown)

    return []  # an unknown step type verifies trivially


def _check_gamma(tree, step, context, finding, unknown):
    findings: list[Finding] = []
    if step.parent is not None:
        missing = unknown(step.parent)
        if missing:
            return missing
        siblings = tree.node(step.parent).children
    else:
        siblings = tree.roots
    by_name = {child.name: child for child in siblings}

    bad_functions = sorted(
        {fn for fn, _ in step.functions} - GAMMA_FUNCTIONS
    )
    if bad_functions:
        findings.append(
            finding(
                "plan/aggregate-shape",
                f"γ carries non-partial function(s) "
                f"{{{', '.join(bad_functions)}}}; partials must be "
                f"drawn from {{{', '.join(sorted(GAMMA_FUNCTIONS))}}}",
            )
        )
    if step.name in tree:
        findings.append(
            finding(
                "plan/aggregate-shape",
                f"γ result name {step.name!r} is already in the tree",
            )
        )

    children: list[FNode] = []
    where = f"children of {step.parent!r}" if step.parent else "roots"
    for name in step.children:
        child = by_name.get(name)
        if child is None:
            findings.append(
                finding(
                    "plan/aggregate-shape",
                    f"γ child {name!r} is not among the {where}",
                )
            )
        else:
            children.append(child)

    covered: set[str] = set()
    for child in children:
        covered |= _covered_attributes(child)

    if context is not None:
        kept_hit = sorted(covered & context.kept)
        if kept_hit:
            findings.append(
                finding(
                    "plan/aggregate-kept",
                    f"γ aggregates away kept attribute(s) "
                    f"{{{', '.join(kept_hit)}}}",
                )
            )
        protected_hit = sorted(covered & context.protected)
        if protected_hit:
            findings.append(
                finding(
                    "plan/aggregate-protected",
                    f"γ covers protected attribute(s) "
                    f"{{{', '.join(protected_hit)}}} that must stay "
                    "atomic for the final expression pass",
                )
            )
        for group in context.coupled:
            joint = sorted(covered & group)
            if len(joint) >= 2:
                findings.append(
                    finding(
                        "plan/aggregate-coupled",
                        f"one γ covers coupled attributes "
                        f"{{{', '.join(joint)}}}; their joint products "
                        "are unrecoverable from separate partials",
                    )
                )
    return findings


def verify_plan(
    plan: FPlan,
    ftree: FTree,
    context: "PlanContext | None" = None,
    *,
    subject: str | None = None,
) -> list[Finding]:
    """Replay ``plan`` over ``ftree``, checking every operator's pre-
    and post-conditions, then the final-state shape conditions.

    ``context`` (the optimiser's :class:`PlanContext`) enables the
    γ constraint checks (kept/coupled/protected) and the Theorem 1/2
    final-state checks; without it only structural conditions apply.
    Replay stops at the first structural error — the tree state beyond
    a failed step is meaningless.
    """
    findings: list[Finding] = []
    tree = ftree
    for index, step in enumerate(plan):
        label = f"step {index + 1} [{step}]"
        pre = _check_step(tree, step, context, subject, label)
        findings.extend(pre)
        if any(f.severity == "error" for f in pre):
            return findings
        try:
            tree = step.apply_tree(tree)
        except (FPlanError, FTreeError, KeyError, ValueError) as error:
            findings.append(
                Finding(
                    "plan/step-failed",
                    f"{label}: the operator rejected the application: "
                    f"{error}",
                    subject=subject,
                )
            )
            return findings
        if not tree.satisfies_path_constraint():
            findings.append(
                Finding(
                    "plan/step-path-constraint",
                    f"{label}: the resulting tree violates the path "
                    "constraint",
                    subject=subject,
                )
            )
            return findings
    findings.extend(_check_final_tree(tree, context, subject))
    return findings


def _check_final_tree(
    tree: FTree, context: "PlanContext | None", subject: str | None
) -> list[Finding]:
    """Theorem 1/2 shape conditions on the plan's output tree.

    These are warnings: the engine restructures (or sorts flat) at run
    time when the shape conditions fail, so answers stay correct — but
    the constant-delay enumeration guarantee of §4 is lost.
    """
    if context is None:
        return []
    findings: list[Finding] = []
    if context.functions:
        kept_present = [k for k in context.kept if k in tree]
        if not supports_grouping(tree, kept_present):
            findings.append(
                Finding(
                    "plan/grouping",
                    "final tree misses the Theorem 1 grouping "
                    f"condition for {{{', '.join(sorted(kept_present))}}};"
                    " group enumeration needs a run-time restructure",
                    severity="warning",
                    subject=subject,
                )
            )
    if context.order:
        keys = [k for k in normalise_order(context.order) if k.attribute in tree]
        if keys and not supports_order(tree, keys):
            order = ", ".join(str(k) for k in keys)
            findings.append(
                Finding(
                    "plan/order-prefix",
                    "final tree misses the Theorem 2 prefix-closure "
                    f"condition for o[{order}]; ordered enumeration "
                    "needs a run-time restructure or flat sort",
                    severity="warning",
                    subject=subject,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Sharded merge-strategy soundness
# ---------------------------------------------------------------------------
def verify_merge_plan(
    query: Query, merge: MergePlan, *, subject: str | None = None
) -> list[Finding]:
    """Check one :class:`MergePlan` against the query it must answer.

    The strategy contract: aggregate queries need per-group partial
    states (with combinable functions and ``__partial_i`` aliases, and
    HAVING/ORDER/LIMIT deferred to the merge); order-only queries may
    keep per-shard ORDER BY + LIMIT (per-shard top-k is a superset of
    the global top-k); anything else is a plain union.
    """

    def finding(message: str) -> Finding:
        return Finding("shard/merge-strategy", message, subject=subject)

    findings: list[Finding] = []
    expected = (
        MERGE_AGGREGATE
        if query.aggregates
        else HEAP_MERGE if query.order_by else UNION
    )
    if merge.strategy != expected:
        findings.append(
            finding(
                f"strategy {merge.strategy!r} does not match the query "
                f"shape (expected {expected!r})"
            )
        )
        return findings
    shard = merge.shard_query
    if merge.strategy == MERGE_AGGREGATE:
        if shard.having or shard.order_by or shard.limit is not None:
            findings.append(
                finding(
                    "shard query must defer HAVING/ORDER BY/LIMIT to "
                    "the merge: per-shard filtering or truncation of "
                    "partial states drops contributing groups"
                )
            )
        expected_components = expand_functions(query.aggregates)
        if tuple(merge.components) != tuple(expected_components):
            findings.append(
                finding(
                    "merge components do not match the query's expanded "
                    f"aggregate components ({[str(c) for c in merge.components]}"
                    f" vs {[str(c) for c in expected_components]})"
                )
            )
        aliases = [spec.alias for spec in shard.aggregates]
        expected_aliases = [
            f"__partial_{index}" for index in range(len(aliases))
        ]
        bad = [
            spec
            for spec in shard.aggregates
            if spec.function not in GAMMA_FUNCTIONS
        ]
        if bad:
            findings.append(
                finding(
                    "shard aggregates carry non-combinable function(s) "
                    f"{{{', '.join(sorted({s.function for s in bad}))}}}"
                )
            )
        if aliases != expected_aliases:
            findings.append(
                finding(
                    f"partial aliases {aliases} must be positional "
                    f"{expected_aliases}"
                )
            )
        if tuple(shard.group_by) != tuple(query.group_by):
            findings.append(
                finding(
                    "shard query must group exactly like the original "
                    f"({shard.group_by} vs {query.group_by})"
                )
            )
    elif merge.strategy == HEAP_MERGE:
        if tuple(shard.order_by) != tuple(query.order_by):
            findings.append(
                finding(
                    "heap merge needs shards sorted on the query's "
                    "ORDER BY keys"
                )
            )
        if shard.limit != query.limit:
            findings.append(
                finding(
                    "heap merge expects the per-shard top-k limit to "
                    "match the query's (a superset of the global top-k)"
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Artifact-level entry points (the prepare-time hook)
# ---------------------------------------------------------------------------
def verify_compiled(
    compiled: FDBCompiled,
    database: "Database",
    *,
    subject: str | None = None,
) -> list[Finding]:
    """Verify one FDB plan artifact: input tree, replay, final shape."""
    engine = FDBEngine()
    try:
        _, ftree, _, context = engine.planning_inputs(
            compiled.query, database
        )
    except QueryError as error:
        return [
            Finding(
                "plan/step-failed",
                f"could not rebuild the planning inputs: {error}",
                subject=subject,
            )
        ]
    # A `.lite()` artifact drops its tree; the recomputed input shape is
    # identical (both derive from the catalogue alone).
    tree = compiled.ftree if compiled.ftree is not None else ftree
    findings = verify_ftree(tree, subject=subject)
    if findings:
        return findings
    return verify_plan(compiled.plan, tree, context, subject=subject)


def verify_artifact(
    query: Query,
    artifact: object,
    database: "Database",
    *,
    subject: str | None = None,
) -> list[Finding]:
    """Verify whatever plan artifact a backend produced for ``query``.

    Type checking of the expression AST applies to every backend; the
    structural plan checks dispatch on the artifact type (FDB plans,
    sharded plans with their per-shard FDB plans and merge strategy).
    This is the ``verify=True`` prepare-time hook.
    """
    from repro.analysis.typecheck import check_query_types

    findings = check_query_types(query, database, subject=subject)
    if isinstance(artifact, FDBCompiled):
        findings.extend(
            verify_compiled(artifact, database, subject=subject)
        )
        return findings

    # The sharded backend's artifact: verify the sequential fallback
    # plan, or the merge strategy plus each per-shard compiled plan.
    fallback = getattr(artifact, "fallback", None)
    inner = getattr(artifact, "inner", None)
    if isinstance(inner, FDBCompiled) and fallback is not None:
        findings.extend(verify_compiled(inner, database, subject=subject))
        return findings
    shard_query = getattr(artifact, "shard_query", None)
    if isinstance(shard_query, Query):
        from repro.shard.merge import plan_shards

        findings.extend(
            verify_merge_plan(query, plan_shards(query), subject=subject)
        )
    return findings
