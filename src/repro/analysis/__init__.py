"""Static analysis for the factorised-database reproduction.

Two halves behind one findings format (see
:mod:`repro.analysis.findings`):

- the **semantic verifier** (:mod:`repro.analysis.verifier`,
  :mod:`repro.analysis.typecheck`): f-tree invariants, f-plan operator
  pre/post-conditions, shard merge-strategy soundness, and expression
  type checks — available at prepare time behind the ``verify=True``
  session knob, and in bulk via ``python -m repro analyze``;
- the **codebase linter** (:mod:`repro.analysis.linter`): stdlib
  ``ast`` rules for the repo's concurrency discipline (lock guarding,
  copy-on-write relations, frozen/published immutability, async
  blocking).
"""

from repro.analysis.findings import (
    Finding,
    Report,
    is_suppressed,
    suppressed_rules,
)
from repro.analysis.linter import lint_file, lint_paths, lint_source
from repro.analysis.typecheck import check_query_types, infer_column_types
from repro.analysis.verifier import (
    PlanVerificationError,
    verify_artifact,
    verify_compiled,
    verify_ftree,
    verify_merge_plan,
    verify_plan,
)

__all__ = [
    "Finding",
    "Report",
    "PlanVerificationError",
    "check_query_types",
    "infer_column_types",
    "is_suppressed",
    "lint_file",
    "lint_paths",
    "lint_source",
    "suppressed_rules",
    "verify_artifact",
    "verify_compiled",
    "verify_ftree",
    "verify_merge_plan",
    "verify_plan",
]
