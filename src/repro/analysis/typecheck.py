"""Prepare-time type checking of queries against catalogue schemas.

The catalogue stores no column types — relations are tuples of Python
values — so the checker first *infers* a type lattice per visible
column by sampling rows (``number`` | ``text`` | ``mixed`` |
``unknown``), then checks every expression the query evaluates:

- arithmetic (``BinOp``/``Neg``) applies to numeric operands only —
  a ``text`` column inside ``price * 2`` fails at prepare time instead
  of raising ``TypeError`` deep inside the evaluator;
- aggregate arguments: ``sum``/``avg`` need numeric inputs; ``min``/
  ``max`` over a ``mixed`` column cannot be ordered consistently;
- comparisons between a column and a literal of a different type are
  flagged (*warning*: SQL semantics make them merely always-false);
- ``Param`` placeholders get a *slot type* from every use site (the
  compared column's type, or ``number`` inside arithmetic); two uses
  demanding conflicting types is an error no binding can satisfy.

Rules: ``type/unknown-relation``, ``type/unknown-attribute``,
``type/arithmetic``, ``type/aggregate-argument``,
``type/comparison`` (warning), ``type/param-conflict``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis.findings import Finding
from repro.expr import Attr, BinOp, Const, Expr, Neg, Param
from repro.query import Query

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.database import Database

NUMBER = "number"
TEXT = "text"
MIXED = "mixed"
UNKNOWN = "unknown"

#: How many rows per relation the inference pass samples.
SAMPLE_ROWS = 200


def _value_type(value: Any) -> str:
    if isinstance(value, bool):
        return UNKNOWN
    if isinstance(value, (int, float)):
        return NUMBER
    if isinstance(value, str):
        return TEXT
    return UNKNOWN


def _join(first: str, second: str) -> str:
    if first == UNKNOWN:
        return second
    if second == UNKNOWN or first == second:
        return first
    return MIXED


def infer_column_types(
    database: "Database", relations: tuple[str, ...]
) -> dict[str, str]:
    """Per-attribute types sampled from the referenced relations.

    Natural-join name collisions resolve to the first relation exposing
    the attribute — the same visibility rule the query builder applies.
    Unknown relations are skipped here; :func:`check_query_types`
    reports them.
    """
    types: dict[str, str] = {}
    for name in relations:
        try:
            relation = database.flat(name)
        except Exception:
            continue
        for position, attribute in enumerate(relation.schema):
            if attribute in types:
                continue
            seen = UNKNOWN
            for row in relation.rows[:SAMPLE_ROWS]:
                value = row[position]
                if value is None:
                    continue
                seen = _join(seen, _value_type(value))
                if seen == MIXED:
                    break
            types[attribute] = seen
    return types


class _Checker:
    def __init__(
        self,
        query: Query,
        types: Mapping[str, str],
        subject: str | None,
    ) -> None:
        self.query = query
        self.types = types
        self.subject = subject
        self.findings: list[Finding] = []
        self.param_slots: dict[str, tuple[str, str]] = {}
        self.known = set(types)
        self.aliases = {spec.alias for spec in query.aggregates}
        self.aliases.update(column.alias for column in query.computed)

    def finding(
        self, rule: str, message: str, severity: str = "error"
    ) -> None:
        self.findings.append(
            Finding(rule, message, severity=severity, subject=self.subject)
        )

    # -- attribute and expression typing --------------------------------
    def attr_type(self, name: str, where: str) -> str:
        if name not in self.known:
            if name not in self.aliases:
                self.finding(
                    "type/unknown-attribute",
                    f"{where} references unknown attribute {name!r}",
                )
            return UNKNOWN
        return self.types.get(name, UNKNOWN)

    def bind_param(self, name: str, slot: str, where: str) -> None:
        if slot == UNKNOWN:
            return
        previous = self.param_slots.get(name)
        if previous is None:
            self.param_slots[name] = (slot, where)
        elif previous[0] != slot:
            self.finding(
                "type/param-conflict",
                f"parameter :{name} needs type {slot} in {where} but "
                f"type {previous[0]} in {previous[1]}; no binding can "
                "satisfy both",
            )

    def expr_type(self, expr: Expr, where: str, numeric: bool = False) -> str:
        """Type of ``expr``; ``numeric`` marks an arithmetic context."""
        if isinstance(expr, Const):
            return _value_type(expr.value)
        if isinstance(expr, Param):
            if numeric:
                self.bind_param(expr.name, NUMBER, where)
            return NUMBER if numeric else UNKNOWN
        if isinstance(expr, Attr):
            kind = self.attr_type(expr.name, where)
            if numeric and kind in (TEXT, MIXED):
                self.finding(
                    "type/arithmetic",
                    f"{where} uses attribute {expr.name!r} of type "
                    f"{kind} in arithmetic; operands must be numeric",
                )
            return kind
        if isinstance(expr, Neg):
            self.expr_type(expr.operand, where, numeric=True)
            return NUMBER
        if isinstance(expr, BinOp):
            self.expr_type(expr.left, where, numeric=True)
            self.expr_type(expr.right, where, numeric=True)
            return NUMBER
        return UNKNOWN

    # -- query clause checks --------------------------------------------
    def check(self) -> list[Finding]:
        query = self.query
        for column in query.computed:
            self.expr_type(
                column.expression, f"computed column {column.alias!r}"
            )
        for spec in query.aggregates:
            self.check_aggregate(spec)
        for comparison in query.comparisons:
            self.check_comparison(comparison)
        for attribute in query.group_by:
            self.attr_type(attribute, "GROUP BY")
        for attribute in query.projection or ():
            self.attr_type(attribute, "projection")
        return self.findings

    def check_aggregate(self, spec) -> None:
        where = f"aggregate {spec}"
        target = spec.attribute
        if target is None:
            return
        if isinstance(target, Expr):
            # Expression arguments are arithmetic throughout.
            self.expr_type(target, where, numeric=True)
            return
        kind = self.attr_type(target, where)
        if spec.function in ("sum", "avg") and kind in (TEXT, MIXED):
            self.finding(
                "type/aggregate-argument",
                f"{where} needs a numeric argument, but {target!r} "
                f"has type {kind}",
            )
        elif spec.function in ("min", "max") and kind == MIXED:
            self.finding(
                "type/aggregate-argument",
                f"{where} cannot order attribute {target!r} of mixed "
                "type consistently",
            )

    def check_comparison(self, comparison) -> None:
        where = f"condition {comparison}"
        value = comparison.value
        if comparison.is_expression:
            left = self.expr_type(comparison.attribute, where)
        else:
            left = self.attr_type(comparison.attribute, where)
        if isinstance(value, Param):
            self.bind_param(value.name, left, where)
            return
        if isinstance(value, Expr):
            self.expr_type(value, where)
            return
        right = _value_type(value)
        if (
            left in (NUMBER, TEXT)
            and right in (NUMBER, TEXT)
            and left != right
        ):
            self.finding(
                "type/comparison",
                f"{where} compares a {left} operand with a {right} "
                "literal; the comparison can never hold",
                severity="warning",
            )


def check_query_types(
    query: Query,
    database: "Database",
    *,
    subject: str | None = None,
) -> list[Finding]:
    """Type-check every expression ``query`` evaluates.

    Returns findings (see the module docstring's rule catalogue); an
    empty list means the query is well-typed against the current
    catalogue samples.
    """
    findings: list[Finding] = []
    known: list[str] = []
    for name in query.relations:
        try:
            database.schema(name)
        except Exception:
            findings.append(
                Finding(
                    "type/unknown-relation",
                    f"query references unknown relation {name!r}",
                    subject=subject,
                )
            )
        else:
            known.append(name)
    types = infer_column_types(database, tuple(known))
    checker = _Checker(query, types, subject)
    findings.extend(checker.check())
    return findings


def param_slots(
    query: Query, database: "Database"
) -> dict[str, str]:
    """The inferred slot type per ``Param`` name (diagnostic helper)."""
    types = infer_column_types(database, tuple(query.relations))
    checker = _Checker(query, types, None)
    checker.check()
    return {name: slot for name, (slot, _) in checker.param_slots.items()}
