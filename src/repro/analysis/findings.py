"""The common findings model shared by the verifier and the linter.

Every check in :mod:`repro.analysis` — f-tree invariants, f-plan
operator conditions, expression type checks, and the ``ast``-based code
lints — reports problems as :class:`Finding` records.  A finding names
the violated invariant (``rule``), says what went wrong (``message``),
and anchors the problem either in source code (``file``/``line``, the
linter) or on a named object (``subject``, the verifier: a view, a
query, a plan step).

Findings aggregate into a :class:`Report` with one JSON shape::

    {"version": 1,
     "findings": [{"rule": ..., "severity": ..., "message": ...,
                   "file": ..., "line": ..., "subject": ...,
                   "source": "lint" | "verify"}, ...],
     "summary": {"errors": N, "warnings": M, "rules": {...}}}

Lint findings can be silenced in place with a suppression comment on
the flagged line or the line directly above it::

    self._cache[key] = value  # repro: allow[lock-discipline]
    # repro: allow[cow-mutation] -- fresh copy, never published
    relation.rows.extend(batch)

``allow[*]`` silences every rule on that line.  Verifier findings have
no source location, so they cannot be suppressed — fix the plan.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Iterable

#: Finding severities, most severe first.  ``error`` findings fail the
#: CI gate and (behind ``verify=True``) abort query preparation;
#: ``warning`` findings are reported but do not fail anything.
SEVERITIES = ("error", "warning")

_SUPPRESSION = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a violated invariant and where it was violated."""

    rule: str
    message: str
    severity: str = "error"
    file: str | None = None
    line: int | None = None
    subject: str | None = None
    source: str = "verify"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "subject": self.subject,
            "source": self.source,
        }

    def describe(self) -> str:
        """One human-readable line: ``location: [rule] message``."""
        if self.file is not None:
            location = f"{self.file}:{self.line}"
        elif self.subject is not None:
            location = self.subject
        else:
            location = "<unlocated>"
        return f"{location}: {self.severity}: [{self.rule}] {self.message}"


@dataclass
class Report:
    """A batch of findings with the canonical JSON serialisation."""

    findings: list[Finding]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def clean(self) -> bool:
        """True when nothing error-severity was found."""
        return not self.errors

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def to_dict(self) -> dict:
        rules: dict[str, int] = {}
        for finding in self.findings:
            rules[finding.rule] = rules.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "rules": dict(sorted(rules.items())),
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        if not self.findings:
            return "no findings"
        lines = [f.describe() for f in self.findings]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


def suppressed_rules(source: str) -> dict[int, set[str]]:
    """Per-line suppression sets parsed from ``# repro: allow[...]``.

    A suppression comment covers its own line; a line holding *only*
    the comment also covers the next line (the idiomatic place to
    justify why a rule does not apply).  Returns a mapping of line
    numbers (1-based, matching :attr:`Finding.line`) to suppressed rule
    names, with ``"*"`` meaning "every rule".
    """
    table: dict[int, set[str]] = {}
    lines = source.splitlines()
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        rules.discard("")
        table.setdefault(number, set()).update(rules)
        if text.lstrip().startswith("#"):
            # A standalone comment covers the code line it introduces,
            # skipping over the rest of its own comment block.
            follow = number
            while follow < len(lines) and lines[follow].lstrip().startswith("#"):
                follow += 1
            table.setdefault(follow + 1, set()).update(rules)
    return table


def is_suppressed(
    finding: Finding, suppressions: dict[int, set[str]]
) -> bool:
    """Whether a (line-anchored) finding is silenced by a comment."""
    if finding.line is None:
        return False
    rules = suppressions.get(finding.line, ())
    return "*" in rules or finding.rule in rules
